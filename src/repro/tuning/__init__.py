"""Switching-point tuning: candidate searches (exhaustive / random /
average), direction policies, the offline training-corpus builder and
the runtime regression predictor."""

from repro.tuning.policy import (
    AlwaysBottomUp,
    AlwaysTopDown,
    FixedPlanPolicy,
    HeuristicBeamerPolicy,
)
from repro.tuning.online import CostModelPolicy, estimate_bu_checked
from repro.tuning.predictor import SwitchingPointPredictor
from repro.tuning.rootaware import (
    RootAwareCorpus,
    RootAwarePredictor,
    build_root_training_set,
    make_root_sample,
    root_features,
)
from repro.tuning.search import (
    SearchOutcome,
    best_m_scan,
    candidate_cross_grid,
    candidate_mn_grid,
    evaluate_cross,
    evaluate_single,
    summarize_search,
)
from repro.tuning.training import (
    ProfiledGraph,
    best_mn_single,
    build_training_set,
    profile_graph,
)

__all__ = [
    "candidate_mn_grid",
    "candidate_cross_grid",
    "evaluate_single",
    "evaluate_cross",
    "summarize_search",
    "SearchOutcome",
    "best_m_scan",
    "AlwaysTopDown",
    "AlwaysBottomUp",
    "FixedPlanPolicy",
    "HeuristicBeamerPolicy",
    "SwitchingPointPredictor",
    "CostModelPolicy",
    "RootAwarePredictor",
    "RootAwareCorpus",
    "build_root_training_set",
    "make_root_sample",
    "root_features",
    "estimate_bu_checked",
    "ProfiledGraph",
    "profile_graph",
    "build_training_set",
    "best_mn_single",
]
