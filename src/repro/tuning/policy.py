"""Direction policies beyond the basic (M, N) rule.

These all satisfy :class:`repro.bfs.hybrid.DirectionPolicy`, so they
plug into the live hybrid engine as well as the plan builders:

* :class:`AlwaysTopDown` / :class:`AlwaysBottomUp` — the pure baselines;
* :class:`FixedPlanPolicy` — replay a per-level direction list (e.g. an
  oracle plan) on a live traversal;
* :class:`HeuristicBeamerPolicy` — Beamer's original growing/shrinking
  heuristic (switch to bottom-up while the frontier grows past |E|/α,
  back to top-down when it shrinks below |V|/β), the closest related-
  work policy, used as an ablation comparator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bfs.hybrid import LevelState
from repro.bfs.result import Direction
from repro.errors import TuningError

__all__ = [
    "AlwaysTopDown",
    "AlwaysBottomUp",
    "FixedPlanPolicy",
    "HeuristicBeamerPolicy",
]


@dataclass(frozen=True)
class AlwaysTopDown:
    """The conventional BFS (the paper's Algorithm 1 baseline)."""

    def direction(self, state: LevelState) -> str:
        """Always top-down."""
        return Direction.TOP_DOWN


@dataclass(frozen=True)
class AlwaysBottomUp:
    """Pure bottom-up (the paper's Algorithm 2 baseline)."""

    def direction(self, state: LevelState) -> str:
        """Always bottom-up."""
        return Direction.BOTTOM_UP


class FixedPlanPolicy:
    """Replay an explicit per-level direction list.

    Raises when the traversal outlives the plan — a plan/graph mismatch
    should fail loudly, not silently extend.
    """

    def __init__(self, directions: list[str]) -> None:
        bad = [d for d in directions if d not in Direction.ALL]
        if bad:
            raise TuningError(f"unknown directions in plan: {bad}")
        self._directions = list(directions)

    def direction(self, state: LevelState) -> str:
        """Direction recorded for this depth."""
        if state.depth >= len(self._directions):
            raise TuningError(
                f"fixed plan has {len(self._directions)} levels; "
                f"traversal reached level {state.depth + 1}"
            )
        return self._directions[state.depth]


@dataclass
class HeuristicBeamerPolicy:
    """Beamer et al.'s two-threshold heuristic with hysteresis.

    Switch top-down → bottom-up when ``|E|cq > |E| / alpha``; switch
    back when ``|V|cq < |V| / beta``.  Unlike the paper's stateless
    (M, N) rule this policy is stateful (it remembers which direction
    it is in), matching the original SC'12 formulation with defaults
    ``alpha = 14``, ``beta = 24``.
    """

    alpha: float = 14.0
    beta: float = 24.0
    _bottom_up: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise TuningError(
                f"alpha and beta must be positive, got ({self.alpha}, {self.beta})"
            )

    def reset(self) -> None:
        """Forget state between traversals."""
        self._bottom_up = False

    def direction(self, state: LevelState) -> str:
        """Apply the hysteresis rule."""
        if not self._bottom_up:
            if state.frontier_edges > state.num_edges / self.alpha:
                self._bottom_up = True
        else:
            if state.frontier_vertices < state.num_vertices / self.beta:
                self._bottom_up = False
        return Direction.BOTTOM_UP if self._bottom_up else Direction.TOP_DOWN
