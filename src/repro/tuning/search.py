"""Switching-point search: exhaustive, random, average — the paper's
comparison set (Fig. 8) plus the Table III best-M scan.

All searches price candidates against a measured
:class:`~repro.bfs.trace.LevelProfile` through the cost model, so the
"exhaustive search [that] will at least take 1,000× of BFS execution-
time" (Section III-E) costs milliseconds here — that asymmetry between
measuring and pricing is exactly the paper's offline/online divide.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.arch.costmodel import CostModel
from repro.arch.machine import SimulatedMachine
from repro.bfs.trace import LevelProfile
from repro.errors import TuningError
from repro.hetero.planner import cross_plan

__all__ = [
    "candidate_mn_grid",
    "candidate_cross_grid",
    "evaluate_single",
    "evaluate_cross",
    "SearchOutcome",
    "summarize_search",
    "best_m_scan",
]


def candidate_mn_grid(
    count: int = 1000,
    *,
    lo: float = 1.0,
    hi: float = 1000.0,
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """``(count, 2)`` array of (M, N) candidates, log-uniform in
    ``[lo, hi]²`` — the paper's "1,000 possible cases" per traversal.

    Log-spacing matches how the thresholds act (multiplicatively on
    ``|E|/M``); the extremes include plans that never or always switch.
    """
    if count < 1:
        raise TuningError(f"count must be >= 1, got {count}")
    if not 0 < lo < hi:
        raise TuningError(f"need 0 < lo < hi, got ({lo}, {hi})")
    rng = np.random.default_rng(seed)
    return np.exp(
        rng.uniform(np.log(lo), np.log(hi), size=(count, 2))
    )


def candidate_cross_grid(
    count: int = 1000,
    *,
    lo: float = 1.0,
    hi: float = 1000.0,
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """``(count, 4)`` array of (M1, N1, M2, N2) cross-architecture
    candidates (Algorithm 3 has two switching points to mistune)."""
    if count < 1:
        raise TuningError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(seed)
    return np.exp(
        rng.uniform(np.log(lo), np.log(hi), size=(count, 4))
    )


def evaluate_single(
    profile: LevelProfile,
    model: CostModel,
    candidates: np.ndarray,
) -> np.ndarray:
    """Seconds for each (M, N) candidate on one device.

    Vectorized over candidates: the (M, N) rule is two comparisons per
    level, so the whole candidate set reduces to boolean matrices
    against the per-level time matrix.
    """
    candidates = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
    if candidates.shape[1] != 2:
        raise TuningError("single-device candidates must be (count, 2)")
    times = model.time_matrix(profile)  # (levels, 2): td, bu
    fe = profile.frontier_edges()[None, :]          # (1, L)
    fv = profile.frontier_vertices()[None, :]
    m = candidates[:, 0][:, None]                   # (C, 1)
    n = candidates[:, 1][:, None]
    td_mask = (fe < profile.num_edges / m) & (fv < profile.num_vertices / n)
    per_level = np.where(td_mask, times[None, :, 0], times[None, :, 1])
    return per_level.sum(axis=1)


def evaluate_cross(
    profile: LevelProfile,
    machine: SimulatedMachine,
    candidates: np.ndarray,
    *,
    cpu: str = "cpu",
    gpu: str = "gpu",
) -> np.ndarray:
    """Seconds for each (M1, N1, M2, N2) Algorithm-3 candidate,
    including the CPU→GPU handoff transfer."""
    candidates = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
    if candidates.shape[1] != 4:
        raise TuningError("cross candidates must be (count, 4)")
    out = np.empty(candidates.shape[0], dtype=np.float64)
    for i, (m1, n1, m2, n2) in enumerate(candidates):
        plan = cross_plan(profile, m1, n1, m2, n2, cpu=cpu, gpu=gpu)
        out[i] = machine.run(profile, plan).total_seconds
    return out


@dataclass(frozen=True)
class SearchOutcome:
    """Summary of one candidate sweep (the bars of Fig. 8)."""

    best_seconds: float
    worst_seconds: float
    average_seconds: float
    random_seconds: float
    best_candidate: np.ndarray
    worst_candidate: np.ndarray

    def speedup_over_worst(self, seconds: float) -> float:
        """Speedup of a given time over the worst candidate."""
        if seconds <= 0:
            raise TuningError("seconds must be positive")
        return self.worst_seconds / seconds

    @property
    def exhaustive_speedup_over_worst(self) -> float:
        """Best/worst ratio — the scale of the paper's 695× claim."""
        return self.worst_seconds / self.best_seconds

    @property
    def exhaustive_speedup_over_random(self) -> float:
        """Best/random ratio (the value printed atop Fig. 8's bars is
        per-method speedup over Random)."""
        return self.random_seconds / self.best_seconds

    @property
    def exhaustive_speedup_over_average(self) -> float:
        """Best/average ratio."""
        return self.average_seconds / self.best_seconds


def summarize_search(
    candidates: np.ndarray,
    seconds: np.ndarray,
    *,
    seed: int | np.random.Generator = 0,
) -> SearchOutcome:
    """Best / worst / average / random summary of a sweep.

    ``random`` mirrors the paper's Fig. 8 Random selector (C ``rand()``
    there, a seeded generator here): one uniformly chosen candidate.
    """
    candidates = np.atleast_2d(candidates)
    seconds = np.asarray(seconds, dtype=np.float64)
    if candidates.shape[0] != seconds.shape[0] or seconds.size == 0:
        raise TuningError("candidates/seconds shape mismatch or empty")
    rng = np.random.default_rng(seed)
    b = int(np.argmin(seconds))
    w = int(np.argmax(seconds))
    r = int(rng.integers(seconds.size))
    return SearchOutcome(
        best_seconds=float(seconds[b]),
        worst_seconds=float(seconds[w]),
        average_seconds=float(seconds.mean()),
        random_seconds=float(seconds[r]),
        best_candidate=candidates[b].copy(),
        worst_candidate=candidates[w].copy(),
    )


def best_m_scan(
    profile: LevelProfile,
    model: CostModel,
    *,
    m_values: np.ndarray | None = None,
    n: float = 1e-9,
) -> tuple[float, np.ndarray]:
    """The Table III experiment: best M with N disabled.

    ``n`` defaults to ~0 so ``|V|/N`` is astronomically large and the
    vertex test never forces bottom-up — M alone decides, as in the
    paper's M-only search (they extend the range from [1, 30] to
    [1, 300]; the default grid here covers [1, 4096] in quarter-octave
    steps).

    Because the rule only changes behaviour when ``|E|/M`` crosses a
    level's ``|E|cq``, the cost landscape over M is piecewise constant;
    the returned "best M" is the **geometric midpoint of the winning
    plateau** (the most robust representative), not its arbitrary grid
    edge.  Returns ``(best_m, seconds_per_candidate)``.
    """
    if m_values is None:
        m_values = np.exp2(np.arange(0, 49) / 4.0)  # 1 .. 4096
    m_values = np.asarray(m_values, dtype=np.float64)
    cand = np.column_stack([m_values, np.full(m_values.size, n)])
    secs = evaluate_single(profile, model, cand)
    best = int(np.argmin(secs))
    tol = secs[best] * (1.0 + 1e-9)
    lo = best
    while lo > 0 and secs[lo - 1] <= tol:
        lo -= 1
    hi = best
    while hi + 1 < secs.size and secs[hi + 1] <= tol:
        hi += 1
    plateau_mid = float(np.sqrt(m_values[lo] * m_values[hi]))
    return plateau_mid, secs
