"""Offline training-corpus construction (Fig. 6, right-hand path).

The paper's three steps, reproduced:

1. For each test graph explored with top-down on ``arch_td`` and
   bottom-up on ``arch_bu``, run the combination repeatedly over all
   candidate switching points and keep the best (exhaustive search) —
   here the candidates are priced against the measured level profile,
   which is numerically identical and O(levels) per candidate.
2. Build the Fig. 7 sample from the graph + architecture information;
   the best switching point is its target value.
3. Accumulate N samples (the paper uses N = 140) into a
   :class:`~repro.ml.dataset.TrainingSet` and fit the regression.

Cross-architecture rows price Algorithm-3 plans (4 thresholds); the
recorded targets are the best ``(M1, N1)`` with the GPU-internal pair
fixed to its own single-device optimum — matching how Algorithm 3
consults the model (one call per architecture pair).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.costmodel import CostModel
from repro.arch.machine import SimulatedMachine
from repro.arch.specs import ArchSpec
from repro.bfs.profiler import pick_sources, profile_bfs
from repro.bfs.trace import LevelProfile
from repro.errors import TuningError
from repro.graph.csr import CSRGraph
from repro.graph.stats import graph_features
from repro.ml.dataset import TrainingSet, sample_from_features
from repro.tuning.search import (
    candidate_mn_grid,
    evaluate_single,
)

__all__ = ["ProfiledGraph", "profile_graph", "build_training_set", "best_mn_single"]


@dataclass(frozen=True)
class ProfiledGraph:
    """A graph with its measured profile and precomputed feature block."""

    graph: CSRGraph
    profile: LevelProfile
    features: np.ndarray
    tag: str = ""

    def scaled(self, factor: float) -> "ProfiledGraph":
        """A paper-scale variant: counters and the |V|/|E| features grow
        by ``factor`` (the R-MAT construction parameters A-D do not).

        Used to train the predictor on the same size regime the
        evaluation graphs are scaled to — the best switching point is
        scale-dependent (cache miss rates enter the cost model through
        |V|), so the corpus must cover the evaluation sizes.
        """
        from repro.arch.calibration import scale_profile

        features = self.features.copy()
        features[0] *= factor  # vertices (millions)
        features[1] *= factor  # edges (millions)
        return ProfiledGraph(
            graph=self.graph,
            profile=scale_profile(self.profile, factor),
            features=features,
            tag=f"{self.tag}x{factor:g}",
        )


def profile_graph(
    graph: CSRGraph, *, source: int | None = None, seed: int = 0, tag: str = ""
) -> ProfiledGraph:
    """Profile one traversal of ``graph`` (Graph 500-style random root
    unless ``source`` is given) and cache its Fig. 7 graph block."""
    if source is None:
        source = int(pick_sources(graph, 1, seed=seed)[0])
    profile, _ = profile_bfs(graph, source)
    return ProfiledGraph(
        graph=graph,
        profile=profile,
        features=graph_features(graph),
        tag=tag,
    )


def best_mn_single(
    profile: LevelProfile,
    model: CostModel,
    *,
    candidates: np.ndarray | None = None,
    seed: int = 0,
) -> tuple[float, float, float]:
    """Exhaustive-search the best (M, N) on one device.

    Returns ``(m, n, seconds)`` for the winning candidate.
    """
    if candidates is None:
        candidates = candidate_mn_grid(1000, seed=seed)
    secs = evaluate_single(profile, model, candidates)
    b = int(np.argmin(secs))
    return float(candidates[b, 0]), float(candidates[b, 1]), float(secs[b])


def build_training_set(
    profiled: list[ProfiledGraph],
    arch_pairs: list[tuple[ArchSpec, ArchSpec]],
    *,
    candidates: np.ndarray | None = None,
    seed: int = 0,
) -> TrainingSet:
    """Produce one training row per (graph, architecture pair).

    For a same-device pair the target is the device's own best (M, N).
    For a cross pair ``(td_arch, bu_arch)`` the target is the best
    handoff point of an Algorithm-3-style plan where phase 1 runs
    top-down on ``td_arch`` and phase 2 runs the bottom-up side on
    ``bu_arch`` — priced per level, transfer included via the machine.
    """
    if not profiled:
        raise TuningError("no profiled graphs supplied")
    if not arch_pairs:
        raise TuningError("no architecture pairs supplied")
    if candidates is None:
        candidates = candidate_mn_grid(1000, seed=seed)

    out = TrainingSet()
    for pg in profiled:
        for arch_td, arch_bu in arch_pairs:
            if arch_td.name == arch_bu.name:
                model = CostModel(arch_td)
                secs = evaluate_single(pg.profile, model, candidates)
            else:
                secs = _evaluate_pair(pg.profile, arch_td, arch_bu, candidates)
            m, n = _plateau_center(candidates, secs)
            sample = sample_from_features(pg.features, arch_td, arch_bu)
            out.add(
                sample,
                m,
                n,
                tag=f"{pg.tag}|{arch_td.name}|{arch_bu.name}",
            )
    return out


def _plateau_center(
    candidates: np.ndarray, secs: np.ndarray, *, rel_tol: float = 0.02
) -> tuple[float, float]:
    """Geometric center of the near-optimal candidate region.

    The (M, N) cost landscape is piecewise constant, so the raw argmin
    is an arbitrary corner of the winning plateau; regressing on corners
    injects plateau-width noise into the targets.  The log-space
    centroid of every candidate within ``rel_tol`` of the optimum is the
    stable representative (and itself achieves the optimum, being inside
    the region for convex plateaus — the empirical case on R-MAT).
    """
    best = float(secs.min())
    near = secs <= best * (1.0 + rel_tol)
    logs = np.log(candidates[near])
    center = np.exp(logs.mean(axis=0))
    return float(center[0]), float(center[1])


def _evaluate_pair(
    profile: LevelProfile,
    arch_td: ArchSpec,
    arch_bu: ArchSpec,
    candidates: np.ndarray,
) -> np.ndarray:
    """Price (M, N) candidates where top-down runs on ``arch_td`` and
    bottom-up on ``arch_bu`` (with handoff transfers), vectorized."""
    machine = SimulatedMachine({"td": arch_td, "bu": arch_bu})
    mats = machine.time_matrices(profile)
    td_times = mats["td"][:, 0]
    bu_times = mats["bu"][:, 1]
    fe = profile.frontier_edges()[None, :]
    fv = profile.frontier_vertices()[None, :]
    m = candidates[:, 0][:, None]
    n = candidates[:, 1][:, None]
    td_mask = (fe < profile.num_edges / m) & (fv < profile.num_vertices / n)
    per_level = np.where(td_mask, td_times[None, :], bu_times[None, :])
    # Handoff transfer whenever consecutive levels change device.
    switches = td_mask[:, 1:] != td_mask[:, :-1]
    xfer = np.array(
        [
            machine.transfer.handoff_seconds(
                profile.num_vertices, rec.frontier_vertices
            )
            for rec in profile.records[1:]
        ]
    )
    return per_level.sum(axis=1) + (switches * xfer[None, :]).sum(axis=1)
