"""Root-aware switching-point prediction (an extension over the paper).

The ``ext-sources`` experiment measures what the paper's evaluation
cannot: the best (M, N) depends materially on the BFS root (a hub
source explodes one level earlier than a leaf source), yet the Fig. 7
sample carries no root information.  This module implements the obvious
fix — append a root block to the feature vector:

``[ Fig. 7 sample (12) | log2(1 + deg(root)), deg(root)/avg_degree ]``

Both added features are available to the runtime for free (the root's
degree is one CSR offsets lookup), so the online-overhead story is
unchanged.  ``ext-root-features`` quantifies the gain.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.arch.costmodel import CostModel
from repro.arch.specs import ArchSpec
from repro.errors import NotFittedError, TuningError
from repro.graph.csr import CSRGraph
from repro.ml.dataset import FEATURE_NAMES, make_sample
from repro.ml.model_io import load_scaler, load_svr, save_scaler, save_svr
from repro.ml.scaler import StandardScaler
from repro.ml.svr import SVR
from repro.tuning.training import ProfiledGraph
from repro.tuning.search import candidate_mn_grid, evaluate_single
from repro.tuning.training import _evaluate_pair, _plateau_center  # noqa: shared target logic

__all__ = [
    "ROOT_FEATURE_NAMES",
    "root_features",
    "make_root_sample",
    "RootAwareCorpus",
    "build_root_training_set",
    "RootAwarePredictor",
]

#: Names of the appended root block.
ROOT_FEATURE_NAMES: tuple[str, ...] = FEATURE_NAMES + (
    "log2_root_degree",
    "root_degree_over_avg",
)


def root_features(graph: CSRGraph, source: int) -> np.ndarray:
    """The 2-element root block for ``source``."""
    deg = graph.degree(source)
    avg = max(2 * graph.num_edges / max(graph.num_vertices, 1), 1e-12)
    return np.array([np.log2(1.0 + deg), deg / avg], dtype=np.float64)


def make_root_sample(
    graph: CSRGraph,
    source: int,
    arch_td: ArchSpec,
    arch_bu: ArchSpec,
) -> np.ndarray:
    """The 14-feature root-aware sample."""
    return np.concatenate(
        [make_sample(graph, arch_td, arch_bu), root_features(graph, source)]
    )


class RootAwareCorpus:
    """A training corpus of root-aware rows."""

    def __init__(self) -> None:
        self.samples: list[np.ndarray] = []
        self.log_m: list[float] = []
        self.log_n: list[float] = []

    def add(self, sample: np.ndarray, m: float, n: float) -> None:
        """Append one row."""
        sample = np.asarray(sample, dtype=np.float64)
        if sample.shape != (len(ROOT_FEATURE_NAMES),):
            raise TuningError(
                f"root-aware sample needs {len(ROOT_FEATURE_NAMES)} "
                f"features, got {sample.shape}"
            )
        if m <= 0 or n <= 0:
            raise TuningError(f"invalid targets ({m}, {n})")
        self.samples.append(sample)
        self.log_m.append(float(np.log2(m)))
        self.log_n.append(float(np.log2(n)))

    def __len__(self) -> int:
        return len(self.samples)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(X, log2_m, log2_n)``."""
        if not self.samples:
            raise TuningError("empty root-aware corpus")
        return (
            np.vstack(self.samples),
            np.array(self.log_m),
            np.array(self.log_n),
        )


def build_root_training_set(
    profiled: list[tuple[ProfiledGraph, int, np.ndarray]],
    arch_pairs: list[tuple[ArchSpec, ArchSpec]],
    *,
    candidates: np.ndarray | None = None,
    seed: int = 0,
) -> RootAwareCorpus:
    """Build a root-aware corpus.

    ``profiled`` rows are ``(profiled_graph, source, root_block)`` —
    the same graph may appear under several roots, which is exactly
    what gives the model its root signal.
    """
    if not profiled:
        raise TuningError("no profiled rows supplied")
    if not arch_pairs:
        raise TuningError("no architecture pairs supplied")
    if candidates is None:
        candidates = candidate_mn_grid(1000, seed=seed)
    corpus = RootAwareCorpus()
    for pg, source, root_block in profiled:
        base = None
        for arch_td, arch_bu in arch_pairs:
            if arch_td.name == arch_bu.name:
                secs = evaluate_single(
                    pg.profile, CostModel(arch_td), candidates
                )
            else:
                secs = _evaluate_pair(
                    pg.profile, arch_td, arch_bu, candidates
                )
            m, n = _plateau_center(candidates, secs)
            from repro.ml.dataset import sample_from_features

            base = sample_from_features(pg.features, arch_td, arch_bu)
            corpus.add(np.concatenate([base, root_block]), m, n)
    return corpus


class RootAwarePredictor:
    """Drop-in variant of the switching-point predictor with root
    features.  API mirrors
    :class:`~repro.tuning.predictor.SwitchingPointPredictor` except
    prediction also takes the source vertex."""

    def __init__(
        self,
        c: float = 30.0,
        epsilon: float = 0.05,
        gamma: float | str = "scale",
        clip: tuple[float, float] = (1.0, 1000.0),
    ) -> None:
        if not 0 < clip[0] < clip[1]:
            raise TuningError(f"invalid clip range {clip}")
        self.clip = clip
        self._scaler = StandardScaler()
        self._svr_m = SVR(c=c, epsilon=epsilon, gamma=gamma)
        self._svr_n = SVR(c=c, epsilon=epsilon, gamma=gamma)
        self._fitted = False

    def fit(self, corpus: RootAwareCorpus) -> "RootAwarePredictor":
        """Fit both regressors."""
        X, lm, ln = corpus.as_arrays()
        Xs = self._scaler.fit_transform(X)
        self._svr_m.fit(Xs, lm)
        self._svr_n.fit(Xs, ln)
        self._fitted = True
        return self

    def predict_sample(self, sample: np.ndarray) -> tuple[float, float]:
        """Predict (M, N) from a raw 14-feature vector."""
        if not self._fitted:
            raise NotFittedError("RootAwarePredictor used before fit")
        Xs = self._scaler.transform(np.atleast_2d(sample))
        lo, hi = self.clip
        m = float(np.clip(np.exp2(self._svr_m.predict(Xs)[0]), lo, hi))
        n = float(np.clip(np.exp2(self._svr_n.predict(Xs)[0]), lo, hi))
        return m, n

    def predict_mn(
        self,
        graph: CSRGraph,
        source: int,
        arch_td: ArchSpec,
        arch_bu: ArchSpec,
    ) -> tuple[float, float]:
        """Predict for a concrete (graph, root, architecture pair)."""
        return self.predict_sample(
            make_root_sample(graph, source, arch_td, arch_bu)
        )

    def save(self, directory: str | Path) -> None:
        """Persist scaler + both SVRs."""
        if not self._fitted:
            raise NotFittedError("cannot save an unfitted predictor")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        save_scaler(self._scaler, directory / "scaler.npz")
        save_svr(self._svr_m, directory / "svr_m.npz")
        save_svr(self._svr_n, directory / "svr_n.npz")
        (directory / "clip.txt").write_text(
            f"{self.clip[0]} {self.clip[1]}", encoding="utf-8"
        )

    @classmethod
    def load(cls, directory: str | Path) -> "RootAwarePredictor":
        """Inverse of :meth:`save`."""
        directory = Path(directory)
        lo, hi = map(float, (directory / "clip.txt").read_text().split())
        out = cls(clip=(lo, hi))
        out._scaler = load_scaler(directory / "scaler.npz")
        out._svr_m = load_svr(directory / "svr_m.npz")
        out._svr_n = load_svr(directory / "svr_n.npz")
        out._fitted = True
        return out
