"""Model-predictive direction selection (online adaptation).

Related work [22] (Li & Becchi) transitions between implementations at
runtime from observed behaviour.  This module provides that family of
policy on top of the cost model: before each level, predict the cost of
*both* directions from the counters the runtime already has, and take
the cheaper one.

The subtlety is that a level's bottom-up cost depends on
``bu_edges_checked`` — not knowable before running it.  The estimator
uses the geometric early-termination model: a probe hits the frontier
with probability ``|E|cq / 2|E|`` per edge, so an unvisited vertex of
degree d expects ``min(d, 1/p)`` checks.  Aggregated, expected checks
≈ ``min(|E|un, |V|un / p)``.  The estimate is exact in the two regimes
that matter (tiny frontier → scan everything; huge frontier → one probe
each) and lands within a small factor between them — enough to pick the
right direction, which is all a policy needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.costmodel import CostModel
from repro.bfs.hybrid import LevelState
from repro.bfs.result import Direction
from repro.bfs.trace import LevelRecord
from repro.errors import TuningError
from repro.obs.tracer import get_tracer

__all__ = ["estimate_bu_checked", "CostModelPolicy"]


def estimate_bu_checked(
    state: LevelState, *, avg_degree: float | None = None
) -> tuple[int, int]:
    """Predict ``(bu_edges_checked, bu_edges_failed)`` for a level.

    Uses only quantities available *before* the level runs: the
    frontier edge mass, the unvisited population, and the graph totals.
    """
    ue = 2 * state.num_edges  # directed entries
    if state.unvisited_vertices == 0:
        return 0, 0
    if avg_degree is None:
        avg_degree = ue / max(state.num_vertices, 1)
    # Expected adjacency mass still owned by unvisited vertices.
    unvisited_edges = state.unvisited_vertices * avg_degree
    p_hit = min(max(state.frontier_edges / ue, 1e-12), 1.0)
    expected_per_vertex = min(avg_degree, 1.0 / p_hit)
    checked = int(
        min(unvisited_edges, state.unvisited_vertices * expected_per_vertex)
    )
    # Vertices whose whole list misses the frontier scan everything.
    miss_prob = (1.0 - p_hit) ** avg_degree
    failed = int(checked * min(miss_prob * 1.5, 1.0))
    return checked, min(failed, checked)


@dataclass
class CostModelPolicy:
    """Pick each level's direction by predicted cost on one device.

    Satisfies :class:`repro.bfs.hybrid.DirectionPolicy`; unlike the
    (M, N) rule it needs no tuning at all — the architecture model *is*
    the tuned knowledge.  The trade-off mirrors the paper's discussion:
    the rule is as good as the model, whereas (M, N) regression learns
    residual effects the model misses.
    """

    model: CostModel

    def __post_init__(self) -> None:
        if not isinstance(self.model, CostModel):
            raise TuningError("CostModelPolicy needs a CostModel")

    def direction(self, state: LevelState) -> str:
        """Cheaper predicted direction for this level."""
        checked, failed = estimate_bu_checked(state)
        rec = LevelRecord(
            level=state.depth,
            frontier_vertices=state.frontier_vertices,
            frontier_edges=state.frontier_edges,
            unvisited_vertices=state.unvisited_vertices,
            unvisited_edges=max(
                2 * state.num_edges - state.frontier_edges, checked
            ),
            bu_edges_checked=checked,
            claimed=0,
            bu_edges_failed=failed,
        )
        # The planner compares costs as if this level were the whole
        # story; greedy per-level choice is exactly the oracle's rule.
        td = self.model.top_down_seconds(rec, state.num_vertices).seconds
        bu = self.model.bottom_up_seconds(rec, state.num_vertices).seconds
        chosen = Direction.TOP_DOWN if td <= bu else Direction.BOTTOM_UP
        get_tracer().instant(
            "tuning.cost_model_decision",
            depth=state.depth,
            direction=chosen,
            predicted_td_seconds=td,
            predicted_bu_seconds=bu,
        )
        return chosen
