"""Model-predictive direction selection (online adaptation).

Related work [22] (Li & Becchi) transitions between implementations at
runtime from observed behaviour.  This module provides that family of
policy on top of the cost model: before each level, predict the cost of
*both* directions from the counters the runtime already has, and take
the cheaper one.

The subtlety is that a level's bottom-up cost depends on
``bu_edges_checked`` — not knowable before running it.  The estimator
uses the geometric early-termination model: a probe hits the frontier
with probability ``|E|cq / 2|E|`` per edge, so an unvisited vertex of
degree d expects ``min(d, 1/p)`` checks.  Aggregated, expected checks
≈ ``min(|E|un, |V|un / p)``.  The estimate is exact in the two regimes
that matter (tiny frontier → scan everything; huge frontier → one probe
each) and lands within a small factor between them — enough to pick the
right direction, which is all a policy needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.costmodel import CostModel
from repro.bfs.hybrid import LevelState
from repro.bfs.result import Direction
from repro.bfs.trace import LevelRecord
from repro.errors import TuningError
from repro.obs.tracer import get_tracer

__all__ = ["estimate_bu_checked", "CostModelPolicy"]


def estimate_bu_checked(
    state: LevelState, *, avg_degree: float | None = None
) -> tuple[int, int]:
    """Predict ``(bu_edges_checked, bu_edges_failed)`` for a level.

    Uses only quantities available *before* the level runs: the
    frontier edge mass, the unvisited population, and the graph totals.
    """
    ue = 2 * state.num_edges  # directed entries
    if state.unvisited_vertices == 0:
        return 0, 0
    if avg_degree is None:
        avg_degree = ue / max(state.num_vertices, 1)
    # Expected adjacency mass still owned by unvisited vertices.
    unvisited_edges = state.unvisited_vertices * avg_degree
    p_hit = min(max(state.frontier_edges / ue, 1e-12), 1.0)
    expected_per_vertex = min(avg_degree, 1.0 / p_hit)
    checked = int(
        min(unvisited_edges, state.unvisited_vertices * expected_per_vertex)
    )
    # Vertices whose whole list misses the frontier scan everything.
    miss_prob = (1.0 - p_hit) ** avg_degree
    failed = int(checked * min(miss_prob * 1.5, 1.0))
    return checked, min(failed, checked)


@dataclass
class CostModelPolicy:
    """Pick each level's direction by predicted cost on one device.

    Satisfies :class:`repro.bfs.hybrid.DirectionPolicy`; unlike the
    (M, N) rule it needs no tuning at all — the architecture model *is*
    the tuned knowledge.  The trade-off mirrors the paper's discussion:
    the rule is as good as the model, whereas (M, N) regression learns
    residual effects the model misses.

    When ``drift_monitor`` is set, every :meth:`audit_traversal` call
    also folds the verdict into the monitor's rolling per-``family``
    series, so a live deployment self-reports when its model quietly
    stops matching the machine (the paper's silent-mistuning failure
    mode, longitudinally).
    """

    model: CostModel
    drift_monitor: object | None = None
    family: str = "default"

    def __post_init__(self) -> None:
        if not isinstance(self.model, CostModel):
            raise TuningError("CostModelPolicy needs a CostModel")
        if self.drift_monitor is not None and not hasattr(
            self.drift_monitor, "observe"
        ):
            raise TuningError(
                "drift_monitor must expose observe() "
                "(see repro.obs.monitor.DriftMonitor)"
            )

    def direction(self, state: LevelState) -> str:
        """Cheaper predicted direction for this level."""
        checked, failed = estimate_bu_checked(state)
        rec = LevelRecord(
            level=state.depth,
            frontier_vertices=state.frontier_vertices,
            frontier_edges=state.frontier_edges,
            unvisited_vertices=state.unvisited_vertices,
            unvisited_edges=max(
                2 * state.num_edges - state.frontier_edges, checked
            ),
            bu_edges_checked=checked,
            claimed=0,
            bu_edges_failed=failed,
        )
        # The planner compares costs as if this level were the whole
        # story; greedy per-level choice is exactly the oracle's rule.
        td = self.model.top_down_seconds(rec, state.num_vertices).seconds
        bu = self.model.bottom_up_seconds(rec, state.num_vertices).seconds
        chosen = Direction.TOP_DOWN if td <= bu else Direction.BOTTOM_UP
        get_tracer().instant(
            "tuning.cost_model_decision",
            depth=state.depth,
            direction=chosen,
            predicted_td_seconds=td,
            predicted_bu_seconds=bu,
        )
        return chosen

    def audit_traversal(self, profile, *, truth=None, tracer=None):
        """Audit this policy's per-level plan for one measured traversal.

        Replays :meth:`direction` over the levels of ``profile`` (a
        measured :class:`~repro.bfs.trace.LevelProfile`), then prices
        the chosen plan against the post-hoc oracle on the ``truth``
        cost model — by default the policy's own model; pass the model
        of the machine the run *actually* executed on to expose
        cross-architecture mistuning.  Returns ``(report, alert)``
        where ``report`` is a
        :class:`~repro.obs.monitor.PolicyAuditReport` and ``alert`` is
        the :class:`~repro.obs.monitor.DriftAlert` raised by the
        attached ``drift_monitor`` (``None`` without one, or while the
        series stays within tolerance).
        """
        # Imported lazily: obs.monitor prices plans through the arch
        # stack, and importing it at module load would close the
        # tuning -> obs -> tuning cycle.
        from repro.obs.monitor import audit_policy_directions

        truth_model = self.model if truth is None else truth
        chosen = []
        for rec in profile.records:
            state = LevelState(
                depth=rec.level,
                frontier_vertices=rec.frontier_vertices,
                frontier_edges=rec.frontier_edges,
                num_vertices=profile.num_vertices,
                num_edges=profile.num_edges,
                unvisited_vertices=rec.unvisited_vertices,
            )
            chosen.append(self.direction(state))
        report = audit_policy_directions(
            profile,
            truth_model,
            chosen,
            tracer=tracer,
            policy_arch=self.model.spec.name,
            family=self.family,
        )
        alert = None
        if self.drift_monitor is not None:
            alert = self.drift_monitor.observe(
                report, family=self.family, arch=truth_model.spec.name
            )
        return report, alert
