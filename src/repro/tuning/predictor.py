"""The runtime switching-point predictor (Fig. 6, left-hand path).

Wraps a feature scaler plus two ε-SVRs (one for M, one for N, both in
log₂ space) behind the Algorithm-3 interface
``predict_mn(graph, arch_td, arch_bu)``.  Prediction is a handful of
kernel evaluations — the "less than 0.1% of BFS execution-time"
overhead the paper claims for the online path; the bench suite measures
it (``bench_fig08_regression_quality``).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.arch.specs import ArchSpec
from repro.errors import NotFittedError, TuningError
from repro.graph.csr import CSRGraph
from repro.ml.dataset import TrainingSet, make_sample
from repro.ml.model_io import load_scaler, load_svr, save_scaler, save_svr
from repro.ml.scaler import StandardScaler
from repro.ml.svr import SVR
from repro.obs.tracer import get_tracer

__all__ = ["SwitchingPointPredictor"]


class SwitchingPointPredictor:
    """Regression model for the best (M, N) switching point.

    Parameters
    ----------
    c, epsilon, gamma, kernel:
        Hyper-parameters forwarded to both underlying SVRs.  The
        defaults come from the grid search in
        ``benchmarks/bench_ablation_regression.py``.
    clip:
        Predicted (M, N) are clipped into this range — thresholds
        outside the candidate space the corpus was searched over are
        extrapolation artifacts.
    """

    def __init__(
        self,
        c: float = 30.0,
        epsilon: float = 0.05,
        gamma: float | str = "scale",
        kernel: str = "rbf",
        clip: tuple[float, float] = (1.0, 1000.0),
    ) -> None:
        if not 0 < clip[0] < clip[1]:
            raise TuningError(f"invalid clip range {clip}")
        self.clip = clip
        self._scaler = StandardScaler()
        self._svr_m = SVR(c=c, epsilon=epsilon, gamma=gamma, kernel=kernel)
        self._svr_n = SVR(c=c, epsilon=epsilon, gamma=gamma, kernel=kernel)
        self._fitted = False

    # -- training ------------------------------------------------------------

    def fit(self, training: TrainingSet) -> "SwitchingPointPredictor":
        """Fit both regressors on a corpus from
        :func:`repro.tuning.training.build_training_set`."""
        X, log_m, log_n = training.as_arrays()
        Xs = self._scaler.fit_transform(X)
        self._svr_m.fit(Xs, log_m)
        self._svr_n.fit(Xs, log_n)
        self._fitted = True
        return self

    # -- inference --------------------------------------------------------------

    def predict_sample(self, sample: np.ndarray) -> tuple[float, float]:
        """Predict (M, N) for a raw Fig. 7 feature vector."""
        if not self._fitted:
            raise NotFittedError("predictor used before fit/load")
        sample = np.atleast_2d(np.asarray(sample, dtype=np.float64))
        Xs = self._scaler.transform(sample)
        m = float(np.exp2(self._svr_m.predict(Xs)[0]))
        n = float(np.exp2(self._svr_n.predict(Xs)[0]))
        lo, hi = self.clip
        m_clip = float(np.clip(m, lo, hi))
        n_clip = float(np.clip(n, lo, hi))
        get_tracer().instant(
            "tuning.predicted_mn",
            m=m_clip,
            n=n_clip,
            raw_m=m,
            raw_n=n,
            clipped=bool(m != m_clip or n != n_clip),
        )
        return m_clip, n_clip

    def predict_mn(
        self, graph: CSRGraph, arch_td: ArchSpec, arch_bu: ArchSpec
    ) -> tuple[float, float]:
        """The Algorithm 3 ``RegressionModel(GI, ...)`` call."""
        return self.predict_sample(make_sample(graph, arch_td, arch_bu))

    # -- persistence ----------------------------------------------------------------

    def save(self, directory: str | Path) -> None:
        """Write scaler + both SVRs under ``directory``."""
        if not self._fitted:
            raise NotFittedError("cannot save an unfitted predictor")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        save_scaler(self._scaler, directory / "scaler.npz")
        save_svr(self._svr_m, directory / "svr_m.npz")
        save_svr(self._svr_n, directory / "svr_n.npz")
        (directory / "clip.txt").write_text(
            f"{self.clip[0]} {self.clip[1]}", encoding="utf-8"
        )

    @classmethod
    def load(cls, directory: str | Path) -> "SwitchingPointPredictor":
        """Load a predictor written by :meth:`save`."""
        directory = Path(directory)
        lo, hi = map(float, (directory / "clip.txt").read_text().split())
        out = cls(clip=(lo, hi))
        out._scaler = load_scaler(directory / "scaler.npz")
        out._svr_m = load_svr(directory / "svr_m.npz")
        out._svr_n = load_svr(directory / "svr_n.npz")
        out._fitted = True
        return out
