"""Fixed-size bitmaps backed by ``uint64`` words.

The paper (Section IV, citing Agarwal et al. [16]) stores the current
queue of the bottom-up sweep as a bitmap so the membership test
``u in CQ`` is one load plus one mask.  This module provides that data
structure for the vectorized kernels in :mod:`repro.bfs`: a dense bitset
over vertex ids ``0..n-1`` with word-level NumPy operations, plus
conversions to and from sparse index arrays.

All mutating operations are in-place on the word array (the hpc guides'
"in place operations / views not copies" idiom); nothing here allocates
proportional to the number of set bits except :meth:`Bitmap.nonzero`.
"""

from __future__ import annotations

import sys
from typing import Iterator

import numpy as np

from repro.errors import GraphError

__all__ = ["Bitmap", "WORD_BITS"]

#: Number of bits per storage word.
WORD_BITS = 64

_WORD_SHIFT = 6  # log2(WORD_BITS)
_WORD_MASK = WORD_BITS - 1

# The byte-view fast path of test_many assumes bit i of word w lives in
# byte w*8 + i//8, which holds only for little-endian word storage.
_LITTLE_ENDIAN = sys.byteorder == "little"


class Bitmap:
    """A dense bitset over the integers ``[0, size)``.

    Parameters
    ----------
    size:
        Number of addressable bits.  Must be non-negative.
    words:
        Optional pre-existing word array to wrap (shared, not copied).
        Must be ``uint64`` of length ``ceil(size / 64)``.

    Notes
    -----
    Bits beyond ``size`` in the final word are kept at zero by every
    public operation; :meth:`count` and :meth:`nonzero` rely on that
    invariant.
    """

    __slots__ = ("size", "words")

    def __init__(self, size: int, words: np.ndarray | None = None) -> None:
        if size < 0:
            raise GraphError(f"bitmap size must be non-negative, got {size}")
        self.size = int(size)
        nwords = (self.size + WORD_BITS - 1) >> _WORD_SHIFT
        if words is None:
            self.words = np.zeros(nwords, dtype=np.uint64)
        else:
            if words.dtype != np.uint64 or words.shape != (nwords,):
                raise GraphError(
                    f"expected uint64 word array of length {nwords}, "
                    f"got dtype={words.dtype} shape={words.shape}"
                )
            self.words = words

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_indices(cls, size: int, indices: np.ndarray) -> "Bitmap":
        """Build a bitmap with the given bit positions set.

        ``indices`` may contain duplicates; out-of-range indices raise
        :class:`~repro.errors.GraphError`.
        """
        bm = cls(size)
        bm.set_many(indices)
        return bm

    @classmethod
    def from_bool(cls, mask: np.ndarray) -> "Bitmap":
        """Build a bitmap from a boolean vector (one bit per element)."""
        if mask.dtype != np.bool_:
            mask = mask.astype(bool)
        bm = cls(mask.shape[0])
        idx = np.nonzero(mask)[0]
        bm.set_many(idx)
        return bm

    @classmethod
    def full(cls, size: int) -> "Bitmap":
        """Build a bitmap with every bit in ``[0, size)`` set."""
        bm = cls(size)
        bm.words.fill(np.uint64(0xFFFFFFFFFFFFFFFF))
        bm._trim()
        return bm

    # -- invariants -----------------------------------------------------

    def _trim(self) -> None:
        """Zero the slack bits of the final word."""
        rem = self.size & _WORD_MASK
        if rem and self.words.size:
            keep = (np.uint64(1) << np.uint64(rem)) - np.uint64(1)
            self.words[-1] &= keep

    def _check_indices(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices)
        if indices.size == 0:
            return indices.astype(np.int64)
        if indices.min() < 0 or indices.max() >= self.size:
            raise GraphError(
                f"bit index out of range for bitmap of size {self.size}"
            )
        return indices.astype(np.int64, copy=False)

    # -- single-bit operations -------------------------------------------

    def set(self, i: int) -> None:
        """Set bit ``i``."""
        if not 0 <= i < self.size:
            raise GraphError(f"bit index {i} out of range [0, {self.size})")
        self.words[i >> _WORD_SHIFT] |= np.uint64(1) << np.uint64(i & _WORD_MASK)

    def clear(self, i: int) -> None:
        """Clear bit ``i``."""
        if not 0 <= i < self.size:
            raise GraphError(f"bit index {i} out of range [0, {self.size})")
        self.words[i >> _WORD_SHIFT] &= ~(np.uint64(1) << np.uint64(i & _WORD_MASK))

    def test(self, i: int) -> bool:
        """Return whether bit ``i`` is set."""
        if not 0 <= i < self.size:
            raise GraphError(f"bit index {i} out of range [0, {self.size})")
        word = self.words[i >> _WORD_SHIFT]
        return bool((word >> np.uint64(i & _WORD_MASK)) & np.uint64(1))

    def __contains__(self, i: int) -> bool:
        return 0 <= i < self.size and self.test(i)

    # -- bulk operations --------------------------------------------------

    def set_many(self, indices: np.ndarray) -> None:
        """Set every bit listed in ``indices`` (duplicates allowed)."""
        indices = self._check_indices(indices)
        if indices.size == 0:
            return
        word_idx = indices >> _WORD_SHIFT
        bit = np.uint64(1) << (indices & _WORD_MASK).astype(np.uint64)
        np.bitwise_or.at(self.words, word_idx, bit)

    def clear_many(self, indices: np.ndarray) -> None:
        """Clear every bit listed in ``indices``."""
        indices = self._check_indices(indices)
        if indices.size == 0:
            return
        word_idx = indices >> _WORD_SHIFT
        bit = np.uint64(1) << (indices & _WORD_MASK).astype(np.uint64)
        np.bitwise_and.at(self.words, word_idx, ~bit)

    def test_many(
        self, indices: np.ndarray, *, checked: bool = True
    ) -> np.ndarray:
        """Vectorized membership test; returns a boolean array.

        With ``checked=False`` the range validation (two reductions over
        ``indices``) is skipped — the fast path for kernels that test
        indices already known to be valid vertex ids (e.g. CSR targets).
        Out-of-range indices are undefined behavior on that path.
        """
        if checked:
            indices = self._check_indices(indices)
        else:
            indices = np.asarray(indices)
        if indices.size == 0:
            return np.zeros(0, dtype=bool)
        if _LITTLE_ENDIAN:
            # Byte-granular probe: narrower gather and uint8 arithmetic
            # beat the uint64 word path on every level-sized input.
            byte = self.words.view(np.uint8)[indices >> 3]
            byte >>= (indices & 7).astype(np.uint8)
            byte &= np.uint8(1)
            return byte.view(bool)
        word = self.words[indices >> _WORD_SHIFT]
        shift = (indices & _WORD_MASK).astype(np.uint64)
        return ((word >> shift) & np.uint64(1)).astype(bool)

    def zero_words_of(self, indices: np.ndarray) -> None:
        """Zero every storage word containing a listed bit.

        Clears the bitmap in ``O(len(indices))`` when the set bits are
        known (the workspace's frontier-clear path) instead of ``O(V /
        64)`` for a full :meth:`reset`.  Collateral bits in the touched
        words are cleared too, so this is only correct when ``indices``
        covers every set bit — which is exactly the frontier-reload
        invariant.
        """
        indices = np.asarray(indices)
        if indices.size:
            self.words[indices >> _WORD_SHIFT] = 0

    def fill(self) -> None:
        """Set every bit."""
        self.words.fill(np.uint64(0xFFFFFFFFFFFFFFFF))
        self._trim()

    def reset(self) -> None:
        """Clear every bit (in place)."""
        self.words.fill(0)

    # -- set algebra (in place, returning self for chaining) ---------------

    def _check_peer(self, other: "Bitmap") -> None:
        if self.size != other.size:
            raise GraphError(
                f"bitmap size mismatch: {self.size} vs {other.size}"
            )

    def ior(self, other: "Bitmap") -> "Bitmap":
        """In-place union."""
        self._check_peer(other)
        np.bitwise_or(self.words, other.words, out=self.words)
        return self

    def iand(self, other: "Bitmap") -> "Bitmap":
        """In-place intersection."""
        self._check_peer(other)
        np.bitwise_and(self.words, other.words, out=self.words)
        return self

    def iandnot(self, other: "Bitmap") -> "Bitmap":
        """In-place difference ``self &= ~other``."""
        self._check_peer(other)
        np.bitwise_and(self.words, np.bitwise_not(other.words), out=self.words)
        return self

    def invert(self) -> "Bitmap":
        """In-place complement within ``[0, size)``."""
        np.bitwise_not(self.words, out=self.words)
        self._trim()
        return self

    def __or__(self, other: "Bitmap") -> "Bitmap":
        return self.copy().ior(other)

    def __and__(self, other: "Bitmap") -> "Bitmap":
        return self.copy().iand(other)

    # -- queries -----------------------------------------------------------

    def count(self) -> int:
        """Number of set bits (population count)."""
        return int(np.bitwise_count(self.words).sum())

    def any(self) -> bool:
        """Whether at least one bit is set."""
        return bool(self.words.any())

    def nonzero(self) -> np.ndarray:
        """Indices of set bits, ascending, as ``int64``."""
        return np.nonzero(self.to_bool())[0].astype(np.int64)

    def to_bool(self) -> np.ndarray:
        """Expand to a boolean vector of length ``size``."""
        if self.size == 0:
            return np.zeros(0, dtype=bool)
        bits = np.unpackbits(
            self.words.view(np.uint8), bitorder="little"
        )
        return bits[: self.size].astype(bool)

    def copy(self) -> "Bitmap":
        """Deep copy."""
        return Bitmap(self.size, self.words.copy())

    def nbytes(self) -> int:
        """Bytes of backing storage — the quantity the cost model charges."""
        return int(self.words.nbytes)

    # -- dunder -------------------------------------------------------------

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self.size == other.size and bool(
            np.array_equal(self.words, other.words)
        )

    def __iter__(self) -> Iterator[int]:
        return iter(self.nonzero().tolist())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Bitmap(size={self.size}, count={self.count()})"
