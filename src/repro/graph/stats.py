"""Graph statistics and the feature vector of the paper's Fig. 7.

The regression sample's *graph information* block is ``(V, E, A, B, C,
D)`` — size plus the Kronecker construction parameters.  For graphs not
produced by the R-MAT generator the construction parameters are
unknown, so :func:`graph_features` falls back to measured skew
statistics that play the same role (how concentrated the degree mass
is), keeping the predictor usable on arbitrary inputs — a small
extension over the paper, which only evaluates R-MAT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["GraphStats", "compute_stats", "graph_features", "estimate_rmat_params"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a graph."""

    num_vertices: int
    num_edges: int
    avg_degree: float
    max_degree: int
    degree_gini: float
    isolated_vertices: int
    self_loops: int

    def as_dict(self) -> dict:
        """Plain-dict view (for reporting)."""
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "avg_degree": self.avg_degree,
            "max_degree": self.max_degree,
            "degree_gini": self.degree_gini,
            "isolated_vertices": self.isolated_vertices,
            "self_loops": self.self_loops,
        }


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative array (degree skew measure)."""
    if values.size == 0:
        return 0.0
    v = np.sort(values.astype(np.float64))
    total = v.sum()
    if total == 0:
        return 0.0
    n = v.size
    cum = np.cumsum(v)
    return float((n + 1 - 2 * (cum / total).sum()) / n)


def compute_stats(graph: CSRGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph`` in one vectorized pass."""
    deg = graph.degrees
    src, dst = graph.edge_list()
    loops = int((src == dst).sum())
    return GraphStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        avg_degree=float(deg.mean()) if deg.size else 0.0,
        max_degree=int(deg.max(initial=0)),
        degree_gini=_gini(deg),
        isolated_vertices=int((deg == 0).sum()),
        self_loops=loops,
    )


def estimate_rmat_params(graph: CSRGraph) -> tuple[float, float, float, float]:
    """Estimate R-MAT ``(A, B, C, D)`` from edge endpoint bit statistics.

    For a graph generated with known parameters (``meta['rmat_params']``)
    those are returned directly.  Otherwise the quadrant occupancy of the
    top recursion level is measured: fraction of directed edges whose
    (src, dst) fall in each half of the id space.  On an id-permuted graph
    this degenerates to ~uniform, which is the honest answer (the ids
    carry no structure); the estimator is mainly for unpermuted inputs
    and for completing the Fig. 7 feature vector.
    """
    params = graph.meta.get("rmat_params")
    if params is not None:
        a, b, c, d = params
        return float(a), float(b), float(c), float(d)
    src, dst = graph.edge_list()
    if src.size == 0:
        return (0.25, 0.25, 0.25, 0.25)
    half = graph.num_vertices / 2
    s1 = src >= half
    d1 = dst >= half
    m = src.size
    a = float((~s1 & ~d1).sum() / m)
    b = float((~s1 & d1).sum() / m)
    c = float((s1 & ~d1).sum() / m)
    d_ = float((s1 & d1).sum() / m)
    return a, b, c, d_


def graph_features(graph: CSRGraph) -> np.ndarray:
    """The 6-element graph block of the Fig. 7 training sample.

    ``[|V| (millions), |E| (millions), A, B, C, D]`` — the same units the
    paper's worked example uses ("32 million, 256 million, 0.57, ...").
    """
    a, b, c, d = estimate_rmat_params(graph)
    return np.array(
        [
            graph.num_vertices / 1e6,
            graph.num_edges / 1e6,
            a,
            b,
            c,
            d,
        ],
        dtype=np.float64,
    )
