"""The BFS frontier (the paper's *current queue*, CQ).

Top-down wants the frontier as a sparse vertex array (it iterates the
queue); bottom-up wants it as a bitmap (it tests membership per edge).
:class:`Frontier` holds either representation and converts lazily,
caching both once materialized — the conversion itself is the
"queue → bitmap" rewrite step real hybrid implementations pay when they
switch direction, so :meth:`conversion_bytes` reports the traffic for
the cost model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.bitmap import Bitmap

__all__ = ["Frontier"]


class Frontier:
    """A set of vertices with dual sparse/dense representations.

    Exactly one representation is required at construction; the other is
    derived on first use.  Instances are conceptually immutable: BFS
    levels produce *new* frontiers.
    """

    __slots__ = ("num_vertices", "_indices", "_bitmap")

    def __init__(
        self,
        num_vertices: int,
        *,
        indices: np.ndarray | None = None,
        bitmap: Bitmap | None = None,
    ) -> None:
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        if (indices is None) == (bitmap is None):
            raise GraphError("provide exactly one of indices= or bitmap=")
        self.num_vertices = int(num_vertices)
        if indices is not None:
            indices = np.asarray(indices)
            if indices.size and (
                indices.min() < 0 or indices.max() >= num_vertices
            ):
                raise GraphError("frontier vertex id out of range")
            indices = np.unique(indices.astype(np.int64))
        if bitmap is not None and bitmap.size != num_vertices:
            raise GraphError(
                f"bitmap size {bitmap.size} != num_vertices {num_vertices}"
            )
        self._indices = indices
        self._bitmap = bitmap

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_source(cls, num_vertices: int, source: int) -> "Frontier":
        """The level-1 frontier: just the BFS source."""
        if not 0 <= source < num_vertices:
            raise GraphError(
                f"source {source} out of range [0, {num_vertices})"
            )
        return cls(num_vertices, indices=np.array([source], dtype=np.int64))

    @classmethod
    def empty(cls, num_vertices: int) -> "Frontier":
        """An empty frontier (BFS termination condition)."""
        return cls(num_vertices, indices=np.zeros(0, dtype=np.int64))

    # -- representations ------------------------------------------------------

    def _require_bitmap(self) -> Bitmap:
        """The dense form, which must already exist (the constructor
        guarantees at least one representation)."""
        if self._bitmap is None:
            raise GraphError("frontier holds neither representation")
        return self._bitmap

    def _require_indices(self) -> np.ndarray:
        """The sparse form, which must already exist."""
        if self._indices is None:
            raise GraphError("frontier holds neither representation")
        return self._indices

    @property
    def indices(self) -> np.ndarray:
        """Sorted unique member vertices (sparse queue form)."""
        if self._indices is None:
            self._indices = self._require_bitmap().nonzero()
        return self._indices

    @property
    def bitmap(self) -> Bitmap:
        """Dense bitmap form."""
        if self._bitmap is None:
            self._bitmap = Bitmap.from_indices(
                self.num_vertices, self._require_indices()
            )
        return self._bitmap

    def has_indices(self) -> bool:
        """Whether the sparse form is already materialized."""
        return self._indices is not None

    def has_bitmap(self) -> bool:
        """Whether the dense form is already materialized."""
        return self._bitmap is not None

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        if self._indices is not None:
            return int(self._indices.size)
        return self._require_bitmap().count()

    def is_empty(self) -> bool:
        """True when no vertex is in the frontier."""
        return len(self) == 0

    def __contains__(self, v: int) -> bool:
        if self._bitmap is not None:
            return v in self._bitmap
        indices = self._require_indices()
        i = int(np.searchsorted(indices, v))
        return i < indices.size and int(indices[i]) == v

    def edge_count(self, degrees: np.ndarray) -> int:
        """``|E|cq`` — total degree of the frontier, the quantity the
        paper's ``|E|cq < |E| / M`` switching test compares."""
        if degrees.shape != (self.num_vertices,):
            raise GraphError("degrees must have one entry per vertex")
        return int(degrees[self.indices].sum())

    def conversion_bytes(self, to: str) -> int:
        """Memory traffic to materialize the other representation.

        ``to='bitmap'`` charges writing the full bitmap plus reading the
        queue; ``to='indices'`` charges scanning the bitmap words.
        Returns 0 when the representation already exists.
        """
        if to == "bitmap":
            if self.has_bitmap():
                return 0
            return self.num_vertices // 8 + 8 * len(self)
        if to == "indices":
            if self.has_indices():
                return 0
            return self.num_vertices // 8 + 8 * len(self)
        raise GraphError(f"unknown representation {to!r}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frontier):
            return NotImplemented
        return self.num_vertices == other.num_vertices and bool(
            np.array_equal(self.indices, other.indices)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Frontier(|V|cq={len(self)} of {self.num_vertices})"
