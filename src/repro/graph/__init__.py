"""Graph substrate: CSR storage, bitmaps, frontiers, generators, I/O,
Graph 500 validation and statistics."""

from repro.graph.bitmap import Bitmap
from repro.graph.csr import CSRGraph, coalesce_edges
from repro.graph.frontier import Frontier
from repro.graph.generators import (
    GRAPH500_PARAMS,
    RMATParams,
    balanced_tree,
    complete,
    erdos_renyi,
    watts_strogatz,
    grid2d,
    path,
    ring,
    rmat,
    rmat_edges,
    star,
    two_cliques_bridge,
)
from repro.graph.io import (
    load_edgelist,
    load_matrix_market,
    load_npz,
    save_edgelist,
    save_matrix_market,
    save_npz,
)
from repro.graph.stats import (
    GraphStats,
    compute_stats,
    estimate_rmat_params,
    graph_features,
)
from repro.graph.validate import check_bfs, validate_bfs

__all__ = [
    "Bitmap",
    "CSRGraph",
    "coalesce_edges",
    "Frontier",
    "RMATParams",
    "GRAPH500_PARAMS",
    "rmat",
    "rmat_edges",
    "erdos_renyi",
    "watts_strogatz",
    "ring",
    "path",
    "star",
    "complete",
    "grid2d",
    "balanced_tree",
    "two_cliques_bridge",
    "save_npz",
    "load_npz",
    "save_edgelist",
    "load_edgelist",
    "save_matrix_market",
    "load_matrix_market",
    "GraphStats",
    "compute_stats",
    "graph_features",
    "estimate_rmat_params",
    "check_bfs",
    "validate_bfs",
]
