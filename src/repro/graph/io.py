"""Graph persistence.

Two formats:

* **NPZ** — the native format: CSR arrays plus metadata, loads back
  bit-identical (used to cache generated R-MAT workloads between
  benchmark runs).
* **Edge-list text** — one ``src dst`` pair per line, ``#`` comments —
  interoperable with SNAP/Graph 500 style tooling.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph

__all__ = [
    "save_npz",
    "load_npz",
    "save_edgelist",
    "load_edgelist",
    "save_matrix_market",
    "load_matrix_market",
]


def save_npz(graph: CSRGraph, path: str | Path) -> None:
    """Write ``graph`` to ``path`` in the native NPZ format."""
    path = Path(path)
    np.savez_compressed(
        path,
        offsets=graph.offsets,
        targets=graph.targets,
        symmetric=np.array([graph.symmetric]),
        meta=np.array([json.dumps(graph.meta, default=str)]),
    )


def load_npz(path: str | Path) -> CSRGraph:
    """Load a graph previously written by :func:`save_npz`."""
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            offsets = data["offsets"]
            targets = data["targets"]
            symmetric = bool(data["symmetric"][0])
            meta = json.loads(str(data["meta"][0]))
    except (KeyError, OSError, ValueError, json.JSONDecodeError) as exc:
        raise GraphFormatError(f"cannot load graph from {path}: {exc}") from exc
    return CSRGraph(
        offsets=offsets, targets=targets, symmetric=symmetric, meta=meta
    )


def save_edgelist(
    graph: CSRGraph, path: str | Path, *, header: bool = True
) -> None:
    """Write ``graph`` as a text edge list.

    For symmetric graphs only the ``src <= dst`` direction is written
    (each undirected edge once); loading with ``symmetrize=True``
    reconstructs the same graph.
    """
    path = Path(path)
    src, dst = graph.edge_list()
    if graph.symmetric:
        keep = src <= dst
        src, dst = src[keep], dst[keep]
    with path.open("w", encoding="utf-8") as fh:
        if header:
            fh.write(f"# repro edge list |V|={graph.num_vertices} ")
            fh.write(f"entries={src.size} symmetric={graph.symmetric}\n")
        np.savetxt(fh, np.column_stack([src, dst]), fmt="%d")


def load_edgelist(
    path: str | Path,
    *,
    num_vertices: int | None = None,
    symmetrize: bool = True,
) -> CSRGraph:
    """Parse a text edge list into a CSR graph.

    ``num_vertices`` defaults to ``max id + 1``.  Raises
    :class:`~repro.errors.GraphFormatError` on malformed lines.
    """
    path = Path(path)
    src_list: list[int] = []
    dst_list: list[int] = []
    try:
        with path.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) < 2:
                    raise GraphFormatError(
                        f"{path}:{lineno}: expected 'src dst', got {line!r}"
                    )
                try:
                    u, v = int(parts[0]), int(parts[1])
                except ValueError as exc:
                    raise GraphFormatError(
                        f"{path}:{lineno}: non-integer endpoint in {line!r}"
                    ) from exc
                if u < 0 or v < 0:
                    raise GraphFormatError(
                        f"{path}:{lineno}: negative vertex id in {line!r}"
                    )
                src_list.append(u)
                dst_list.append(v)
    except OSError as exc:
        raise GraphFormatError(f"cannot read {path}: {exc}") from exc
    src = np.array(src_list, dtype=np.int64)
    dst = np.array(dst_list, dtype=np.int64)
    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
    return CSRGraph.from_edges(src, dst, num_vertices, symmetrize=symmetrize)


def save_matrix_market(graph: CSRGraph, path: str | Path) -> None:
    """Write ``graph`` in MatrixMarket coordinate *pattern* format.

    Symmetric graphs use the ``symmetric`` qualifier with the lower
    triangle stored once, directed graphs use ``general`` — the format
    SuiteSparse/UF collection graphs ship in, so collection matrices
    and this library's graphs round-trip freely.
    """
    path = Path(path)
    src, dst = graph.edge_list()
    if graph.symmetric:
        keep = src >= dst  # lower triangle (MM symmetric convention)
        src, dst = src[keep], dst[keep]
        qualifier = "symmetric"
    else:
        qualifier = "general"
    n = graph.num_vertices
    with path.open("w", encoding="utf-8") as fh:
        fh.write(f"%%MatrixMarket matrix coordinate pattern {qualifier}\n")
        fh.write(f"% written by repro {path.name}\n")
        fh.write(f"{n} {n} {src.size}\n")
        # MatrixMarket is 1-indexed.
        np.savetxt(fh, np.column_stack([src + 1, dst + 1]), fmt="%d")


def load_matrix_market(path: str | Path) -> CSRGraph:
    """Parse a MatrixMarket coordinate pattern file into a CSR graph.

    Supports ``pattern`` matrices with ``general`` or ``symmetric``
    qualifiers; weighted (``real``/``integer``) files load with weights
    ignored (BFS is unweighted).  Raises
    :class:`~repro.errors.GraphFormatError` for malformed input.
    """
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as fh:
            header = fh.readline().strip().lower().split()
            if (
                len(header) < 5
                or header[0] != "%%matrixmarket"
                or header[1] != "matrix"
                or header[2] != "coordinate"
            ):
                raise GraphFormatError(
                    f"{path}: not a MatrixMarket coordinate file"
                )
            field, qualifier = header[3], header[4]
            if qualifier not in ("general", "symmetric"):
                raise GraphFormatError(
                    f"{path}: unsupported qualifier {qualifier!r}"
                )
            line = fh.readline()
            while line.startswith("%"):
                line = fh.readline()
            try:
                rows, cols, nnz = map(int, line.split())
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}: malformed size line {line!r}"
                ) from exc
            if rows != cols:
                raise GraphFormatError(
                    f"{path}: adjacency matrix must be square, "
                    f"got {rows}x{cols}"
                )
            if nnz == 0:
                data = np.zeros((0, 2))
            else:
                data = np.loadtxt(fh, ndmin=2, max_rows=nnz)
    except OSError as exc:
        raise GraphFormatError(f"cannot read {path}: {exc}") from exc
    if data.size == 0:
        data = np.zeros((0, 2))
    if data.shape[0] != nnz:
        raise GraphFormatError(
            f"{path}: expected {nnz} entries, found {data.shape[0]}"
        )
    src = data[:, 0].astype(np.int64) - 1
    dst = data[:, 1].astype(np.int64) - 1
    if src.size and (src.min() < 0 or dst.min() < 0):
        raise GraphFormatError(f"{path}: indices must be 1-based positive")
    return CSRGraph.from_edges(
        src, dst, rows, symmetrize=(qualifier == "symmetric")
    )
