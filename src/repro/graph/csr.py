"""Compressed Sparse Row graph storage.

The paper stores graphs in CSR (Section V-A) exactly as the Graph 500
reference code does: an ``offsets`` array of length ``n + 1`` and a
``targets`` array holding the concatenated adjacency lists.  Both BFS
directions read only these two arrays, so the cost model can charge
memory traffic directly against their dtypes.

Construction is fully vectorized: an edge list becomes CSR via one sort
(or bincount + cumsum) with optional symmetrization, de-duplication and
self-loop removal — the preprocessing Graph 500 applies to Kronecker
output before timing BFS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.errors import GraphError

__all__ = ["CSRGraph", "coalesce_edges"]


def coalesce_edges(
    src: np.ndarray,
    dst: np.ndarray,
    *,
    num_vertices: int,
    symmetrize: bool = True,
    dedup: bool = True,
    drop_self_loops: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Canonicalize an edge list.

    Returns the (possibly symmetrized, de-duplicated, loop-free) directed
    edge list sorted by ``(src, dst)``.  This is the Graph 500 kernel-1
    preprocessing step, vectorized.
    """
    src = np.asarray(src)
    dst = np.asarray(dst)
    if src.shape != dst.shape or src.ndim != 1:
        raise GraphError("src/dst must be 1-D arrays of equal length")
    if src.size:
        lo = min(int(src.min()), int(dst.min()))
        hi = max(int(src.max()), int(dst.max()))
        if lo < 0 or hi >= num_vertices:
            raise GraphError(
                f"edge endpoint out of range [0, {num_vertices}): "
                f"saw [{lo}, {hi}]"
            )
    if drop_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
    if symmetrize:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    # Sort by (src, dst) via a single composite 64-bit key: cheaper than
    # lexsort and exact because both endpoints fit in 32 bits.
    key = src.astype(np.int64) * np.int64(num_vertices) + dst.astype(np.int64)
    order = np.argsort(key)
    key = key[order]
    if dedup and key.size:
        uniq = np.empty(key.size, dtype=bool)
        uniq[0] = True
        np.not_equal(key[1:], key[:-1], out=uniq[1:])
        order = order[uniq]
        key = key[uniq]
    out_src = (key // num_vertices).astype(np.int32)
    out_dst = (key % num_vertices).astype(np.int32)
    return out_src, out_dst


@dataclass(frozen=True)
class CSRGraph:
    """An unweighted directed graph in CSR form.

    Attributes
    ----------
    offsets:
        ``int64`` array of length ``num_vertices + 1``; the adjacency
        list of vertex ``v`` is ``targets[offsets[v]:offsets[v + 1]]``.
    targets:
        ``int32`` array of neighbour ids, concatenated per vertex and
        sorted within each list.
    symmetric:
        True when the graph was built with symmetrization (every edge
        stored in both directions), which is what the BFS kernels and
        the paper's R-MAT workloads assume.
    """

    offsets: np.ndarray
    targets: np.ndarray
    symmetric: bool = True
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        offsets = np.ascontiguousarray(self.offsets, dtype=np.int64)
        targets = np.ascontiguousarray(self.targets, dtype=np.int32)
        # Freeze the CSR storage: every traversal aliases these arrays,
        # so a stray write would corrupt all later BFS runs.  Arrays the
        # caller still owns (no-copy ascontiguousarray) are frozen too —
        # use copy_writable() when mutation is genuinely needed.
        offsets.flags.writeable = False
        targets.flags.writeable = False
        object.__setattr__(self, "offsets", offsets)
        object.__setattr__(self, "targets", targets)
        if offsets.ndim != 1 or offsets.size < 1:
            raise GraphError("offsets must be a 1-D array of length >= 1")
        if offsets[0] != 0:
            raise GraphError("offsets[0] must be 0")
        if np.any(np.diff(offsets) < 0):
            raise GraphError("offsets must be non-decreasing")
        if offsets[-1] != targets.size:
            raise GraphError(
                f"offsets[-1]={int(offsets[-1])} must equal "
                f"len(targets)={targets.size}"
            )
        if targets.size and (
            targets.min() < 0 or targets.max() >= self.num_vertices
        ):
            raise GraphError("target vertex id out of range")

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        src: Iterable[int] | np.ndarray,
        dst: Iterable[int] | np.ndarray,
        num_vertices: int,
        *,
        symmetrize: bool = True,
        dedup: bool = True,
        drop_self_loops: bool = True,
        meta: dict | None = None,
    ) -> "CSRGraph":
        """Build a CSR graph from an edge list.

        With the defaults this performs the Graph 500 kernel-1 transform:
        make undirected, drop self loops, drop duplicate edges.
        """
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        src = np.asarray(list(src) if not isinstance(src, np.ndarray) else src)
        dst = np.asarray(list(dst) if not isinstance(dst, np.ndarray) else dst)
        s, d = coalesce_edges(
            src,
            dst,
            num_vertices=num_vertices,
            symmetrize=symmetrize,
            dedup=dedup,
            drop_self_loops=drop_self_loops,
        )
        counts = np.bincount(s, minlength=num_vertices).astype(np.int64)
        offsets = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return cls(
            offsets=offsets,
            targets=d,
            symmetric=symmetrize,
            meta=dict(meta or {}),
        )

    @classmethod
    def empty(cls, num_vertices: int) -> "CSRGraph":
        """Graph with ``num_vertices`` vertices and no edges."""
        return cls(
            offsets=np.zeros(num_vertices + 1, dtype=np.int64),
            targets=np.zeros(0, dtype=np.int32),
        )

    # -- basic accessors ----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self.offsets.size - 1

    @property
    def num_directed_edges(self) -> int:
        """Number of stored (directed) adjacency entries."""
        return self.targets.size

    @property
    def num_edges(self) -> int:
        """Number of logical edges ``|E|``.

        For a symmetric graph each undirected edge is stored twice, so
        this is half the adjacency entries; for a directed graph it is
        the entry count itself.  This is the ``|E|`` used in the paper's
        ``|E|cq < |E| / M`` switching rule and in TEPS.
        """
        if self.symmetric:
            return self.targets.size // 2
        return self.targets.size

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex (``int64``).

        Computed once and cached read-only: every engine, policy and
        profiler consults degrees per level, and the ``O(V)`` diff is
        pure waste after the first call.  The cache is safe because the
        CSR arrays are frozen at construction.
        """
        cached = self.__dict__.get("_degrees")
        if cached is None:
            cached = np.diff(self.offsets)
            cached.flags.writeable = False
            object.__setattr__(self, "_degrees", cached)
        return cached

    @property
    def tiles(self) -> "BitmapTileMatrix":
        """The graph's 64×64 bitmap-tile adjacency, built once and cached.

        Same lifecycle as :attr:`degrees`: construction is ``O(E)``,
        every tile-kernel traversal needs it, and the frozen CSR arrays
        make the cache permanently valid.  Delegates to
        :func:`repro.linalg.tiles.tile_matrix` (lazy import — the
        linalg tier builds on :mod:`repro.graph`, not the reverse).
        """
        from repro.linalg.tiles import tile_matrix

        return tile_matrix(self)

    def neighbors(self, v: int) -> np.ndarray:
        """Adjacency list of vertex ``v`` (a view, not a copy)."""
        if not 0 <= v < self.num_vertices:
            raise GraphError(f"vertex {v} out of range [0, {self.num_vertices})")
        return self.targets[self.offsets[v] : self.offsets[v + 1]]

    def degree(self, v: int) -> int:
        """Out-degree of vertex ``v``."""
        if not 0 <= v < self.num_vertices:
            raise GraphError(f"vertex {v} out of range [0, {self.num_vertices})")
        return int(self.offsets[v + 1] - self.offsets[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``(u, v)`` is stored.

        Binary search over the sorted adjacency list of ``u``.
        """
        adj = self.neighbors(u)
        i = int(np.searchsorted(adj, v))
        return i < adj.size and int(adj[i]) == v

    # -- transforms -----------------------------------------------------------

    def reverse(self) -> "CSRGraph":
        """The transpose graph (identity for symmetric graphs)."""
        if self.symmetric:
            return self
        src = np.repeat(
            np.arange(self.num_vertices, dtype=np.int32), self.degrees
        )
        return CSRGraph.from_edges(
            self.targets,
            src,
            self.num_vertices,
            symmetrize=False,
            dedup=False,
            drop_self_loops=False,
            meta=self.meta,
        )

    def edge_list(self) -> tuple[np.ndarray, np.ndarray]:
        """Expand back to ``(src, dst)`` arrays of directed entries."""
        src = np.repeat(
            np.arange(self.num_vertices, dtype=np.int32), self.degrees
        )
        return src, self.targets.copy()

    def subgraph_mask(self, keep: np.ndarray) -> "CSRGraph":
        """Induced subgraph on vertices where ``keep`` is True.

        Vertices are renumbered compactly in ascending original order.
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (self.num_vertices,):
            raise GraphError("keep mask must have one entry per vertex")
        remap = np.cumsum(keep, dtype=np.int64) - 1
        src, dst = self.edge_list()
        sel = keep[src] & keep[dst]
        sub = CSRGraph.from_edges(
            remap[src[sel]].astype(np.int32),
            remap[dst[sel]].astype(np.int32),
            int(keep.sum()),
            symmetrize=False,
            dedup=False,
            drop_self_loops=False,
            meta=self.meta,
        )
        # Removing vertices keeps both directions of surviving edges, so
        # symmetry is inherited.
        object.__setattr__(sub, "symmetric", self.symmetric)
        return sub

    def copy_writable(self) -> "CSRGraph":
        """A deep copy whose CSR arrays are writable.

        Construction freezes ``offsets``/``targets`` (``writeable=False``)
        because traversals alias them; this is the explicit escape hatch
        for tests and tooling that need to corrupt or edit the storage.
        The copy owns its arrays, so un-freezing them is safe.
        """
        dup = CSRGraph(
            offsets=self.offsets.copy(),
            targets=self.targets.copy(),
            symmetric=self.symmetric,
            meta=dict(self.meta),
        )
        dup.offsets.flags.writeable = True
        dup.targets.flags.writeable = True
        return dup

    # -- memory accounting ------------------------------------------------------

    def nbytes(self) -> int:
        """Bytes of CSR storage; what a full bottom-up sweep must stream."""
        return int(self.offsets.nbytes + self.targets.nbytes)

    # -- dunder -------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"symmetric={self.symmetric})"
        )
