"""Graph 500-style validation of BFS output.

The Graph 500 specification validates a BFS run with five checks rather
than comparing against a reference traversal (which would be as costly
as the run itself).  :func:`validate_bfs` applies them, vectorized:

1. the parent map and level map agree on which vertices were reached;
2. the source is its own parent at level 0;
3. every reached non-source vertex's parent is reached, exactly one
   level closer to the source;
4. every tree edge ``(parent[v], v)`` exists in the graph;
5. every graph edge spans at most one level (no edge connects levels
   ``k`` and ``k + 2`` with both endpoints reached), and no edge joins
   a reached vertex to an unreached one.

Check 5 is what makes the level map a true *breadth-first* distance
labelling and not just any spanning tree.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.graph.csr import CSRGraph

__all__ = ["validate_bfs", "check_bfs"]


def check_bfs(
    graph: CSRGraph,
    source: int,
    parent: np.ndarray,
    level: np.ndarray,
) -> list[str]:
    """Run all validation checks; return a list of failure descriptions.

    An empty list means the output is a valid BFS of ``graph`` from
    ``source``.  ``parent``/``level`` use ``-1`` for unreached vertices.
    """
    failures: list[str] = []
    n = graph.num_vertices
    parent = np.asarray(parent)
    level = np.asarray(level)
    if parent.shape != (n,) or level.shape != (n,):
        return [
            f"map shape mismatch: parent {parent.shape}, level {level.shape},"
            f" expected ({n},)"
        ]
    if not 0 <= source < n:
        return [f"source {source} out of range [0, {n})"]

    reached = level >= 0
    if not np.array_equal(reached, parent >= 0):
        failures.append("parent map and level map disagree on reached set")
    if parent[source] != source:
        failures.append(
            f"source parent must be itself, got {int(parent[source])}"
        )
    if level[source] != 0:
        failures.append(f"source level must be 0, got {int(level[source])}")

    tree = reached.copy()
    tree[source] = False
    kids = np.nonzero(tree)[0]
    if kids.size:
        pk = parent[kids]
        bad = ~reached[np.clip(pk, 0, n - 1)] | (pk < 0) | (pk >= n)
        if bad.any():
            failures.append(
                f"{int(bad.sum())} vertices have an unreached/invalid parent"
            )
        ok = ~bad
        if (level[kids[ok]] != level[pk[ok]] + 1).any():
            nbad = int((level[kids[ok]] != level[pk[ok]] + 1).sum())
            failures.append(
                f"{nbad} tree edges do not drop exactly one level"
            )
        # Tree edges must exist in the graph.  Vectorized membership:
        # search v within parent's sorted adjacency slice.
        valid_parents = kids[ok]
        pk_ok = pk[ok]
        found = _edges_exist(graph, pk_ok, valid_parents)
        if not found.all():
            failures.append(
                f"{int((~found).sum())} tree edges are not graph edges"
            )

    # Check 5: every graph edge between reached vertices spans <= 1 level,
    # and (for symmetric graphs) never joins reached to unreached.
    src, dst = graph.edge_list()
    both = reached[src] & reached[dst]
    if both.any():
        gap = np.abs(level[src[both]] - level[dst[both]])
        if (gap > 1).any():
            failures.append(
                f"{int((gap > 1).sum())} graph edges span more than one level"
            )
    if graph.symmetric:
        half = reached[src] ^ reached[dst]
        if half.any():
            failures.append(
                f"{int(half.sum())} edges join reached to unreached vertices"
            )
    return failures


def _edges_exist(
    graph: CSRGraph, rows: np.ndarray, cols: np.ndarray
) -> np.ndarray:
    """Vectorized test that directed edges ``(rows[i], cols[i])`` exist."""
    # Adjacency lists are sorted, so each query is a binary search within
    # its row slice.  All queries bisect in lockstep: log2(max degree)
    # rounds of O(#queries) vectorized work instead of a Python loop.
    order = np.argsort(rows, kind="stable")
    rows_s, cols_s = rows[order], cols[order]
    found = np.zeros(rows.size, dtype=bool)
    starts_s = graph.offsets[rows_s].astype(np.int64)
    ends_s = graph.offsets[rows_s + 1].astype(np.int64)
    # Binary search each query within its row slice, vectorized over all
    # queries at once by iterating the bisection manually (log2(max deg)
    # iterations of O(T) work).
    lo = starts_s.copy()
    hi = ends_s.copy()
    max_deg = int((ends_s - starts_s).max(initial=0))
    steps = max(1, int(np.ceil(np.log2(max(max_deg, 1)))) + 1)
    tg = graph.targets
    for _ in range(steps):
        mid = (lo + hi) >> 1
        active = lo < hi
        midv = np.where(active, tg[np.minimum(mid, tg.size - 1)], 0)
        go_right = active & (midv < cols_s)
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(active & ~go_right, mid, hi)
    valid = (lo < ends_s) & (lo < tg.size)
    hit = np.zeros(rows.size, dtype=bool)
    hit[valid] = tg[lo[valid]] == cols_s[valid]
    found[order] = hit
    return found


def validate_bfs(
    graph: CSRGraph,
    source: int,
    parent: np.ndarray,
    level: np.ndarray,
) -> None:
    """Raise :class:`~repro.errors.ValidationError` unless the BFS output
    passes every Graph 500 check."""
    failures = check_bfs(graph, source, parent, level)
    if failures:
        raise ValidationError(
            "BFS validation failed: " + "; ".join(failures)
        )
