"""Synthetic graph generators.

The paper's entire evaluation runs on Graph 500 R-MAT graphs produced by
the Kronecker generator with ``A=0.57, B=0.19, C=0.19, D=0.05``
(Section V-A): ``2**SCALE`` vertices and ``edgefactor * 2**SCALE``
undirected edges.  :func:`rmat` reproduces that generator, vectorized —
all ``SCALE`` recursion levels of every edge are drawn at once, which is
the NumPy idiom for the reference code's per-edge loop.

Additional deterministic families (ring, star, path, grid, tree,
Erdős–Rényi) exist for tests and examples: they have known BFS level
structures against which the engines are verified.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = [
    "RMATParams",
    "GRAPH500_PARAMS",
    "rmat",
    "rmat_edges",
    "erdos_renyi",
    "watts_strogatz",
    "ring",
    "path",
    "star",
    "complete",
    "grid2d",
    "balanced_tree",
    "two_cliques_bridge",
]


@dataclass(frozen=True)
class RMATParams:
    """R-MAT partition probabilities (the ``A, B, C, D`` of Table I).

    Each edge bit chooses the (src, dst) quadrant of the recursively
    partitioned adjacency matrix with these probabilities; they must be
    non-negative and sum to 1.
    """

    a: float = 0.57
    b: float = 0.19
    c: float = 0.19
    d: float = 0.05

    def __post_init__(self) -> None:
        probs = (self.a, self.b, self.c, self.d)
        if any(p < 0 for p in probs):
            raise GraphError(f"R-MAT probabilities must be >= 0, got {probs}")
        if abs(sum(probs) - 1.0) > 1e-9:
            raise GraphError(
                f"R-MAT probabilities must sum to 1, got {sum(probs)!r}"
            )

    def as_tuple(self) -> tuple[float, float, float, float]:
        """The probabilities in ``(a, b, c, d)`` order."""
        return (self.a, self.b, self.c, self.d)


#: The Graph 500 parameterization used throughout the paper.
GRAPH500_PARAMS = RMATParams(0.57, 0.19, 0.19, 0.05)


def rmat_edges(
    scale: int,
    edgefactor: int = 16,
    params: RMATParams = GRAPH500_PARAMS,
    *,
    seed: int | np.random.Generator = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a raw R-MAT edge list (before symmetrization/dedup).

    Returns ``(src, dst)`` arrays of ``edgefactor * 2**scale`` directed
    edges over ``2**scale`` vertices.  Like the Graph 500 generator, the
    output may contain duplicates and self loops; CSR construction
    removes them.  Vertex ids are randomly permuted so vertex id carries
    no degree information (the reference generator's final shuffle).
    """
    if scale < 0:
        raise GraphError(f"scale must be >= 0, got {scale}")
    if edgefactor < 0:
        raise GraphError(f"edgefactor must be >= 0, got {edgefactor}")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = edgefactor << scale

    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    a, b, c, d = params.as_tuple()
    # Probability that the source bit is 1 (lower half): c + d.
    # Conditional probability that the dest bit is 1 given the source bit.
    p_src1 = c + d
    p_dst1_given_src0 = b / (a + b) if (a + b) > 0 else 0.0
    p_dst1_given_src1 = d / (c + d) if (c + d) > 0 else 0.0
    for bit in range(scale):
        u = rng.random(m)
        v = rng.random(m)
        src_bit = u < p_src1
        thresh = np.where(src_bit, p_dst1_given_src1, p_dst1_given_src0)
        dst_bit = v < thresh
        src |= src_bit.astype(np.int64) << bit
        dst |= dst_bit.astype(np.int64) << bit
    perm = rng.permutation(n)
    return perm[src].astype(np.int32), perm[dst].astype(np.int32)


def rmat(
    scale: int,
    edgefactor: int = 16,
    params: RMATParams = GRAPH500_PARAMS,
    *,
    seed: int | np.random.Generator = 0,
) -> CSRGraph:
    """Generate a Graph 500-style R-MAT graph as a symmetric CSR graph.

    ``2**scale`` vertices, approximately ``edgefactor * 2**scale``
    undirected edges (slightly fewer after removing duplicates and
    self loops, as in the benchmark itself).
    """
    src, dst = rmat_edges(scale, edgefactor, params, seed=seed)
    g = CSRGraph.from_edges(src, dst, 1 << scale, symmetrize=True)
    g.meta.update(
        {
            "family": "rmat",
            "scale": scale,
            "edgefactor": edgefactor,
            "rmat_params": params.as_tuple(),
            "requested_edges": edgefactor << scale,
        }
    )
    return g


def erdos_renyi(
    n: int,
    avg_degree: float,
    *,
    seed: int | np.random.Generator = 0,
) -> CSRGraph:
    """G(n, m) random graph with ``m = n * avg_degree / 2`` edges.

    Uniform random endpoints; used as a low-skew contrast workload for
    the degree-skewed R-MAT graphs.
    """
    if n <= 0:
        raise GraphError(f"n must be positive, got {n}")
    if avg_degree < 0:
        raise GraphError(f"avg_degree must be >= 0, got {avg_degree}")
    rng = np.random.default_rng(seed)
    m = int(round(n * avg_degree / 2))
    src = rng.integers(0, n, size=m, dtype=np.int64).astype(np.int32)
    dst = rng.integers(0, n, size=m, dtype=np.int64).astype(np.int32)
    g = CSRGraph.from_edges(src, dst, n, symmetrize=True)
    g.meta.update({"family": "erdos_renyi", "n": n, "avg_degree": avg_degree})
    return g


def watts_strogatz(
    n: int,
    k: int,
    beta: float,
    *,
    seed: int | np.random.Generator = 0,
) -> CSRGraph:
    """Watts–Strogatz small-world graph.

    A ring lattice where every vertex connects to its ``k`` nearest
    neighbours (``k`` even), with each edge's far endpoint rewired to a
    uniform random vertex with probability ``beta``.  Bounded degree
    and tunable clustering — the topological opposite of R-MAT's skew,
    useful for testing how the switching heuristics behave off the
    scale-free assumption.
    """
    if n < 3:
        raise GraphError(f"watts_strogatz needs n >= 3, got {n}")
    if k < 2 or k % 2 != 0 or k >= n:
        raise GraphError(
            f"k must be even with 2 <= k < n, got k={k} n={n}"
        )
    if not 0.0 <= beta <= 1.0:
        raise GraphError(f"beta must be in [0, 1], got {beta}")
    rng = np.random.default_rng(seed)
    src_parts = []
    dst_parts = []
    v = np.arange(n, dtype=np.int64)
    for offset in range(1, k // 2 + 1):
        src_parts.append(v)
        dst_parts.append((v + offset) % n)
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    rewire = rng.random(src.size) < beta
    dst = dst.copy()
    dst[rewire] = rng.integers(0, n, size=int(rewire.sum()))
    g = CSRGraph.from_edges(
        src.astype(np.int32), dst.astype(np.int32), n, symmetrize=True
    )
    g.meta.update(
        {"family": "watts_strogatz", "n": n, "k": k, "beta": beta}
    )
    return g


def ring(n: int) -> CSRGraph:
    """Cycle on ``n`` vertices — BFS from any source has ``ceil(n/2)+1`` levels."""
    if n < 3:
        raise GraphError(f"ring needs n >= 3, got {n}")
    v = np.arange(n, dtype=np.int32)
    g = CSRGraph.from_edges(v, (v + 1) % n, n, symmetrize=True)
    g.meta.update({"family": "ring", "n": n})
    return g


def path(n: int) -> CSRGraph:
    """Path graph — the worst case (diameter ``n - 1``) for bottom-up BFS."""
    if n < 1:
        raise GraphError(f"path needs n >= 1, got {n}")
    if n == 1:
        return CSRGraph.empty(1)
    v = np.arange(n - 1, dtype=np.int32)
    g = CSRGraph.from_edges(v, v + 1, n, symmetrize=True)
    g.meta.update({"family": "path", "n": n})
    return g


def star(n: int) -> CSRGraph:
    """Star with hub 0 — the best case (two levels) for bottom-up BFS."""
    if n < 2:
        raise GraphError(f"star needs n >= 2, got {n}")
    hub = np.zeros(n - 1, dtype=np.int32)
    leaves = np.arange(1, n, dtype=np.int32)
    g = CSRGraph.from_edges(hub, leaves, n, symmetrize=True)
    g.meta.update({"family": "star", "n": n})
    return g


def complete(n: int) -> CSRGraph:
    """Complete graph on ``n`` vertices."""
    if n < 1:
        raise GraphError(f"complete needs n >= 1, got {n}")
    src, dst = np.nonzero(~np.eye(n, dtype=bool))
    g = CSRGraph.from_edges(
        src.astype(np.int32), dst.astype(np.int32), n, symmetrize=False
    )
    # Every edge already appears in both directions.
    object.__setattr__(g, "symmetric", True)
    g.meta.update({"family": "complete", "n": n})
    return g


def grid2d(rows: int, cols: int) -> CSRGraph:
    """4-neighbour grid — a bounded-degree, high-diameter workload."""
    if rows < 1 or cols < 1:
        raise GraphError(f"grid needs positive dims, got {rows}x{cols}")
    idx = np.arange(rows * cols, dtype=np.int32).reshape(rows, cols)
    right_s, right_d = idx[:, :-1].ravel(), idx[:, 1:].ravel()
    down_s, down_d = idx[:-1, :].ravel(), idx[1:, :].ravel()
    g = CSRGraph.from_edges(
        np.concatenate([right_s, down_s]),
        np.concatenate([right_d, down_d]),
        rows * cols,
        symmetrize=True,
    )
    g.meta.update({"family": "grid2d", "rows": rows, "cols": cols})
    return g


def balanced_tree(branching: int, height: int) -> CSRGraph:
    """Complete ``branching``-ary tree of the given height.

    Level sets grow geometrically, exercising the hybrid's switch-to-
    bottom-up rule on a graph whose level structure is known in closed
    form.
    """
    if branching < 1:
        raise GraphError(f"branching must be >= 1, got {branching}")
    if height < 0:
        raise GraphError(f"height must be >= 0, got {height}")
    if branching == 1:
        return path(height + 1)
    n = (branching ** (height + 1) - 1) // (branching - 1)
    child = np.arange(1, n, dtype=np.int64)
    parent = (child - 1) // branching
    g = CSRGraph.from_edges(
        # repro: noqa[RPR010] — endpoint ids, not edge offsets: from_edges
        # takes int32 vertex ids and generator sizes stay far below 2^31
        parent.astype(np.int32), child.astype(np.int32), n, symmetrize=True
    )
    g.meta.update(
        {"family": "balanced_tree", "branching": branching, "height": height}
    )
    return g


def two_cliques_bridge(k: int) -> CSRGraph:
    """Two ``k``-cliques joined by one bridge edge.

    A frontier-collapse workload: the frontier explodes inside the first
    clique, shrinks to one vertex at the bridge, then explodes again —
    forcing the hybrid to switch direction twice, like the tail levels
    of Table IV.
    """
    if k < 2:
        raise GraphError(f"clique size must be >= 2, got {k}")
    src_a, dst_a = np.nonzero(np.triu(np.ones((k, k), dtype=bool), 1))
    src = np.concatenate([src_a, src_a + k, [k - 1]])
    dst = np.concatenate([dst_a, dst_a + k, [k]])
    g = CSRGraph.from_edges(
        src.astype(np.int32), dst.astype(np.int32), 2 * k, symmetrize=True
    )
    g.meta.update({"family": "two_cliques_bridge", "k": k})
    return g
