"""st-connectivity with bidirectional frontier expansion.

The paper's authors previously built st-connectivity on the Cray MTA-2
(reference [18]); this module provides the modern equivalent on top of
the library's kernels: expand a frontier from ``s`` and one from ``t``
simultaneously, always growing the cheaper side (smaller ``|E|cq``),
and stop as soon as the frontiers touch — typically examining a tiny
fraction of the graph compared to a full BFS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bfs.topdown import top_down_step
from repro.bfs.workspace import BFSWorkspace
from repro.errors import BFSError
from repro.graph.csr import CSRGraph

__all__ = ["STResult", "st_connectivity"]


@dataclass(frozen=True)
class STResult:
    """Outcome of an st-connectivity query."""

    connected: bool
    distance: int          # -1 when disconnected
    edges_examined: int
    meet_vertex: int       # -1 when disconnected

    def __bool__(self) -> bool:  # truthiness = connectivity
        return self.connected


def st_connectivity(
    graph: CSRGraph,
    s: int,
    t: int,
    *,
    workspace: BFSWorkspace | None = None,
) -> STResult:
    """Decide whether ``t`` is reachable from ``s`` (symmetric graph),
    returning the exact shortest-path distance.

    Bidirectional BFS: the two searches proceed level-synchronously,
    each step expanding whichever frontier has fewer incident edges —
    the same |E|cq-based cost reasoning as the paper's switching rule,
    applied to search scheduling.

    A ``workspace`` supplies level scratch (iota cache, claim slots);
    the two sides can share it because the claim step never reads slot
    state across levels.  The per-side parent/level maps stay private
    to this query.
    """
    n = graph.num_vertices
    for name, v in (("s", s), ("t", t)):
        if not 0 <= v < n:
            raise BFSError(f"{name}={v} out of range [0, {n})")
    if s == t:
        return STResult(True, 0, 0, s)
    if not graph.symmetric:
        raise BFSError("st_connectivity requires a symmetric graph")

    ws = workspace if workspace is not None else BFSWorkspace(n)
    degrees = graph.degrees
    # Side 0 grows from s, side 1 from t.  parent arrays double as the
    # per-side visited sets; level arrays hold per-side distances.
    parents = [np.full(n, -1, dtype=np.int64) for _ in range(2)]
    levels = [np.full(n, -1, dtype=np.int64) for _ in range(2)]
    frontiers = [
        np.array([s], dtype=np.int64),
        np.array([t], dtype=np.int64),
    ]
    for side, root in enumerate((s, t)):
        parents[side][root] = root
        levels[side][root] = 0
    depths = [0, 0]
    examined = 0

    while frontiers[0].size and frontiers[1].size:
        # Grow the cheaper side.
        cost0 = int(degrees[frontiers[0]].sum())
        cost1 = int(degrees[frontiers[1]].sum())
        side = 0 if cost0 <= cost1 else 1
        other = 1 - side
        frontier, work = top_down_step(
            graph,
            frontiers[side],
            parents[side],
            levels[side],
            depths[side],
            ws,
        )
        examined += work
        depths[side] += 1
        frontiers[side] = frontier
        # Meeting test: any new vertex already visited by the other side?
        if frontier.size:
            hits = levels[other][frontier] >= 0
            if hits.any():
                meets = frontier[hits]
                dist = int(
                    (levels[side][meets] + levels[other][meets]).min()
                )
                meet = int(
                    meets[
                        np.argmin(levels[side][meets] + levels[other][meets])
                    ]
                )
                return STResult(True, dist, examined, meet)
    return STResult(False, -1, examined, -1)
