"""Pseudo-diameter estimation by double sweep.

The R-MAT analysis in the paper leans on the graphs' tiny diameter
("Θ(D) is extremely small", Section III-A).  This module measures it:
the classic double-sweep lower bound (BFS to the farthest vertex, then
BFS from there) plus an optional multi-sweep refinement, all on the
hybrid engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bfs.hybrid import bfs_hybrid
from repro.bfs.workspace import BFSWorkspace
from repro.errors import BFSError
from repro.graph.csr import CSRGraph

__all__ = ["DiameterEstimate", "pseudo_diameter"]


@dataclass(frozen=True)
class DiameterEstimate:
    """Lower bound on a graph's diameter from sweep search."""

    lower_bound: int
    endpoint_a: int
    endpoint_b: int
    sweeps: int

    def __int__(self) -> int:
        return self.lower_bound


def pseudo_diameter(
    graph: CSRGraph,
    start: int = 0,
    *,
    sweeps: int = 4,
    m: float = 20.0,
    n: float = 100.0,
) -> DiameterEstimate:
    """Estimate the diameter of ``start``'s component.

    Alternating sweeps: BFS from the current endpoint, jump to the
    farthest vertex found (ties broken toward the lowest degree, which
    empirically pushes toward the periphery), repeat until the
    eccentricity stops growing or ``sweeps`` is exhausted.  The result
    is an exact lower bound on the true diameter.
    """
    if not 0 <= start < graph.num_vertices:
        raise BFSError(
            f"start {start} out of range [0, {graph.num_vertices})"
        )
    if sweeps < 1:
        raise BFSError(f"sweeps must be >= 1, got {sweeps}")

    best = -1
    a = b = start
    current = start
    used = 0
    degrees = graph.degrees
    # One workspace for all sweeps: each sweep's level map is consumed
    # (eccentricity + farthest set) before the next traversal reuses it.
    ws = BFSWorkspace.for_graph(graph)
    for used in range(1, sweeps + 1):
        result = bfs_hybrid(graph, current, m=m, n=n, workspace=ws)
        ecc = result.num_levels - 1
        if ecc <= best:
            break
        best = ecc
        a, current_prev = current, current
        # Farthest vertices; prefer low degree (peripheral).
        far = np.nonzero(result.level == ecc)[0]
        b = int(far[np.argmin(degrees[far])])
        current = b
        a = current_prev
    return DiameterEstimate(
        lower_bound=max(best, 0), endpoint_a=a, endpoint_b=b, sweeps=used
    )
