"""Downstream applications built on the BFS library: connected
components, st-connectivity and pseudo-diameter estimation."""

from repro.apps.components import ComponentLabels, connected_components
from repro.apps.diameter import DiameterEstimate, pseudo_diameter
from repro.apps.stcon import STResult, st_connectivity

__all__ = [
    "connected_components",
    "ComponentLabels",
    "st_connectivity",
    "STResult",
    "pseudo_diameter",
    "DiameterEstimate",
]
