"""Connected components via repeated direction-optimizing BFS.

A downstream application of the paper's kernel: label every vertex with
its component by sweeping BFS from each unvisited seed.  The hybrid
engine makes the big components cheap (bottom-up middle levels) while
tiny fragments cost a couple of top-down steps each — the same
asymmetry the paper exploits, applied across components.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bfs.bottomup import bottom_up_step
from repro.bfs.hybrid import DirectionPolicy, LevelState, MNPolicy
from repro.bfs.result import Direction
from repro.bfs.topdown import top_down_step
from repro.bfs.workspace import BFSWorkspace
from repro.errors import BFSError
from repro.graph.csr import CSRGraph

__all__ = ["ComponentLabels", "connected_components"]


@dataclass(frozen=True)
class ComponentLabels:
    """Result of a components run.

    ``labels[v]`` is the component id of vertex ``v`` (ids are dense,
    assigned in discovery order, so label 0 is the component of the
    lowest-numbered vertex).
    """

    labels: np.ndarray
    sizes: np.ndarray

    @property
    def num_components(self) -> int:
        """Number of connected components (isolated vertices count)."""
        return int(self.sizes.size)

    def giant(self) -> int:
        """Label of the largest component."""
        if self.sizes.size == 0:
            raise BFSError("empty graph has no components")
        return int(np.argmax(self.sizes))

    def giant_fraction(self) -> float:
        """Fraction of vertices inside the largest component."""
        total = int(self.sizes.sum())
        if total == 0:
            return 0.0
        return float(self.sizes.max() / total)


def connected_components(
    graph: CSRGraph,
    policy: DirectionPolicy | None = None,
    *,
    workspace: BFSWorkspace | None = None,
) -> ComponentLabels:
    """Label connected components of a symmetric graph.

    Runs a shared-state level-synchronous sweep: the parent map doubles
    as the visited set across seeds, so total work stays O(V + E)
    regardless of component count.  ``policy`` defaults to the (M, N)
    rule with moderate thresholds.  A passed-in ``workspace`` supplies
    every graph-sized scratch array (its parent/level maps are used as
    the shared visited state and left holding the final forest).
    """
    if not graph.symmetric:
        raise BFSError(
            "connected_components requires a symmetric (undirected) graph"
        )
    n = graph.num_vertices
    policy = policy or MNPolicy(20.0, 100.0)
    degrees = graph.degrees
    nedges = max(graph.num_edges, 1)

    ws = workspace if workspace is not None else BFSWorkspace(n)
    # The visited state is shared across seeds, so the per-source
    # begin() reset does not apply: clear the maps once and stamp seeds
    # by hand.
    parent, level = ws.parent, ws.level
    parent.fill(-1)
    level.fill(-1)
    ws.clear_frontier()
    ws.invalidate_unvisited()

    labels = np.full(n, -1, dtype=np.int64)
    sizes: list[int] = []
    visited = 0

    # Seeds in ascending order; big components get swallowed whole by
    # the first of their vertices encountered.  The cursor only moves
    # forward, so seed selection is O(V) across the whole run instead
    # of O(V) per component.
    cursor = 0
    while cursor < n:
        if labels[cursor] >= 0:
            cursor += 1
            continue
        seed = cursor
        comp = len(sizes)
        labels[seed] = comp
        parent[seed] = seed
        level[seed] = 0
        visited += 1
        # The seed stamp is a claim: keep the live unvisited list honest
        # before the next bottom-up level trusts it.
        ws.retire_claimed(parent)
        frontier = np.array([seed], dtype=np.int64)
        count = 1
        depth = 0
        while frontier.size:
            state = LevelState(
                depth=depth,
                frontier_vertices=int(frontier.size),
                frontier_edges=int(degrees[frontier].sum()),
                num_vertices=n,
                num_edges=nedges,
                unvisited_vertices=n - visited,
            )
            if policy.direction(state) == Direction.TOP_DOWN:
                frontier, _ = top_down_step(
                    graph, frontier, parent, level, depth, ws
                )
            else:
                bits = ws.load_frontier(frontier)
                unvisited = ws.unvisited_ids(graph, parent)
                frontier, _ = bottom_up_step(
                    graph,
                    bits,
                    parent,
                    level,
                    depth,
                    unvisited=unvisited,
                    workspace=ws,
                )
            ws.retire_claimed(parent)
            labels[frontier] = comp
            count += int(frontier.size)
            visited += int(frontier.size)
            depth += 1
        sizes.append(count)
        cursor = seed + 1
    return ComponentLabels(
        labels=labels, sizes=np.array(sizes, dtype=np.int64)
    )
