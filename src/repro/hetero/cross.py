"""The cross-architecture combination (the paper's Algorithm 3).

``run_cross_architecture`` prices a CPU-TD + GPU-CB traversal for
explicit switching points; :class:`CrossArchitectureBFS` is the full
runtime of Algorithm 3 — it obtains ``(M1, N1)`` and ``(M2, N2)`` from
a regression predictor (any object with ``predict_mn(graph, arch_td,
arch_bu)``, e.g. :class:`repro.tuning.SwitchingPointPredictor`),
builds the plan, and reports both the simulated timing and the real
traversal result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.arch.machine import SimReport, SimulatedMachine
from repro.arch.specs import ArchSpec
from repro.bfs.profiler import profile_bfs
from repro.bfs.result import BFSResult
from repro.bfs.trace import LevelProfile
from repro.errors import PlanError
from repro.graph.csr import CSRGraph
from repro.hetero.executor import annotate_sim_report
from repro.hetero.planner import cross_plan
from repro.obs.tracer import Tracer, get_tracer

__all__ = ["run_cross_architecture", "MNPredictor", "CrossArchitectureBFS", "CrossRun"]


def run_cross_architecture(
    machine: SimulatedMachine,
    profile: LevelProfile,
    m1: float,
    n1: float,
    m2: float,
    n2: float,
    *,
    cpu: str = "cpu",
    gpu: str = "gpu",
) -> SimReport:
    """Price Algorithm 3 with explicit switching points."""
    plan = cross_plan(profile, m1, n1, m2, n2, cpu=cpu, gpu=gpu)
    return machine.run(profile, plan)


@runtime_checkable
class MNPredictor(Protocol):
    """The regression model interface of Algorithm 3's first two lines."""

    def predict_mn(
        self, graph: CSRGraph, arch_td: ArchSpec, arch_bu: ArchSpec
    ) -> tuple[float, float]:
        """Return the predicted ``(M, N)`` for this traversal setup."""
        ...


@dataclass(frozen=True)
class CrossRun:
    """Everything Algorithm 3 produces for one traversal.

    ``audit`` is the optional
    :class:`~repro.obs.audit.CrossMistuningReport` comparing the
    predicted switching points against the post-hoc best ones (present
    when the engine was built with ``audit=True``).
    """

    result: BFSResult
    report: SimReport
    m1: float
    n1: float
    m2: float
    n2: float
    audit: object | None = None


class CrossArchitectureBFS:
    """Algorithm 3 end to end: regress switching points, traverse, price.

    Parameters
    ----------
    machine:
        Simulated machine that must expose the ``cpu`` and ``gpu``
        device names used here.
    predictor:
        Trained switching-point model (Fig. 6 "on-line" path).
    audit:
        When true, every :meth:`run` also prices the predicted
        switching points against a candidate sweep and attaches the
        resulting :class:`~repro.obs.audit.CrossMistuningReport` to the
        returned :class:`CrossRun`.
    """

    def __init__(
        self,
        machine: SimulatedMachine,
        predictor: MNPredictor,
        *,
        cpu: str = "cpu",
        gpu: str = "gpu",
        audit: bool = False,
        audit_candidates: int = 100,
    ) -> None:
        for dev in (cpu, gpu):
            if dev not in machine.models:
                raise PlanError(f"machine lacks device {dev!r}")
        self.machine = machine
        self.predictor = predictor
        self.cpu = cpu
        self.gpu = gpu
        self.audit = audit
        self.audit_candidates = audit_candidates

    def run(
        self, graph: CSRGraph, source: int, *, tracer: Tracer | None = None
    ) -> CrossRun:
        """Execute one traversal.

        Mirrors Algorithm 3's structure: line 1 regresses (M1, N1) for
        (graph, CPU, GPU); line 2 regresses (M2, N2) for (graph, GPU,
        GPU); the loop walks levels switching device and direction by
        the two threshold rules.  The graph is genuinely traversed (the
        parent/level maps are real and validated); only the clock is
        simulated.

        ``tracer`` overrides the process-global tracer: prediction and
        traversal become spans, the predicted switching points are
        recorded as ``tuning.predicted_mn`` instant events, and the
        priced schedule is laid out on simulated-clock device tracks.
        """
        tr = tracer if tracer is not None else get_tracer()
        cpu_spec = self.machine.specs[self.cpu]
        gpu_spec = self.machine.specs[self.gpu]
        with tr.span("cross.run", source=source):
            with tr.span("cross.predict"):
                m1, n1 = self.predictor.predict_mn(graph, cpu_spec, gpu_spec)
                m2, n2 = self.predictor.predict_mn(graph, gpu_spec, gpu_spec)
            tr.instant(
                "tuning.predicted_mn",
                m1=m1, n1=n1, m2=m2, n2=n2,
                cpu=self.cpu, gpu=self.gpu,
            )
            with tr.span("cross.traverse"):
                profile, result = profile_bfs(graph, source, tracer=tr)
            plan = cross_plan(
                profile, m1, n1, m2, n2, cpu=self.cpu, gpu=self.gpu
            )
            report = self.machine.run(profile, plan)
            annotate_sim_report(tr, report)
            audit_report = None
            if self.audit:
                # Lazy import: repro.obs.audit consumes the hetero
                # planner, so a module-level import would be circular.
                from repro.obs.audit import audit_cross_architecture

                with tr.span("cross.audit"):
                    audit_report = audit_cross_architecture(
                        profile,
                        self.machine,
                        (m1, n1, m2, n2),
                        count=self.audit_candidates,
                        cpu=self.cpu,
                        gpu=self.gpu,
                        tracer=tr,
                    )
        return CrossRun(
            result=result,
            report=report,
            m1=m1, n1=n1, m2=m2, n2=n2,
            audit=audit_report,
        )
