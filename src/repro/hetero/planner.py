"""Plan builders: from switching points to per-level placements.

Three plan families, all consuming a measured
:class:`~repro.bfs.trace.LevelProfile`:

* :func:`mn_directions` — the paper's (M, N) threshold rule applied
  level by level (Fig. 4), producing a direction column for a single
  device;
* :func:`cross_plan` — the paper's Algorithm 3: top-down on the CPU
  while ``|E|cq < |E|/M1 ∧ |V|cq < |V|/N1``, then hand off to the GPU
  for good, where a second pair ``(M2, N2)`` arbitrates top-down vs
  bottom-up (including the switch *back* to GPU top-down in the tail
  levels, which Section IV singles out);
* :func:`oracle_plan` — per-level argmin over all (device, direction)
  pairs, the upper bound the exhaustive-search experiments compare
  against.
"""

from __future__ import annotations

from repro.arch.machine import PlanStep, SimulatedMachine
from repro.bfs.result import Direction
from repro.bfs.trace import LevelProfile
from repro.errors import PlanError

__all__ = ["mn_directions", "cross_plan", "oracle_plan", "single_device_plan"]


def _td_rule(
    fe: int, fv: int, num_edges: int, num_vertices: int, m: float, n: float
) -> bool:
    """The Fig. 4 predicate: True → stay top-down."""
    return fe < num_edges / m and fv < num_vertices / n


def mn_directions(profile: LevelProfile, m: float, n: float) -> list[str]:
    """Apply the (M, N) rule to every level of ``profile``.

    Because the rule only reads ``|E|cq``/``|V|cq`` — recorded in the
    profile — the directions a live hybrid would choose are recovered
    exactly without re-traversal.
    """
    if m <= 0 or n <= 0:
        raise PlanError(f"M and N must be positive, got ({m}, {n})")
    out = []
    for rec in profile:
        td = _td_rule(
            rec.frontier_edges,
            rec.frontier_vertices,
            profile.num_edges,
            profile.num_vertices,
            m,
            n,
        )
        out.append(Direction.TOP_DOWN if td else Direction.BOTTOM_UP)
    return out


def single_device_plan(
    profile: LevelProfile, device: str, m: float, n: float
) -> list[PlanStep]:
    """A one-device combination plan under the (M, N) rule."""
    return [PlanStep(device, d) for d in mn_directions(profile, m, n)]


def cross_plan(
    profile: LevelProfile,
    m1: float,
    n1: float,
    m2: float,
    n2: float,
    *,
    cpu: str = "cpu",
    gpu: str = "gpu",
) -> list[PlanStep]:
    """Algorithm 3's placement for the whole traversal.

    Phase 1 (outer loop): levels run top-down on ``cpu`` while the
    ``(M1, N1)`` rule holds.  The first level where it fails hands off
    to ``gpu`` permanently (the paper's inner loop never returns to the
    CPU — Section IV: "it is meaningless for the CPU+GPU solution to
    switch back to CPU in the last levels").  Phase 2: each remaining
    level runs GPU top-down or GPU bottom-up under ``(M2, N2)``.
    """
    for value, label in ((m1, "M1"), (n1, "N1"), (m2, "M2"), (n2, "N2")):
        if value <= 0:
            raise PlanError(f"{label} must be positive, got {value}")
    plan: list[PlanStep] = []
    on_gpu = False
    for rec in profile:
        if not on_gpu:
            if _td_rule(
                rec.frontier_edges,
                rec.frontier_vertices,
                profile.num_edges,
                profile.num_vertices,
                m1,
                n1,
            ):
                plan.append(PlanStep(cpu, Direction.TOP_DOWN))
                continue
            on_gpu = True
        td = _td_rule(
            rec.frontier_edges,
            rec.frontier_vertices,
            profile.num_edges,
            profile.num_vertices,
            m2,
            n2,
        )
        plan.append(
            PlanStep(gpu, Direction.TOP_DOWN if td else Direction.BOTTOM_UP)
        )
    return plan


def oracle_plan(
    machine: SimulatedMachine, profile: LevelProfile
) -> list[PlanStep]:
    """Per-level argmin over every (device, direction) — the theoretical
    best placement, ignoring handoff costs (they are charged when the
    plan is priced, and at most once per device change)."""
    matrices = machine.time_matrices(profile)
    devices = sorted(matrices)
    plan: list[PlanStep] = []
    for i in range(len(profile)):
        best: tuple[float, str, str] | None = None
        for dev in devices:
            for col, direction in ((0, Direction.TOP_DOWN), (1, Direction.BOTTOM_UP)):
                t = float(matrices[dev][i, col])
                if best is None or t < best[0]:
                    best = (t, dev, direction)
        if best is None:
            raise PlanError("oracle_plan needs at least one device")
        plan.append(PlanStep(best[1], best[2]))
    return plan
