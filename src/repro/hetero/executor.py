"""Plan-driven traversal: run a real BFS under a per-level plan.

The simulated machine prices plans from counters alone; this executor
closes the loop by *actually traversing* the graph with the kernels the
plan prescribes (top-down expansion or bottom-up scan per level,
devices affecting only the simulated clock) and verifying the plan's
depth matches reality.  Used by examples and by the differential tests
that check plan-priced counters equal live-kernel counters.
"""

from __future__ import annotations

import numpy as np

from repro.arch.machine import PlanStep, SimReport, SimulatedMachine
from repro.bfs.bottomup import bottom_up_step
from repro.bfs.profiler import profile_bfs
from repro.bfs.result import BFSResult, Direction
from repro.bfs.topdown import top_down_step
from repro.bfs.workspace import BFSWorkspace
from repro.errors import PlanError
from repro.graph.csr import CSRGraph
from repro.obs.tracer import Tracer, get_tracer

__all__ = ["execute_plan", "annotate_sim_report"]


def annotate_sim_report(tracer: Tracer, report: SimReport) -> None:
    """Lay a :class:`SimReport`'s schedule onto the tracer as synthetic
    spans on simulated-clock tracks.

    Each level becomes a ``sim.level`` span on track ``sim:<device>``
    and each non-zero handoff a ``sim.transfer`` span on
    ``sim:transfer``; timestamps are the *simulator's* cumulative
    seconds (via :meth:`~repro.obs.Tracer.add_span`), so the exported
    trace shows the simulated device schedule as its own row group next
    to the real wall-clock rows.  No-op on a disabled tracer.
    """
    if not tracer.enabled:
        return
    t = 0.0
    for i, step in enumerate(report.steps):
        xfer = float(report.transfer_seconds[i])
        if xfer > 0:
            tracer.add_span(
                "sim.transfer", t, t + xfer, track="sim:transfer", level=i
            )
            t += xfer
        dur = float(report.level_seconds[i])
        tracer.add_span(
            "sim.level",
            t,
            t + dur,
            track=f"sim:{step.device}",
            level=i,
            device=step.device,
            direction=step.direction,
        )
        t += dur


def execute_plan(
    machine: SimulatedMachine,
    graph: CSRGraph,
    source: int,
    plan: list[PlanStep],
    *,
    workspace: BFSWorkspace | None = None,
    tracer: Tracer | None = None,
) -> tuple[BFSResult, SimReport]:
    """Traverse ``graph`` from ``source`` following ``plan``.

    Each level runs the direction the plan prescribes with the real
    vectorized kernel; the returned :class:`SimReport` prices the same
    levels on the plan's devices.  Raises
    :class:`~repro.errors.PlanError` when the plan is shorter or longer
    than the traversal it claims to describe.

    ``tracer`` overrides the process-global tracer: each level's real
    wall time lands on a per-device track (``dev:<name>``) and the
    priced schedule is appended as simulated-clock spans
    (:func:`annotate_sim_report`).

    Ownership note: plan execution is strictly single-threaded — this
    function is the sole owner of ``workspace`` (parent/level maps,
    frontier bitmap, scratch) for the duration of the call, so the
    parallel engine's ownership protocol does not apply here.  The
    returned result aliases the workspace arrays until ``detach()``,
    exactly like the other engines (deep lint rule ``RPR011`` guards
    post-return writes).
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise PlanError(f"source {source} out of range [0, {n})")
    tr = tracer if tracer is not None else get_tracer()

    ws = workspace if workspace is not None else BFSWorkspace(n)
    parent, level = ws.begin(source)
    frontier = np.array([source], dtype=np.int64)

    directions: list[str] = []
    edges_examined: list[int] = []
    depth = 0
    with tr.span("hetero.execute_plan", source=source, levels=len(plan)):
        while frontier.size:
            if depth >= len(plan):
                raise PlanError(
                    f"plan has {len(plan)} levels but the traversal reached "
                    f"level {depth + 1}"
                )
            step = plan[depth]
            fv = int(frontier.size)
            with tr.span(
                "hetero.level",
                track=f"dev:{step.device}",
                depth=depth,
                device=step.device,
                direction=step.direction,
            ) as sp:
                if step.direction == Direction.TOP_DOWN:
                    frontier, work = top_down_step(
                        graph, frontier, parent, level, depth, ws
                    )
                else:
                    bits = ws.load_frontier(frontier)
                    unvisited = ws.unvisited_ids(graph, parent)
                    frontier, work = bottom_up_step(
                        graph,
                        bits,
                        parent,
                        level,
                        depth,
                        unvisited=unvisited,
                        workspace=ws,
                    )
                ws.retire_claimed(parent)
                sp.set("frontier_vertices", fv)
                sp.set("edges_examined", work)
                sp.set("claimed", int(frontier.size))
            directions.append(step.direction)
            edges_examined.append(work)
            depth += 1
        if depth != len(plan):
            raise PlanError(
                f"plan has {len(plan)} levels but the traversal finished "
                f"after {depth}"
            )

    result = BFSResult(
        source=source,
        parent=parent,
        level=level,
        directions=directions,
        edges_examined=edges_examined,
    )
    # Price the identical traversal (counters re-measured for fidelity).
    profile, _ = profile_bfs(graph, source)
    report = machine.run(profile, plan)
    annotate_sim_report(tr, report)
    return result, report
