"""Plan-driven traversal: run a real BFS under a per-level plan.

The simulated machine prices plans from counters alone; this executor
closes the loop by *actually traversing* the graph with the kernels the
plan prescribes (top-down expansion or bottom-up scan per level,
devices affecting only the simulated clock) and verifying the plan's
depth matches reality.  Used by examples and by the differential tests
that check plan-priced counters equal live-kernel counters.
"""

from __future__ import annotations

import numpy as np

from repro.arch.machine import PlanStep, SimReport, SimulatedMachine
from repro.bfs.bottomup import bottom_up_step
from repro.bfs.profiler import profile_bfs
from repro.bfs.result import BFSResult, Direction
from repro.bfs.topdown import top_down_step
from repro.bfs.workspace import BFSWorkspace
from repro.errors import PlanError
from repro.graph.csr import CSRGraph

__all__ = ["execute_plan"]


def execute_plan(
    machine: SimulatedMachine,
    graph: CSRGraph,
    source: int,
    plan: list[PlanStep],
    *,
    workspace: BFSWorkspace | None = None,
) -> tuple[BFSResult, SimReport]:
    """Traverse ``graph`` from ``source`` following ``plan``.

    Each level runs the direction the plan prescribes with the real
    vectorized kernel; the returned :class:`SimReport` prices the same
    levels on the plan's devices.  Raises
    :class:`~repro.errors.PlanError` when the plan is shorter or longer
    than the traversal it claims to describe.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise PlanError(f"source {source} out of range [0, {n})")

    ws = workspace if workspace is not None else BFSWorkspace(n)
    parent, level = ws.begin(source)
    frontier = np.array([source], dtype=np.int64)

    directions: list[str] = []
    edges_examined: list[int] = []
    depth = 0
    while frontier.size:
        if depth >= len(plan):
            raise PlanError(
                f"plan has {len(plan)} levels but the traversal reached "
                f"level {depth + 1}"
            )
        step = plan[depth]
        if step.direction == Direction.TOP_DOWN:
            frontier, work = top_down_step(
                graph, frontier, parent, level, depth, ws
            )
        else:
            bits = ws.load_frontier(frontier)
            unvisited = ws.unvisited_ids(graph, parent)
            frontier, work = bottom_up_step(
                graph,
                bits,
                parent,
                level,
                depth,
                unvisited=unvisited,
                workspace=ws,
            )
        ws.retire_claimed(parent)
        directions.append(step.direction)
        edges_examined.append(work)
        depth += 1
    if depth != len(plan):
        raise PlanError(
            f"plan has {len(plan)} levels but the traversal finished "
            f"after {depth}"
        )

    result = BFSResult(
        source=source,
        parent=parent,
        level=level,
        directions=directions,
        edges_examined=edges_examined,
    )
    # Price the identical traversal (counters re-measured for fidelity).
    profile, _ = profile_bfs(graph, source)
    report = machine.run(profile, plan)
    return result, report
