"""Heterogeneous execution: plan builders, single-architecture
combinations and the paper's Algorithm 3 cross-architecture runtime."""

from repro.hetero.combination import DeviceRuns, run_single_device
from repro.hetero.cross import (
    CrossArchitectureBFS,
    CrossRun,
    MNPredictor,
    run_cross_architecture,
)
from repro.hetero.executor import execute_plan
from repro.hetero.planner import (
    cross_plan,
    mn_directions,
    oracle_plan,
    single_device_plan,
)

__all__ = [
    "mn_directions",
    "single_device_plan",
    "cross_plan",
    "oracle_plan",
    "DeviceRuns",
    "run_single_device",
    "run_cross_architecture",
    "MNPredictor",
    "CrossArchitectureBFS",
    "CrossRun",
    "execute_plan",
]
