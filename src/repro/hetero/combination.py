"""Single-architecture combinations (the paper's GPUCB / CPUCB / MICCB).

Bundles the three per-device baselines every experiment compares:
pure top-down, pure bottom-up, and the (M, N) combination, each priced
over one measured level profile on the simulated machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.machine import PlanStep, SimReport, SimulatedMachine
from repro.bfs.result import Direction
from repro.bfs.trace import LevelProfile
from repro.errors import PlanError
from repro.hetero.planner import single_device_plan

__all__ = ["DeviceRuns", "run_single_device"]


@dataclass(frozen=True)
class DeviceRuns:
    """Top-down, bottom-up and combination reports for one device."""

    device: str
    top_down: SimReport
    bottom_up: SimReport
    combination: SimReport

    def speedup_cb_over_td(self) -> float:
        """The headline per-device gain of direction optimization."""
        return self.top_down.total_seconds / self.combination.total_seconds

    def speedup_cb_over_bu(self) -> float:
        """Combination speedup over pure bottom-up."""
        return self.bottom_up.total_seconds / self.combination.total_seconds


def run_single_device(
    machine: SimulatedMachine,
    profile: LevelProfile,
    device: str,
    m: float,
    n: float,
) -> DeviceRuns:
    """Price TD / BU / CB(M, N) on ``device`` over ``profile``."""
    if device not in machine.models:
        raise PlanError(f"unknown device {device!r}")
    depth = len(profile)
    td_plan = [PlanStep(device, Direction.TOP_DOWN)] * depth
    bu_plan = [PlanStep(device, Direction.BOTTOM_UP)] * depth
    cb_plan = single_device_plan(profile, device, m, n)
    return DeviceRuns(
        device=device,
        top_down=machine.run(profile, td_plan),
        bottom_up=machine.run(profile, bu_plan),
        combination=machine.run(profile, cb_plan),
    )
