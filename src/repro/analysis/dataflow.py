"""Intraprocedural abstract interpretation for the deep lint rules.

This module implements a small abstract interpreter over Python AST
with a NumPy-aware value domain, and registers three deep rules on top
of it:

========  ==============================================================
RPR010    silent dtype narrowing / mixed-dtype index math on the kernel
          hot path: ``x.astype(np.int32)`` (or ``dtype=`` construction,
          or a store into a known-int32 array) where the abstract dtype
          of ``x`` is *known* to be 64-bit, and ``uint64 (op) int64``
          array arithmetic, which NumPy resolves by promoting to
          float64
RPR011    write to a workspace-aliased array (``parent``, ``level``,
          claim slots, scratch buffers, ``workspace.begin()``) while a
          live :class:`~repro.bfs.result.BFSResult` still aliases it —
          results alias workspace storage until ``detach()``
RPR012    a ``workspace.buffer(...)`` scratch array that is written but
          never read in its function — a dead store burning memory
          bandwidth on the hot path
========  ==============================================================

The value domain tracks, per local variable:

* an abstract **dtype** (``int32``/``int64``/``uint64``/``bool``/
  ``float32``/``float64`` or unknown) propagated through assignments,
  slicing, ``astype``, views, and arithmetic with NumPy's promotion
  rules;
* a **kind** (array / scalar / workspace / result / tuple / unknown) —
  the rank-0 vs rank-1 shape distinction the narrowing rules need;
* an **alias set** of symbolic workspace locations
  (``ws.parent``, ``ws.level``, ``ws.claim``, ``ws.iota``,
  ``ws.buffer:<name>``), seeded from :class:`BFSWorkspace` API calls
  and preserved through basic-slice views, dropped by copies.

The interpreter is deliberately approximate: branches are joined
point-wise, loop bodies are interpreted once, and anything it cannot
prove is *unknown* — every rule here only fires on facts the lattice
actually established, so unknown never produces a finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Iterator

from repro.analysis.lint import ModuleContext, rule

__all__ = [
    "AbstractValue",
    "DataflowReport",
    "analyze",
    "promote",
    "UNKNOWN",
    "check_dataflow_narrowing",
    "check_alias_writes",
    "check_dead_scratch_stores",
]

# -- dtype lattice --------------------------------------------------------

_SIGNED = ("int8", "int16", "int32", "int64")
_UNSIGNED = ("uint8", "uint16", "uint32", "uint64")
_FLOATS = ("float32", "float64")
_INT_WIDTH = {d: int(d.lstrip("uint")) for d in (*_SIGNED, *_UNSIGNED)}

#: AST spellings of a dtype (``np.int32``, ``'i4'``, ``'<i4'`` ...)
#: mapped to the canonical lattice name.
_DTYPE_TOKENS = {
    "int8": "int8", "int16": "int16",
    "int32": "int32", "i4": "int32", "<i4": "int32", "intc": "int32",
    "int64": "int64", "i8": "int64", "<i8": "int64", "intp": "int64",
    "int_": "int64", "longlong": "int64",
    "uint32": "uint32", "u4": "uint32", "<u4": "uint32",
    "uint64": "uint64", "u8": "uint64", "<u8": "uint64",
    "bool": "bool", "bool_": "bool", "?": "bool",
    "float32": "float32", "f4": "float32",
    "float64": "float64", "f8": "float64", "double": "float64",
}

#: Attribute names with a conventional dtype in this codebase (the CSR
#: contract: offsets/degrees int64, targets int32; bitmap words uint64).
_ATTR_DTYPES = {
    "offsets": "int64",
    "degrees": "int64",
    "targets": "int32",
    "words": "uint64",
}


def promote(a: str | None, b: str | None) -> str | None:
    """NumPy-style dtype promotion on the lattice (None = unknown)."""
    if a is None or b is None:
        return None
    if a == b:
        return a
    if a == "bool":
        return b
    if b == "bool":
        return a
    if a in _FLOATS or b in _FLOATS:
        if a == "float64" or b == "float64":
            return "float64"
        other = b if a == "float32" else a
        if other in _INT_WIDTH and _INT_WIDTH[other] >= 32:
            return "float64"
        return "float32"
    a_signed, b_signed = a in _SIGNED, b in _SIGNED
    if a_signed == b_signed:
        return a if _INT_WIDTH[a] >= _INT_WIDTH[b] else b
    # mixed signed/unsigned: uint64 forces float64 (no common integer)
    unsigned = a if a in _UNSIGNED else b
    signed = b if a in _UNSIGNED else a
    if unsigned == "uint64":
        return "float64"
    width = max(_INT_WIDTH[signed], 2 * _INT_WIDTH[unsigned])
    return f"int{min(width, 64)}"


def _is_64bit_int(dtype: str | None) -> bool:
    return dtype in ("int64", "uint64")


def _is_narrow_int(dtype: str | None) -> bool:
    return dtype in ("int8", "int16", "int32", "uint8", "uint16", "uint32")


# -- abstract values ------------------------------------------------------


@dataclass(frozen=True)
class AbstractValue:
    """One point in the value lattice.

    ``kind`` is one of ``'array'``, ``'scalar'``, ``'workspace'``,
    ``'result'``, ``'tuple'`` or ``None`` (unknown).  ``rid`` links a
    result value back to its creation record for ``detach()`` tracking.
    """

    dtype: str | None = None
    kind: str | None = None
    aliases: frozenset[str] = frozenset()
    elts: tuple = ()
    rid: int = -1


UNKNOWN = AbstractValue()


def _join_values(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    if a is b:
        return a
    return AbstractValue(
        dtype=a.dtype if a.dtype == b.dtype else None,
        kind=a.kind if a.kind == b.kind else None,
        aliases=a.aliases | b.aliases,
        rid=a.rid if a.rid == b.rid else -1,
    )


def _join_envs(a: dict, b: dict) -> dict:
    out = {}
    for name in set(a) | set(b):
        va, vb = a.get(name, UNKNOWN), b.get(name, UNKNOWN)
        out[name] = _join_values(va, vb)
    return out


@dataclass
class DataflowReport:
    """Findings from one module's interpretation, bucketed by rule."""

    narrowing: list[tuple[int, int, str]] = field(default_factory=list)
    alias_writes: list[tuple[int, int, str]] = field(default_factory=list)
    dead_stores: list[tuple[int, int, str]] = field(default_factory=list)


# -- the interpreter ------------------------------------------------------

_WORKSPACE_PARAM_NAMES = {"workspace", "ws"}
_MUTATING_METHODS = {"fill", "sort", "resize", "put", "partition",
                     "setfield", "byteswap"}
#: np namespace calls whose result keeps the first argument's dtype.
_PASSTHROUGH_FNS = {
    "sort", "unique", "ravel", "ascontiguousarray", "concatenate",
    "hstack", "copy", "take", "repeat", "tile", "roll", "flip",
    "compress", "minimum", "maximum", "clip", "abs", "negative",
    "cumsum", "append",
}
#: np calls returning int64 index arrays.
_INDEX_FNS = {"flatnonzero", "nonzero", "argsort", "argwhere", "searchsorted",
              "argmin", "argmax", "lexsort"}
_BOOL_FNS = {"less", "greater", "less_equal", "greater_equal", "equal",
             "not_equal", "isin", "logical_and", "logical_or", "logical_not",
             "isfinite", "isnan"}


class _FunctionInterpreter:
    """Interprets one function body (or the module top level)."""

    def __init__(
        self,
        ctx: ModuleContext,
        report: DataflowReport,
        *,
        self_is_workspace: bool = False,
    ) -> None:
        self.ctx = ctx
        self.report = report
        self.env: dict[str, AbstractValue] = {}
        self.self_is_workspace = self_is_workspace
        # Live BFSResult records: {"aliases", "detached", "line"}
        self.results: list[dict] = []
        # Scratch-buffer registry: var -> {"buffer", "line", "col",
        # "writes", "reads"}
        self.buffers: dict[str, dict] = {}

    # -- entry points ----------------------------------------------------

    def run_function(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._seed_params(fn)
        self.exec_body(fn.body)
        self._finish_dead_stores()

    def run_module_body(self, body: list[ast.stmt]) -> None:
        stmts = [
            s for s in body
            if not isinstance(
                s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        self.exec_body(stmts)
        self._finish_dead_stores()

    def _seed_params(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        a = fn.args
        for p in (*a.posonlyargs, *a.args, *a.kwonlyargs):
            ann = getattr(p, "annotation", None)
            ann_name = None
            if isinstance(ann, ast.Name):
                ann_name = ann.id
            elif isinstance(ann, ast.Attribute):
                ann_name = ann.attr
            elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                ann_name = ann.value.strip().split(".")[-1].split(" ")[0]
            if (
                p.arg in _WORKSPACE_PARAM_NAMES
                or ann_name == "BFSWorkspace"
            ):
                self.env[p.arg] = AbstractValue(kind="workspace")
            elif p.arg == "self" and self.self_is_workspace:
                self.env[p.arg] = AbstractValue(kind="workspace")
            elif p.arg in ("parent", "level", "cand_parent", "frontier",
                           "unvisited"):
                # documented convention: the BFS parent/level maps and
                # the frontier/unvisited queues are int64 arrays
                # wherever they appear as parameters
                self.env[p.arg] = AbstractValue(dtype="int64", kind="array")

    # -- statements ------------------------------------------------------

    def exec_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for tgt in stmt.targets:
                self.bind(tgt, value, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.bind(stmt.target, self.eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Subscript):
                base = self.eval(stmt.target.value)  # read-modify-write
                self.eval(stmt.target.slice)
                self.record_write(stmt.target, base, value)
            elif isinstance(stmt.target, ast.Name):
                cur = self.env.get(stmt.target.id, UNKNOWN)
                self._read_name(stmt.target.id)
                self._check_mixed(cur, value, stmt)
                self.env[stmt.target.id] = replace(
                    cur, dtype=promote(cur.dtype, value.dtype)
                )
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            before = dict(self.env)
            self.exec_body(stmt.body)
            after_then = self.env
            self.env = dict(before)
            self.exec_body(stmt.orelse)
            self.env = _join_envs(after_then, self.env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_val = self.eval(stmt.iter)
            elem = UNKNOWN
            if iter_val.kind == "array":
                elem = AbstractValue(dtype=iter_val.dtype, kind="scalar")
            before = dict(self.env)
            self.bind(stmt.target, elem, stmt.iter)
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
            self.env = _join_envs(before, self.env)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            before = dict(self.env)
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
            self.env = _join_envs(before, self.env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                val = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.bind(item.optional_vars, val, item.context_expr)
            self.exec_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_body(stmt.body)
            before = dict(self.env)
            for handler in stmt.handlers:
                self.env = dict(before)
                self.exec_body(handler.body)
            self.env = before
            self.exec_body(stmt.orelse)
            self.exec_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Delete)):
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                    self._read_name(sub.id)
        # nested defs / classes: interpreted separately by analyze()

    # -- binding and writes ----------------------------------------------

    def bind(self, tgt: ast.expr, value: AbstractValue,
             src: ast.expr | None) -> None:
        if isinstance(tgt, ast.Name):
            # rebinding a scratch var closes out its dead-store record
            if tgt.id in self.buffers and value.kind != "array":
                self.buffers.pop(tgt.id, None)
            self.env[tgt.id] = value
            if src is not None:
                buf = self._buffer_origin(src)
                if buf is not None:
                    self.buffers[tgt.id] = {
                        "buffer": buf,
                        "line": tgt.lineno,
                        "col": tgt.col_offset,
                        "writes": 0,
                        "write_line": None,
                        "reads": 0,
                    }
        elif isinstance(tgt, (ast.Tuple, ast.List)):
            elts = value.elts if value.kind == "tuple" else ()
            for i, elt in enumerate(tgt.elts):
                sub_val = elts[i] if i < len(elts) else UNKNOWN
                sub_src = None
                if isinstance(src, (ast.Tuple, ast.List)) and i < len(src.elts):
                    sub_src = src.elts[i]
                self.bind(elt, sub_val, sub_src)
        elif isinstance(tgt, ast.Subscript):
            base = self._eval_store_base(tgt.value)
            self.eval(tgt.slice)
            self.record_write(tgt, base, value)
        elif isinstance(tgt, ast.Attribute):
            self.eval(tgt.value)

    def _eval_store_base(self, node: ast.expr) -> AbstractValue:
        """Evaluate the base of a pure store target without recording a
        read — ``buf[:k] = x`` does not read ``buf``'s contents."""
        if isinstance(node, ast.Name):
            return self.env.get(node.id, UNKNOWN)
        return self.eval(node)

    def _buffer_origin(self, src: ast.expr) -> str | None:
        """``workspace.buffer('name', ...)`` call → the buffer name."""
        if not (isinstance(src, ast.Call)
                and isinstance(src.func, ast.Attribute)
                and src.func.attr == "buffer"):
            return None
        base = self.eval(src.func.value)
        if base.kind != "workspace":
            return None
        if src.args and isinstance(src.args[0], ast.Constant):
            return str(src.args[0].value)
        return "<dynamic>"

    def record_write(
        self,
        node: ast.AST,
        target: AbstractValue,
        value: AbstractValue,
        *,
        target_name: str | None = None,
    ) -> None:
        """A store into ``target`` (subscript/fill/out=); run the
        narrowing, alias-liveness, and dead-store bookkeeping."""
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        # RPR010: 64-bit array stored into a known narrow-int array.
        if (
            self.ctx.hot_path
            and target.kind == "array"
            and _is_narrow_int(target.dtype)
            and value.kind == "array"
            and _is_64bit_int(value.dtype)
        ):
            self.report.narrowing.append((
                line, col,
                f"storing a {value.dtype} array into a {target.dtype} "
                "array silently narrows 64-bit indices on the hot path",
            ))
        # RPR011: write to storage a live result still aliases.
        if target.aliases:
            for rec in self.results:
                if rec["detached"]:
                    continue
                shared = target.aliases & rec["aliases"]
                if shared:
                    where = ", ".join(sorted(shared))
                    self.report.alias_writes.append((
                        line, col,
                        f"write to workspace storage ({where}) still "
                        "aliased by the BFSResult constructed at line "
                        f"{rec['line']}; call .detach() first",
                    ))
                    break
        # RPR012 bookkeeping: writes into a registered scratch buffer.
        name = target_name
        if name is None and isinstance(node, ast.Subscript):
            inner = node.value
            while isinstance(inner, ast.Subscript):
                inner = inner.value
            if isinstance(inner, ast.Name):
                name = inner.id
        if name is not None and name in self.buffers:
            entry = self.buffers[name]
            entry["writes"] += 1
            if entry["write_line"] is None:
                entry["write_line"] = (line, col)

    def _read_name(self, name: str) -> None:
        if name in self.buffers:
            self.buffers[name]["reads"] += 1

    def _finish_dead_stores(self) -> None:
        for name, entry in self.buffers.items():
            if entry["writes"] > 0 and entry["reads"] == 0:
                line, col = entry["write_line"]
                self.report.dead_stores.append((
                    line, col,
                    f"scratch buffer `{name}` "
                    f"(workspace.buffer({entry['buffer']!r})) is written "
                    "but never read — dead store on the hot path",
                ))

    def _check_mixed(
        self, left: AbstractValue, right: AbstractValue, node: ast.AST
    ) -> None:
        """RPR010 (mixed): uint64 × signed-int array arithmetic — NumPy
        resolves it to float64, corrupting index math."""
        if not self.ctx.hot_path:
            return
        if left.kind != "array" or right.kind != "array":
            return
        dtypes = {left.dtype, right.dtype}
        if "uint64" in dtypes and dtypes & set(_SIGNED):
            signed = next(d for d in dtypes if d in _SIGNED)
            self.report.narrowing.append((
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
                f"mixed uint64/{signed} array arithmetic promotes to "
                "float64; cast one side explicitly",
            ))

    # -- expressions -----------------------------------------------------

    def eval(self, node: ast.expr) -> AbstractValue:
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                self._read_name(node.id)
            return self.env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return AbstractValue(dtype="bool", kind="scalar")
            if isinstance(node.value, int):
                return AbstractValue(dtype=None, kind="pyint")
            return UNKNOWN
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left)
            right = self.eval(node.right)
            self._check_mixed(left, right, node)
            kind = "array" if "array" in (left.kind, right.kind) else "scalar"
            dtype = promote(left.dtype, right.dtype)
            if dtype is None:
                # NEP 50: a Python int is weakly typed — the array
                # operand's dtype wins
                if left.kind == "pyint":
                    dtype = right.dtype
                elif right.kind == "pyint":
                    dtype = left.dtype
            return AbstractValue(dtype=dtype, kind=kind)
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand)
            if isinstance(node.op, ast.Not):
                return AbstractValue(dtype="bool", kind=operand.kind)
            return operand
        if isinstance(node, ast.Compare):
            left = self.eval(node.left)
            kinds = {left.kind}
            for comp in node.comparators:
                kinds.add(self.eval(comp).kind)
            kind = "array" if "array" in kinds else "scalar"
            return AbstractValue(dtype="bool", kind=kind)
        if isinstance(node, ast.BoolOp):
            vals = [self.eval(v) for v in node.values]
            out = vals[0]
            for v in vals[1:]:
                out = _join_values(out, v)
            return out
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return _join_values(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, (ast.Tuple, ast.List)):
            elts = tuple(self.eval(e) for e in node.elts)
            return AbstractValue(kind="tuple", elts=elts)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            for gen in node.generators:
                self.eval(gen.iter)
            return UNKNOWN
        if isinstance(node, ast.JoinedStr):
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    self.eval(part.value)
            return UNKNOWN
        if isinstance(node, ast.Dict):
            for k, v in zip(node.keys, node.values):
                if k is not None:
                    self.eval(k)
                self.eval(v)
            return UNKNOWN
        if isinstance(node, ast.Lambda):
            return UNKNOWN
        return UNKNOWN

    def _eval_attribute(self, node: ast.Attribute) -> AbstractValue:
        base = self.eval(node.value)
        attr = node.attr
        if base.kind == "workspace" and attr in ("parent", "level"):
            return AbstractValue(
                dtype="int64", kind="array",
                aliases=frozenset({f"ws.{attr}"}),
            )
        if base.kind == "result" and attr in ("parent", "level"):
            rec = (
                self.results[base.rid]
                if 0 <= base.rid < len(self.results) else None
            )
            aliases = frozenset(rec["aliases"]) if rec else frozenset()
            return AbstractValue(dtype="int64", kind="array", aliases=aliases)
        if attr in _ATTR_DTYPES:
            return AbstractValue(dtype=_ATTR_DTYPES[attr], kind="array",
                                 aliases=base.aliases)
        if attr in ("size", "shape", "ndim", "nbytes"):
            return AbstractValue(kind="scalar")
        if attr == "dtype":
            return UNKNOWN
        if attr in ("T", "flat", "real"):
            return replace(base, kind=base.kind)
        return UNKNOWN

    def _eval_subscript(self, node: ast.Subscript) -> AbstractValue:
        base = self.eval(node.value)
        index = self.eval(node.slice)
        if base.kind == "tuple":
            if (isinstance(node.slice, ast.Constant)
                    and isinstance(node.slice.value, int)
                    and 0 <= node.slice.value < len(base.elts)):
                return base.elts[node.slice.value]
            return UNKNOWN
        if base.kind != "array":
            return UNKNOWN
        if isinstance(node.slice, ast.Slice) or (
            isinstance(node.slice, ast.Tuple)
            and all(isinstance(e, ast.Slice) for e in node.slice.elts)
        ):
            # basic slicing returns a view: aliases survive
            return replace(base, kind="array")
        if index.kind == "array":
            # fancy indexing copies: aliases dropped
            return AbstractValue(dtype=base.dtype, kind="array")
        return AbstractValue(dtype=base.dtype, kind="scalar")

    def _dtype_of_node(self, node: ast.expr | None) -> str | None:
        if node is None:
            return None
        if isinstance(node, ast.Attribute):
            return _DTYPE_TOKENS.get(node.attr)
        if isinstance(node, ast.Name):
            return _DTYPE_TOKENS.get(node.id)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return _DTYPE_TOKENS.get(node.value)
        return None

    def _eval_call(self, node: ast.Call) -> AbstractValue:
        fn = node.func
        # keyword handling shared by every branch below: out= is a
        # write target, not a read.
        out_kw = None
        dtype_kw = None
        for kw in node.keywords:
            if kw.arg == "out" and isinstance(kw.value, ast.Name):
                out_kw = kw.value
            elif kw.arg == "dtype":
                dtype_kw = kw.value

        if isinstance(fn, ast.Attribute):
            result = self._eval_method_call(node, fn, dtype_kw)
        else:
            result = self._eval_plain_call(node, fn, dtype_kw)

        if out_kw is not None:
            target = self.env.get(out_kw.id, UNKNOWN)
            self.record_write(node, target, result, target_name=out_kw.id)
        # evaluate remaining keyword expressions for their read effects
        for kw in node.keywords:
            if kw.arg == "out" and isinstance(kw.value, ast.Name):
                continue
            self.eval(kw.value)
        return result

    def _eval_method_call(
        self, node: ast.Call, fn: ast.Attribute, dtype_kw: ast.expr | None
    ) -> AbstractValue:
        attr = fn.attr
        if attr in _MUTATING_METHODS:
            # buf.fill(x) writes buf's contents without reading them
            base = self._eval_store_base(fn.value)
        else:
            base = self.eval(fn.value)
        args = [self.eval(a) for a in node.args]

        if base.kind == "workspace":
            return self._eval_workspace_call(node, attr, dtype_kw)

        if attr == "astype":
            target_dtype = self._dtype_of_node(
                node.args[0] if node.args else dtype_kw
            )
            if (
                self.ctx.hot_path
                and base.kind == "array"
                and _is_64bit_int(base.dtype)
                and _is_narrow_int(target_dtype)
            ):
                self.report.narrowing.append((
                    node.lineno, node.col_offset,
                    f"astype narrows a known {base.dtype} array to "
                    f"{target_dtype}; 64-bit indices silently truncate "
                    "past 2^31",
                ))
            return AbstractValue(dtype=target_dtype, kind="array")
        if attr == "detach":
            if base.kind == "result" and 0 <= base.rid < len(self.results):
                self.results[base.rid]["detached"] = True
            return base
        if attr in _MUTATING_METHODS:
            name = fn.value.id if isinstance(fn.value, ast.Name) else None
            self.record_write(
                node, base, args[0] if args else UNKNOWN, target_name=name
            )
            return UNKNOWN
        if attr == "copy":
            return AbstractValue(dtype=base.dtype, kind=base.kind)
        if attr == "view":
            return replace(base, dtype=self._dtype_of_node(
                node.args[0] if node.args else dtype_kw
            ) or base.dtype)
        if attr in ("sum", "max", "min", "item"):
            return AbstractValue(dtype=base.dtype, kind="scalar")
        if attr in ("any", "all"):
            return AbstractValue(dtype="bool", kind="scalar")
        # np.<fn>(...) namespace calls
        return self._eval_np_call(node, attr, args, dtype_kw)

    def _eval_workspace_call(
        self, node: ast.Call, attr: str, dtype_kw: ast.expr | None
    ) -> AbstractValue:
        for a in node.args:
            self.eval(a)
        if attr == "begin":
            # begin() resets parent/level in place — a write event
            target = AbstractValue(
                dtype="int64", kind="array",
                aliases=frozenset({"ws.parent", "ws.level"}),
            )
            self.record_write(node, target, UNKNOWN)
            return AbstractValue(kind="tuple", elts=(
                AbstractValue(dtype="int64", kind="array",
                              aliases=frozenset({"ws.parent"})),
                AbstractValue(dtype="int64", kind="array",
                              aliases=frozenset({"ws.level"})),
            ))
        if attr == "buffer":
            dtype = self._dtype_of_node(
                node.args[2] if len(node.args) > 2 else dtype_kw
            )
            bufname = "<dynamic>"
            if node.args and isinstance(node.args[0], ast.Constant):
                bufname = str(node.args[0].value)
            return AbstractValue(
                dtype=dtype, kind="array",
                aliases=frozenset({f"ws.buffer:{bufname}"}),
            )
        if attr == "claim_slots":
            return AbstractValue(dtype="int64", kind="array",
                                 aliases=frozenset({"ws.claim"}))
        if attr == "iota":
            return AbstractValue(dtype="int64", kind="array",
                                 aliases=frozenset({"ws.iota"}))
        if attr == "unvisited_ids":
            return AbstractValue(dtype="int64", kind="array",
                                 aliases=frozenset({"ws.unvisited"}))
        return UNKNOWN

    def _eval_np_call(
        self,
        node: ast.Call,
        name: str,
        args: list[AbstractValue],
        dtype_kw: ast.expr | None,
    ) -> AbstractValue:
        explicit = self._dtype_of_node(dtype_kw)
        if name in ("zeros", "empty", "ones", "full", "zeros_like",
                    "empty_like", "full_like", "ones_like", "asarray",
                    "array", "fromiter"):
            pos_dtype = None
            if name in ("zeros", "empty", "ones") and len(node.args) > 1:
                pos_dtype = self._dtype_of_node(node.args[1])
            elif name == "full" and len(node.args) > 2:
                pos_dtype = self._dtype_of_node(node.args[2])
            dtype = explicit or pos_dtype
            source = args[0] if args else UNKNOWN
            if dtype is None and name in ("asarray", "array", "zeros_like",
                                          "empty_like", "full_like",
                                          "ones_like"):
                dtype = source.dtype
            if (
                self.ctx.hot_path
                and _is_narrow_int(explicit)
                and source.kind == "array"
                and _is_64bit_int(source.dtype)
            ):
                self.report.narrowing.append((
                    node.lineno, node.col_offset,
                    f"np.{name}(..., dtype={explicit}) narrows a known "
                    f"{source.dtype} array; 64-bit indices silently "
                    "truncate",
                ))
            aliases = frozenset()
            if name == "asarray" and explicit is None and args:
                aliases = source.aliases  # asarray may return its input
            return AbstractValue(dtype=dtype, kind="array", aliases=aliases)
        if name == "arange":
            return AbstractValue(dtype=explicit or "int64", kind="array")
        if name in _INDEX_FNS:
            return AbstractValue(dtype="int64", kind="array")
        if name in _BOOL_FNS:
            return AbstractValue(dtype="bool", kind="array")
        if name in _PASSTHROUGH_FNS:
            dtype = args[0].dtype if args else None
            return AbstractValue(dtype=explicit or dtype, kind="array")
        if name == "where":
            if len(args) == 3:
                return AbstractValue(
                    dtype=promote(args[1].dtype, args[2].dtype), kind="array"
                )
            return AbstractValue(dtype="int64", kind="array")
        if name in ("bincount", "count_nonzero", "setdiff1d", "union1d",
                    "intersect1d"):
            return AbstractValue(dtype="int64", kind="array")
        return UNKNOWN

    def _eval_plain_call(
        self, node: ast.Call, fn: ast.expr, dtype_kw: ast.expr | None
    ) -> AbstractValue:
        args = [self.eval(a) for a in node.args]
        if isinstance(fn, ast.Name):
            if fn.id == "BFSResult":
                aliases: set[str] = set()
                for kw in node.keywords:
                    if kw.arg in ("parent", "level"):
                        aliases |= self.env.get(
                            kw.value.id, UNKNOWN
                        ).aliases if isinstance(kw.value, ast.Name) else (
                            self.eval(kw.value).aliases
                        )
                for pos in (1, 2):
                    if pos < len(args):
                        aliases |= args[pos].aliases
                rid = len(self.results)
                self.results.append({
                    "aliases": frozenset(aliases),
                    "detached": not aliases,
                    "line": node.lineno,
                })
                return AbstractValue(kind="result", rid=rid)
            if fn.id == "BFSWorkspace":
                return AbstractValue(kind="workspace")
            if fn.id == "len":
                return AbstractValue(kind="scalar")
            if fn.id in ("int", "bool", "float"):
                return AbstractValue(kind="scalar")
        return UNKNOWN


# -- module driver --------------------------------------------------------


@lru_cache(maxsize=32)
def analyze(ctx: ModuleContext) -> DataflowReport:
    """Interpret every function in ``ctx`` once; results are cached per
    context so the three deep rules share one interpretation."""
    report = DataflowReport()
    workspace_classes = {
        node.name
        for node in ctx.nodes(ast.ClassDef)
        if node.name == "BFSWorkspace"
    }

    def class_of(fn: ast.AST) -> str | None:
        for cls in ctx.nodes(ast.ClassDef):
            if fn in cls.body:
                return cls.name
        return None

    for fn in ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef):
        interp = _FunctionInterpreter(
            ctx,
            report,
            self_is_workspace=class_of(fn) in workspace_classes,
        )
        interp.run_function(fn)
    top = _FunctionInterpreter(ctx, report)
    top.run_module_body(ctx.tree.body)
    return report


# -- rule registrations ---------------------------------------------------


@rule(
    "RPR010",
    "silent dtype narrowing / mixed-dtype index math on the kernel hot "
    "path (dataflow: known 64-bit value narrowed to <=32 bits)",
    hot_path_only=True,
    deep=True,
)
def check_dataflow_narrowing(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    """Dataflow-tracked dtype narrowing (see module docstring)."""
    yield from analyze(ctx).narrowing


@rule(
    "RPR011",
    "write to workspace storage still aliased by a live BFSResult; "
    "results alias the workspace until .detach()",
    deep=True,
)
def check_alias_writes(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    """Alias-liveness violations (see module docstring)."""
    yield from analyze(ctx).alias_writes


@rule(
    "RPR012",
    "workspace scratch buffer written but never read (dead store)",
    deep=True,
)
def check_dead_scratch_stores(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    """Dead stores to workspace scratch (see module docstring)."""
    yield from analyze(ctx).dead_stores
