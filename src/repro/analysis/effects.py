"""Per-function read/write/escape/raise effect summaries.

For every function defined in a module (including methods and nested
closures) this computes a :class:`FunctionEffects` record:

* ``reads``    — parameter / free-variable names whose *contents* the
  function reads (subscript loads, use as a call argument, arithmetic);
* ``writes``   — parameter / free-variable names the function mutates
  (subscript or attribute stores, augmented subscript assignment,
  in-place NumPy methods like ``fill``/``sort``, ``out=`` keyword
  targets);
* ``escapes``  — parameter / free-variable names the function returns
  or stores onto an object attribute (the value outlives the call);
* ``raises``   — whether the body contains an explicit ``raise``;
* ``ws_writes`` — dotted workspace locations the function writes
  through a workspace-typed receiver (``workspace.parent`` for a
  ``ws.parent[rows] = v`` store, including ``self.parent`` inside
  :class:`~repro.bfs.workspace.BFSWorkspace` methods);
* ``calls``    — call sites (plain names *and* dotted attribute
  spellings like ``ws.begin``) with the variable names bound to each
  argument position, so effects can be propagated through a call graph.

Two propagation strategies are provided:

* :func:`propagate_one_level` is the historical single-step
  propagation kept for comparison and for consumers that deliberately
  want a bounded view: if ``f`` passes array ``x`` into parameter
  ``p`` of same-module function ``g`` and ``g`` writes ``p``, then
  ``f`` writes ``x`` — but a chain ``f → g → h`` stays invisible.
* :func:`propagate` iterates that step to a **fixpoint**, so effects
  flow through arbitrary same-module call depth (the lattice is the
  finite powerset of names appearing in the module, and each step is
  monotone, so the iteration terminates).  Whole-program propagation —
  across modules, with method dispatch — lives in
  :mod:`repro.analysis.callgraph` and reuses these summaries as its
  per-function base facts.

Unresolved callees (imports, attribute calls that the call graph
cannot type) are assumed effect-free for their arguments —
deliberately optimistic, because pessimism would drown the race
detector in false positives.  The consumers of these summaries are
documented in :mod:`repro.analysis.races` and
:mod:`repro.analysis.program`.

Plain rebinding of a *local* name is not an effect; only names bound
outside the function (parameters and free variables) can carry effects
visible to a caller.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace

__all__ = [
    "CallSite",
    "FunctionEffects",
    "function_effects",
    "module_effects",
    "module_import_names",
    "propagate",
    "propagate_one_level",
    "format_effects",
    "WS_PARAM_NAMES",
    "WS_FACTORY_METHODS",
]

#: ndarray methods that mutate the receiver in place.
MUTATING_METHODS = frozenset(
    {"fill", "sort", "resize", "put", "partition", "setfield", "byteswap"}
)

#: Parameter names conventionally bound to a BFSWorkspace (the dataflow
#: tier seeds the same convention; see repro.analysis.dataflow).
WS_PARAM_NAMES = frozenset({"ws", "workspace"})

#: BFSWorkspace methods whose return value aliases workspace-owned
#: storage (the alias-until-detach contract RPR011/RPR016 police).
WS_FACTORY_METHODS = frozenset(
    {"buffer", "begin", "iota", "unvisited_ids", "load_frontier"}
)


@dataclass(frozen=True)
class CallSite:
    """One ``callee(arg0, arg1, ..., kw=name)`` site inside a function.

    ``callee`` is the source spelling: a bare name for ``g(...)`` or a
    dotted path for ``ws.begin(...)`` / ``mod.helper(...)`` (attribute
    chains rooted at anything other than a plain name are not
    recorded).  ``args`` holds the *variable name* bound to each
    positional slot (``None`` when the argument is a computed
    expression), ``kwargs`` maps keyword names to variable names.
    """

    callee: str
    args: tuple[str | None, ...]
    kwargs: tuple[tuple[str, str], ...]
    line: int
    col: int


@dataclass(frozen=True)
class FunctionEffects:
    """Read/write/escape/raise summary for one function definition."""

    name: str
    params: tuple[str, ...]
    reads: frozenset[str]
    writes: frozenset[str]
    escapes: frozenset[str]
    calls: tuple[CallSite, ...]
    line: int = 0
    raises: bool = False
    ws_params: frozenset[str] = frozenset()
    ws_writes: frozenset[str] = frozenset()
    returns_ws: bool = False
    returns_calls: tuple[str, ...] = ()

    def writes_param(self, param: str) -> bool:
        """Whether the summary records a mutation of ``param``."""
        return param in self.writes


def _terminal_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return _terminal_name(node.value)
    if isinstance(node, ast.Subscript):
        return _terminal_name(node.value)
    return None


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for an attribute chain rooted at a plain name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    a = fn.args
    names = [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]
    if a.vararg:
        names.append(a.vararg.arg)
    if a.kwarg:
        names.append(a.kwarg.arg)
    return tuple(names)


def _annotation_name(node: ast.expr | None) -> str | None:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.rsplit(".", 1)[-1]
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _workspace_params(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, *, self_is_workspace: bool
) -> frozenset[str]:
    """Parameters bound to a BFSWorkspace, by name convention or
    annotation (plus ``self`` inside BFSWorkspace methods)."""
    ws: set[str] = set()
    a = fn.args
    for p in (*a.posonlyargs, *a.args, *a.kwonlyargs):
        if p.arg in WS_PARAM_NAMES:
            ws.add(p.arg)
        elif _annotation_name(p.annotation) == "BFSWorkspace":
            ws.add(p.arg)
    if self_is_workspace:
        ws.add("self")
    return frozenset(ws)


def _local_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound inside ``fn`` (excluding nested function bodies)."""
    locals_: set[str] = set(_param_names(fn))
    for node in _walk_own(fn):
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                locals_.update(_binding_names(tgt))
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(node.target, ast.Name):
                locals_.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            locals_.update(_binding_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    locals_.update(_binding_names(item.optional_vars))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not fn:
                locals_.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                locals_.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ExceptHandler) and node.name:
            locals_.add(node.name)
        elif isinstance(node, ast.Global) or isinstance(node, ast.Nonlocal):
            locals_.difference_update(node.names)
    return locals_


def module_import_names(tree: ast.Module) -> frozenset[str]:
    """Names bound by top-level imports (``np``, ``ast``, ...).

    ``np.sort(x)`` is the functional, copying sort — a mutating-method
    receiver that resolves to an imported module is never an array
    write, so these names are excluded from effect tracking.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
    return frozenset(names)


def _binding_names(target: ast.expr) -> set[str]:
    out: set[str] = set()
    for sub in ast.walk(target):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, (ast.Store,)):
            out.add(sub.id)
    return out


def _walk_own(fn: ast.AST) -> list[ast.AST]:
    """Walk ``fn`` without descending into nested function definitions.

    Nested ``def`` nodes themselves are yielded (they bind a local
    name) but their bodies are not — a closure's effects are its own
    summary, not its parent's.
    """
    out: list[ast.AST] = [fn]
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        out.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return out


def _ws_location(node: ast.expr, ws_names: frozenset[str]) -> str | None:
    """``workspace.<attr>`` for an lvalue rooted at a workspace name.

    ``ws.parent[rows]`` and ``ws.parent`` both normalize to
    ``workspace.parent`` regardless of the receiver's spelling, so
    whole-program queries like ``--who-writes workspace.parent`` see
    one canonical location.
    """
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in ws_names
    ):
        return f"workspace.{node.attr}"
    return None


def function_effects(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    module_imports: frozenset[str] = frozenset(),
    owned_lines: frozenset[int] = frozenset(),
    self_is_workspace: bool = False,
) -> FunctionEffects:
    """Direct (unpropagated) effects of one function definition.

    ``module_imports`` names resolve to modules, not arrays; they are
    never recorded as mutating-method write targets.  Writes on a line
    in ``owned_lines`` (``# repro: owned[...]`` annotations) are
    protocol-sanctioned and excluded from the summary.
    ``self_is_workspace`` marks methods of the workspace class itself,
    so their ``self.parent`` stores surface as ``workspace.parent``.
    """
    params = _param_names(fn)
    locals_ = _local_names(fn)
    nonlocal_names = set(params)  # params carry effects too
    ws_params = _workspace_params(fn, self_is_workspace=self_is_workspace)
    reads: set[str] = set()
    writes: set[str] = set()
    escapes: set[str] = set()
    ws_writes: set[str] = set()
    calls: list[CallSite] = []
    raises = False

    def tracked(name: str | None) -> str | None:
        """A name whose effects a caller can observe: a parameter or a
        free variable (not a plain local)."""
        if name is None or name in module_imports:
            return None
        if name in nonlocal_names or name not in locals_:
            return name
        return None

    def owned(node: ast.AST) -> bool:
        return getattr(node, "lineno", 0) in owned_lines

    # Pass 1: workspace-derived locals and call-result bindings, needed
    # before returns can be classified (walk order is not source order).
    ws_derived: set[str] = set(ws_params)
    from_call: dict[str, str] = {}
    for node in _walk_own(fn):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if isinstance(value, ast.Call):
            raw = _dotted_name(value.func)
            receiver = raw.rsplit(".", 1) if raw and "." in raw else None
            is_ws_factory = (
                receiver is not None
                and receiver[0] in ws_params
                and receiver[1] in WS_FACTORY_METHODS
            )
            for tgt in node.targets:
                for name in _binding_names(tgt):
                    if raw:
                        from_call[name] = raw
                    if is_ws_factory:
                        ws_derived.add(name)
        elif (
            isinstance(value, ast.Subscript)
            and isinstance(value.slice, ast.Slice)
            and isinstance(value.value, ast.Name)
            and value.value.id in ws_derived
        ):
            # A plain slice is a view: `buf[:k]` still aliases scratch.
            for tgt in node.targets:
                for name in _binding_names(tgt):
                    ws_derived.add(name)

    returns_ws = False
    returns_calls: list[str] = []

    def classify_return(value: ast.expr) -> None:
        nonlocal returns_ws
        exprs = value.elts if isinstance(value, ast.Tuple) else [value]
        for expr in exprs:
            if isinstance(expr, ast.Name) and expr.id in ws_derived:
                returns_ws = True
            elif isinstance(expr, ast.Call):
                raw = _dotted_name(expr.func)
                if raw:
                    returns_calls.append(raw)
                    receiver = raw.rsplit(".", 1) if "." in raw else None
                    if (
                        receiver is not None
                        and receiver[0] in ws_params
                        and receiver[1] in WS_FACTORY_METHODS
                    ):
                        returns_ws = True

    for node in _walk_own(fn):
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                loc = _ws_location(tgt, ws_params)
                if loc and not owned(node):
                    ws_writes.add(loc)
                if not owned(node):
                    _record_store(tgt, tracked, writes)
        elif isinstance(node, ast.AugAssign):
            if not owned(node):
                loc = _ws_location(node.target, ws_params)
                if loc:
                    ws_writes.add(loc)
                _record_store(node.target, tracked, writes)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if not owned(node):
                _record_store(node.target, tracked, writes)
        elif isinstance(node, ast.Call):
            if not owned(node):
                _record_call_writes(node, tracked, writes, ws_params, ws_writes)
            _record_call_site(node, calls)
        elif isinstance(node, ast.Raise):
            raises = True
        elif isinstance(node, ast.Return) and node.value is not None:
            classify_return(node.value)
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name):
                    name = tracked(sub.id)
                    if name:
                        escapes.add(name)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            name = tracked(node.id)
            if name:
                reads.add(name)
    return FunctionEffects(
        name=fn.name,
        params=params,
        reads=frozenset(reads),
        writes=frozenset(writes),
        escapes=frozenset(escapes),
        calls=tuple(calls),
        line=fn.lineno,
        raises=raises,
        ws_params=ws_params,
        ws_writes=frozenset(ws_writes),
        returns_ws=returns_ws,
        returns_calls=tuple(returns_calls),
    )


def _record_store(tgt: ast.expr, tracked, writes: set[str]) -> None:
    # x[...] = v  /  x.attr = v  mutate x; plain `x = v` rebinds a local.
    if isinstance(tgt, (ast.Subscript, ast.Attribute)):
        name = tracked(_terminal_name(tgt))
        if name:
            writes.add(name)
    elif isinstance(tgt, (ast.Tuple, ast.List)):
        for elt in tgt.elts:
            _record_store(elt, tracked, writes)


def _record_call_writes(
    node: ast.Call,
    tracked,
    writes: set[str],
    ws_params: frozenset[str],
    ws_writes: set[str],
) -> None:
    fn = node.func
    # x.fill(v) and friends mutate x in place.
    if isinstance(fn, ast.Attribute) and fn.attr in MUTATING_METHODS:
        name = tracked(_terminal_name(fn.value))
        if name:
            writes.add(name)
        loc = _ws_location(fn.value, ws_params)
        if loc:
            ws_writes.add(loc)
    # np.something(..., out=x) writes x.
    for kw in node.keywords:
        if kw.arg == "out":
            if isinstance(kw.value, ast.Name):
                name = tracked(kw.value.id)
                if name:
                    writes.add(name)
            loc = _ws_location(kw.value, ws_params)
            if loc:
                ws_writes.add(loc)


def _record_call_site(node: ast.Call, calls: list[CallSite]) -> None:
    # Record both plain-name calls (resolvable within the module) and
    # dotted attribute calls (resolvable by the whole-program graph).
    raw = _dotted_name(node.func)
    if raw is None:
        return
    args = tuple(
        a.id if isinstance(a, ast.Name) else None for a in node.args
    )
    kwargs = tuple(
        (kw.arg, kw.value.id)
        for kw in node.keywords
        if kw.arg is not None and isinstance(kw.value, ast.Name)
    )
    calls.append(
        CallSite(
            callee=raw,
            args=args,
            kwargs=kwargs,
            line=node.lineno,
            col=node.col_offset,
        )
    )


def _workspace_classes(tree: ast.Module) -> set[int]:
    """ids of method nodes whose ``self`` is a workspace instance."""
    method_ids: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and "Workspace" in node.name:
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method_ids.add(id(stmt))
    return method_ids


def module_effects(
    tree: ast.Module, *, owned_lines: frozenset[int] = frozenset()
) -> dict[str, FunctionEffects]:
    """Effects for every function defined anywhere in ``tree``.

    Keyed by bare function name.  On a name collision (rare within one
    module: overloads across classes) the summaries are merged by
    union, which errs on the side of reporting an effect.
    """
    out: dict[str, FunctionEffects] = {}
    imports = module_import_names(tree)
    ws_methods = _workspace_classes(tree)
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        fx = function_effects(
            node,
            module_imports=imports,
            owned_lines=owned_lines,
            self_is_workspace=id(node) in ws_methods,
        )
        prior = out.get(fx.name)
        if prior is not None:
            fx = replace(
                fx,
                params=fx.params if len(fx.params) >= len(prior.params)
                else prior.params,
                reads=fx.reads | prior.reads,
                writes=fx.writes | prior.writes,
                escapes=fx.escapes | prior.escapes,
                calls=fx.calls + prior.calls,
                line=prior.line,
                raises=fx.raises or prior.raises,
                ws_params=fx.ws_params | prior.ws_params,
                ws_writes=fx.ws_writes | prior.ws_writes,
                returns_ws=fx.returns_ws or prior.returns_ws,
                returns_calls=fx.returns_calls + prior.returns_calls,
            )
        out[fx.name] = fx
    return out


def propagate_one_level(
    effects: dict[str, FunctionEffects]
) -> dict[str, FunctionEffects]:
    """One propagation step over the module-local call graph.

    For each call site ``g(x, ...)`` where ``g`` is defined in the same
    module and ``g`` writes (escapes) the parameter that ``x`` binds
    to, the caller's summary gains a write (escape) of ``x``; a callee
    that raises makes the caller raising.  This is the historical
    PR 5 engine, retained both as the fixpoint's transfer function and
    to demonstrate what a bounded analysis misses: a two-hop chain
    ``f → g → h`` where only ``h`` writes stays invisible here.
    """
    out: dict[str, FunctionEffects] = {}
    for name, fx in effects.items():
        writes = set(fx.writes)
        escapes = set(fx.escapes)
        ws_writes = set(fx.ws_writes)
        raises = fx.raises
        for call in fx.calls:
            callee = effects.get(call.callee)
            if callee is None:
                continue
            raises = raises or callee.raises
            bindings: list[tuple[str, str]] = []
            for pos, arg in enumerate(call.args):
                if arg is None or pos >= len(callee.params):
                    continue
                bindings.append((callee.params[pos], arg))
            bindings.extend(call.kwargs)
            for param, arg in bindings:
                if param in callee.writes:
                    writes.add(arg)
                if param in callee.escapes:
                    escapes.add(arg)
                if (
                    callee.ws_writes
                    and param in callee.ws_params
                    and (arg in fx.ws_params or arg in WS_PARAM_NAMES)
                ):
                    ws_writes.update(callee.ws_writes)
        out[name] = replace(
            fx,
            writes=frozenset(writes),
            escapes=frozenset(escapes),
            ws_writes=frozenset(ws_writes),
            raises=raises,
        )
    return out


def propagate(
    effects: dict[str, FunctionEffects]
) -> dict[str, FunctionEffects]:
    """Fixpoint propagation of write/escape/raise effects.

    Iterates :func:`propagate_one_level` until the summaries stop
    changing, so effects flow through arbitrary same-module call depth
    (``f → g → h`` chains, mutual recursion).  Termination is
    guaranteed: each summary lives in the finite powerset of names
    appearing in the module and each step only adds facts; a round cap
    widens out of pathological inputs defensively.
    """
    current = effects
    for _ in range(len(effects) + 2):
        step = propagate_one_level(current)
        if step == current:
            return step
        current = step
    return current


def format_effects(effects: dict[str, FunctionEffects]) -> str:
    """Human-readable dump, one function per line (stable order)."""
    rows = []
    for name in sorted(effects):
        fx = effects[name]
        flags = " raises" if fx.raises else ""
        ws = (
            f" ws_writes={{{', '.join(sorted(fx.ws_writes))}}}"
            if fx.ws_writes
            else ""
        )
        rows.append(
            f"{name}({', '.join(fx.params)})"
            f" reads={{{', '.join(sorted(fx.reads))}}}"
            f" writes={{{', '.join(sorted(fx.writes))}}}"
            f" escapes={{{', '.join(sorted(fx.escapes))}}}"
            f"{ws}{flags}"
        )
    return "\n".join(rows)
