"""Per-function read/write/escape effect summaries.

For every function defined in a module (including methods and nested
closures) this computes a :class:`FunctionEffects` record:

* ``reads``    — parameter / free-variable names whose *contents* the
  function reads (subscript loads, use as a call argument, arithmetic);
* ``writes``   — parameter / free-variable names the function mutates
  (subscript or attribute stores, augmented subscript assignment,
  in-place NumPy methods like ``fill``/``sort``, ``out=`` keyword
  targets);
* ``escapes``  — parameter / free-variable names the function returns
  or stores onto an object attribute (the value outlives the call);
* ``calls``    — same-module call sites with the variable names bound
  to each argument position, so effects can be propagated one level
  through a lightweight call graph.

:func:`propagate` performs that one-level propagation: if ``f`` passes
array ``x`` into parameter ``p`` of same-module function ``g`` and
``g`` writes ``p``, then ``f`` writes ``x``.  Unresolved callees
(imports, attribute calls) are assumed effect-free for their arguments
— deliberately optimistic, because cross-module propagation without
whole-program analysis would drown the race detector in false
positives.  The consumers of these summaries are documented in
:mod:`repro.analysis.races`.

Plain rebinding of a *local* name is not an effect; only names bound
outside the function (parameters and free variables) can carry effects
visible to a caller.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

__all__ = [
    "CallSite",
    "FunctionEffects",
    "function_effects",
    "module_effects",
    "module_import_names",
    "propagate",
    "format_effects",
]

#: ndarray methods that mutate the receiver in place.
MUTATING_METHODS = frozenset(
    {"fill", "sort", "resize", "put", "partition", "setfield", "byteswap"}
)


@dataclass(frozen=True)
class CallSite:
    """One ``callee(arg0, arg1, ..., kw=name)`` site inside a function.

    ``args`` holds the *variable name* bound to each positional slot
    (``None`` when the argument is a computed expression), ``kwargs``
    maps keyword names to variable names.
    """

    callee: str
    args: tuple[str | None, ...]
    kwargs: tuple[tuple[str, str], ...]
    line: int
    col: int


@dataclass(frozen=True)
class FunctionEffects:
    """Read/write/escape summary for one function definition."""

    name: str
    params: tuple[str, ...]
    reads: frozenset[str]
    writes: frozenset[str]
    escapes: frozenset[str]
    calls: tuple[CallSite, ...]
    line: int = 0

    def writes_param(self, param: str) -> bool:
        """Whether the summary records a mutation of ``param``."""
        return param in self.writes


def _terminal_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return _terminal_name(node.value)
    if isinstance(node, ast.Subscript):
        return _terminal_name(node.value)
    return None


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    a = fn.args
    names = [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]
    if a.vararg:
        names.append(a.vararg.arg)
    if a.kwarg:
        names.append(a.kwarg.arg)
    return tuple(names)


def _local_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound inside ``fn`` (excluding nested function bodies)."""
    locals_: set[str] = set(_param_names(fn))
    for node in _walk_own(fn):
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                locals_.update(_binding_names(tgt))
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(node.target, ast.Name):
                locals_.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            locals_.update(_binding_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    locals_.update(_binding_names(item.optional_vars))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not fn:
                locals_.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                locals_.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ExceptHandler) and node.name:
            locals_.add(node.name)
        elif isinstance(node, ast.Global) or isinstance(node, ast.Nonlocal):
            locals_.difference_update(node.names)
    return locals_


def module_import_names(tree: ast.Module) -> frozenset[str]:
    """Names bound by top-level imports (``np``, ``ast``, ...).

    ``np.sort(x)`` is the functional, copying sort — a mutating-method
    receiver that resolves to an imported module is never an array
    write, so these names are excluded from effect tracking.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
    return frozenset(names)


def _binding_names(target: ast.expr) -> set[str]:
    out: set[str] = set()
    for sub in ast.walk(target):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, (ast.Store,)):
            out.add(sub.id)
    return out


def _walk_own(fn: ast.AST) -> list[ast.AST]:
    """Walk ``fn`` without descending into nested function definitions.

    Nested ``def`` nodes themselves are yielded (they bind a local
    name) but their bodies are not — a closure's effects are its own
    summary, not its parent's.
    """
    out: list[ast.AST] = [fn]
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        out.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return out


def function_effects(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    module_imports: frozenset[str] = frozenset(),
) -> FunctionEffects:
    """Direct (unpropagated) effects of one function definition.

    ``module_imports`` names resolve to modules, not arrays; they are
    never recorded as mutating-method write targets.
    """
    params = _param_names(fn)
    locals_ = _local_names(fn)
    nonlocal_names = set(params)  # params carry effects too
    reads: set[str] = set()
    writes: set[str] = set()
    escapes: set[str] = set()
    calls: list[CallSite] = []

    def tracked(name: str | None) -> str | None:
        """A name whose effects a caller can observe: a parameter or a
        free variable (not a plain local)."""
        if name is None or name in module_imports:
            return None
        if name in nonlocal_names or name not in locals_:
            return name
        return None

    for node in _walk_own(fn):
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                _record_store(tgt, tracked, writes)
        elif isinstance(node, ast.AugAssign):
            _record_store(node.target, tracked, writes)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            _record_store(node.target, tracked, writes)
        elif isinstance(node, ast.Call):
            _record_call(node, tracked, writes, calls)
        elif isinstance(node, ast.Return) and node.value is not None:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name):
                    name = tracked(sub.id)
                    if name:
                        escapes.add(name)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            name = tracked(node.id)
            if name:
                reads.add(name)
    return FunctionEffects(
        name=fn.name,
        params=params,
        reads=frozenset(reads),
        writes=frozenset(writes),
        escapes=frozenset(escapes),
        calls=tuple(calls),
        line=fn.lineno,
    )


def _record_store(tgt: ast.expr, tracked, writes: set[str]) -> None:
    # x[...] = v  /  x.attr = v  mutate x; plain `x = v` rebinds a local.
    if isinstance(tgt, (ast.Subscript, ast.Attribute)):
        name = tracked(_terminal_name(tgt))
        if name:
            writes.add(name)
    elif isinstance(tgt, (ast.Tuple, ast.List)):
        for elt in tgt.elts:
            _record_store(elt, tracked, writes)


def _record_call(
    node: ast.Call, tracked, writes: set[str], calls: list[CallSite]
) -> None:
    fn = node.func
    # x.fill(v) and friends mutate x in place.
    if isinstance(fn, ast.Attribute) and fn.attr in MUTATING_METHODS:
        name = tracked(_terminal_name(fn.value))
        if name:
            writes.add(name)
    # np.something(..., out=x) writes x.
    for kw in node.keywords:
        if kw.arg == "out" and isinstance(kw.value, ast.Name):
            name = tracked(kw.value.id)
            if name:
                writes.add(name)
    # Same-module call sites: record argument bindings for propagation.
    if isinstance(fn, ast.Name):
        args = tuple(
            a.id if isinstance(a, ast.Name) else None for a in node.args
        )
        kwargs = tuple(
            (kw.arg, kw.value.id)
            for kw in node.keywords
            if kw.arg is not None and isinstance(kw.value, ast.Name)
        )
        calls.append(
            CallSite(
                callee=fn.id,
                args=args,
                kwargs=kwargs,
                line=node.lineno,
                col=node.col_offset,
            )
        )


def module_effects(tree: ast.Module) -> dict[str, FunctionEffects]:
    """Effects for every function defined anywhere in ``tree``.

    Keyed by bare function name.  On a name collision (rare within one
    module: overloads across classes) the summaries are merged by
    union, which errs on the side of reporting an effect.
    """
    out: dict[str, FunctionEffects] = {}
    imports = module_import_names(tree)
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        fx = function_effects(node, module_imports=imports)
        prior = out.get(fx.name)
        if prior is not None:
            fx = FunctionEffects(
                name=fx.name,
                params=fx.params if len(fx.params) >= len(prior.params)
                else prior.params,
                reads=fx.reads | prior.reads,
                writes=fx.writes | prior.writes,
                escapes=fx.escapes | prior.escapes,
                calls=fx.calls + prior.calls,
                line=prior.line,
            )
        out[fx.name] = fx
    return out


def propagate(effects: dict[str, FunctionEffects]) -> dict[str, FunctionEffects]:
    """One-level call-graph propagation of write/escape effects.

    For each call site ``g(x, ...)`` where ``g`` is defined in the same
    module and ``g`` writes (escapes) the parameter that ``x`` binds
    to, the caller's summary gains a write (escape) of ``x`` — when
    ``x`` is one of the caller's own tracked names.  One level only:
    deeper chains would need a fixpoint, and one level is exactly what
    the race detector needs to see through helpers like ``_row_scan``.
    """
    out: dict[str, FunctionEffects] = {}
    for name, fx in effects.items():
        writes = set(fx.writes)
        escapes = set(fx.escapes)
        for call in fx.calls:
            callee = effects.get(call.callee)
            if callee is None:
                continue
            for pos, arg in enumerate(call.args):
                if arg is None or pos >= len(callee.params):
                    continue
                param = callee.params[pos]
                if param in callee.writes:
                    writes.add(arg)
                if param in callee.escapes:
                    escapes.add(arg)
            for kw_name, arg in call.kwargs:
                if kw_name in callee.writes:
                    writes.add(arg)
                if kw_name in callee.escapes:
                    escapes.add(arg)
        out[name] = FunctionEffects(
            name=fx.name,
            params=fx.params,
            reads=fx.reads,
            writes=frozenset(writes),
            escapes=frozenset(escapes),
            calls=fx.calls,
            line=fx.line,
        )
    return out


def format_effects(effects: dict[str, FunctionEffects]) -> str:
    """Human-readable dump, one function per line (stable order)."""
    rows = []
    for name in sorted(effects):
        fx = effects[name]
        rows.append(
            f"{name}({', '.join(fx.params)})"
            f" reads={{{', '.join(sorted(fx.reads))}}}"
            f" writes={{{', '.join(sorted(fx.writes))}}}"
            f" escapes={{{', '.join(sorted(fx.escapes))}}}"
        )
    return "\n".join(rows)
