"""Dimensional analysis of the cost model.

The analytic cost model (:mod:`repro.arch.costmodel`) mixes five kinds
of quantities — edges, vertices, bytes, seconds and scalar ops — and its
output must always be *seconds*.  A refactor that drops a bandwidth
divisor or adds an edge count to a time silently skews every switching
point the tuner produces; the mistuning is exactly the catastrophic
regime the paper warns about.

This module re-executes the **real** cost-model code with unit-tagged
values instead of floats: each :class:`Quantity` carries a vector of
dimension exponents, multiplication/division combine them, and addition
or comparison of mismatched dimensions raises
:class:`~repro.errors.UnitsError`.  :func:`check_cost_model` builds a
unit-tagged :class:`ArchSpec` stand-in and level record, temporarily
rebinds the module's per-edge/per-vertex constants to tagged quantities,
prices one level in both directions through the untouched
``CostModel.top_down_seconds`` / ``bottom_up_seconds`` code paths, and
verifies every cost term comes out in seconds.

Because the genuine arithmetic runs (not a transcript of it), the check
breaks the moment the formulas drift dimensionally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnitsError

__all__ = [
    "Unit",
    "Quantity",
    "DIMENSIONLESS",
    "EDGES",
    "VERTICES",
    "BYTES",
    "SECONDS",
    "OPS",
    "WORDS",
    "check_cost_model",
]

_DIM_NAMES = ("edge", "vertex", "byte", "second", "op", "word")


@dataclass(frozen=True)
class Unit:
    """A vector of exponents over (edge, vertex, byte, second, op, word)."""

    dims: tuple[int, int, int, int, int, int]

    def __mul__(self, other: "Unit") -> "Unit":
        return Unit(tuple(a + b for a, b in zip(self.dims, other.dims)))

    def __truediv__(self, other: "Unit") -> "Unit":
        return Unit(tuple(a - b for a, b in zip(self.dims, other.dims)))

    @property
    def dimensionless(self) -> bool:
        return all(d == 0 for d in self.dims)

    def __str__(self) -> str:
        if self.dimensionless:
            return "1"
        num = [
            f"{n}^{e}" if e != 1 else n
            for n, e in zip(_DIM_NAMES, self.dims)
            if e > 0
        ]
        den = [
            f"{n}^{-e}" if e != -1 else n
            for n, e in zip(_DIM_NAMES, self.dims)
            if e < 0
        ]
        head = "·".join(num) or "1"
        return f"{head}/{'·'.join(den)}" if den else head


DIMENSIONLESS = Unit((0, 0, 0, 0, 0, 0))
EDGES = Unit((1, 0, 0, 0, 0, 0))
VERTICES = Unit((0, 1, 0, 0, 0, 0))
BYTES = Unit((0, 0, 1, 0, 0, 0))
SECONDS = Unit((0, 0, 0, 1, 0, 0))
OPS = Unit((0, 0, 0, 0, 1, 0))
#: Packed ``uint64`` adjacency words of the repro.linalg tile format —
#: the work unit of the ``bu_kernel="tile"`` cost branch.
WORDS = Unit((0, 0, 0, 0, 0, 1))


class Quantity:
    """A float with a :class:`Unit`.

    Multiplication and division combine units (collapsing to a plain
    ``float`` when the result is dimensionless, so library code like
    ``np.clip`` keeps working on ratios); addition, subtraction and
    ordering demand identical units and raise
    :class:`~repro.errors.UnitsError` otherwise.  Comparison against the
    literal ``0`` is allowed for any unit (sign checks are
    dimension-safe).
    """

    __slots__ = ("value", "unit")

    def __init__(self, value: float, unit: Unit = DIMENSIONLESS) -> None:
        self.value = float(value)
        self.unit = unit

    # -- helpers ----------------------------------------------------------

    @staticmethod
    def _coerce(other: object) -> "Quantity | None":
        if isinstance(other, Quantity):
            return other
        if isinstance(other, (int, float)):
            return Quantity(float(other), DIMENSIONLESS)
        return None

    def _require_same_unit(self, other: "Quantity", op: str) -> None:
        if self.unit != other.unit:
            raise UnitsError(
                f"cannot {op} quantities with units "
                f"{self.unit} and {other.unit}"
            )

    @staticmethod
    def _collapse(value: float, unit: Unit) -> "Quantity | float":
        return value if unit.dimensionless else Quantity(value, unit)

    # -- arithmetic ----------------------------------------------------------

    def __mul__(self, other: object):
        q = self._coerce(other)
        if q is None:
            return NotImplemented
        return self._collapse(self.value * q.value, self.unit * q.unit)

    __rmul__ = __mul__

    def __truediv__(self, other: object):
        q = self._coerce(other)
        if q is None:
            return NotImplemented
        return self._collapse(self.value / q.value, self.unit / q.unit)

    def __rtruediv__(self, other: object):
        q = self._coerce(other)
        if q is None:
            return NotImplemented
        return self._collapse(q.value / self.value, q.unit / self.unit)

    def _add_sub(self, other: object, sign: float, op: str):
        q = self._coerce(other)
        if q is None:
            return NotImplemented
        if q.value == 0 and not isinstance(other, Quantity):
            # adding literal zero is unit-preserving
            return Quantity(self.value, self.unit)
        self._require_same_unit(q, op)
        return Quantity(self.value + sign * q.value, self.unit)

    def __add__(self, other: object):
        return self._add_sub(other, 1.0, "add")

    __radd__ = __add__

    def __sub__(self, other: object):
        return self._add_sub(other, -1.0, "subtract")

    def __rsub__(self, other: object):
        res = self._add_sub(other, -1.0, "subtract")
        if res is NotImplemented:
            return res
        return Quantity(-res.value, res.unit)

    def __neg__(self) -> "Quantity":
        return Quantity(-self.value, self.unit)

    # -- ordering (same unit, or literal zero) ----------------------------

    def _cmp_value(self, other: object, op: str) -> float:
        q = self._coerce(other)
        if q is None:
            raise UnitsError(f"cannot {op}-compare {type(other).__name__}")
        if not isinstance(other, Quantity) and q.value == 0:
            return 0.0
        self._require_same_unit(q, op)
        return q.value

    def __lt__(self, other: object) -> bool:
        return self.value < self._cmp_value(other, "lt")

    def __le__(self, other: object) -> bool:
        return self.value <= self._cmp_value(other, "le")

    def __gt__(self, other: object) -> bool:
        return self.value > self._cmp_value(other, "gt")

    def __ge__(self, other: object) -> bool:
        return self.value >= self._cmp_value(other, "ge")

    def __eq__(self, other: object) -> bool:
        q = self._coerce(other)
        if q is None:
            return NotImplemented
        return self.unit == q.unit and self.value == q.value

    def __hash__(self) -> int:
        return hash((self.value, self.unit))

    def __repr__(self) -> str:
        return f"Quantity({self.value!r}, {self.unit})"


class _UnitSpec:
    """Duck-typed :class:`~repro.arch.specs.ArchSpec` whose fields carry
    units.  Only the attributes the cost model reads are provided."""

    name = "unit-audit"
    bu_kernel = "scan"

    def __init__(self) -> None:
        self.measured_bw_gbs = Quantity(150.0, BYTES / SECONDS)
        self.compute_rate_gops = Quantity(50.0, OPS / SECONDS)
        self.cacheline_bytes = Quantity(64.0, BYTES / EDGES)
        self.td_overhead_s = Quantity(1e-5, SECONDS)
        self.bu_overhead_s = Quantity(2e-5, SECONDS)
        self.td_atomic_ns = Quantity(2.0, SECONDS / EDGES)
        self.td_saturation_edges = Quantity(1e6, EDGES)
        self.td_efficiency_floor = 0.02
        self.bu_win_ns = Quantity(5.0, SECONDS / EDGES)
        self.bu_fail_ns = Quantity(1.0, SECONDS / EDGES)
        self.scan_bytes_per_vertex = Quantity(9.0, BYTES / VERTICES)
        self._cache_bytes = Quantity(2e7, BYTES)

    def cache_capacity_bytes(self) -> Quantity:
        return self._cache_bytes


class _TileUnitSpec(_UnitSpec):
    """The tile-family variant: ``bu_win_ns``/``bu_fail_ns`` are per
    streamed *word*, which is what the ``bu_kernel="tile"`` branch of
    ``bottom_up_seconds`` consumes."""

    name = "unit-audit-tile"
    bu_kernel = "tile"

    def __init__(self) -> None:
        super().__init__()
        self.bu_win_ns = Quantity(0.4, SECONDS / WORDS)
        self.bu_fail_ns = Quantity(0.4, SECONDS / WORDS)


#: Dimensional signatures of the module-level cost-model constants.
CONSTANT_UNITS = {
    "BYTES_EDGE_ID": BYTES / EDGES,
    "BYTES_PARENT": BYTES / VERTICES,
    "OPS_PER_EDGE_TD": OPS / EDGES,
    "OPS_PER_EDGE_BU": OPS / EDGES,
    "OPS_PER_VERTEX_SCAN": OPS / VERTICES,
    "TILE_WORD_FILL": EDGES / WORDS,
    "BYTES_TILE_WORD": BYTES / WORDS,
    "OPS_PER_WORD_TILE": OPS / WORDS,
}


def _expect_seconds(label: str, value: object, failures: list[str]) -> None:
    if isinstance(value, Quantity):
        if value.unit != SECONDS:
            failures.append(f"{label} has unit {value.unit}, expected seconds")
    else:
        failures.append(
            f"{label} lost its unit tag (came back {type(value).__name__}); "
            "a dimensionless term leaked into a time"
        )


def check_cost_model() -> list[str]:
    """Dimensionally audit ``CostModel.top_down_seconds`` and
    ``bottom_up_seconds``.

    Returns a list of human-readable failures — empty means the model is
    dimensionally consistent (every cost term reduces to seconds).
    """
    from repro.arch import costmodel
    from repro.bfs.trace import LevelRecord

    failures: list[str] = []
    saved = {name: getattr(costmodel, name) for name in CONSTANT_UNITS}
    try:
        for name, unit in CONSTANT_UNITS.items():
            setattr(costmodel, name, Quantity(float(saved[name]), unit))
        spec = _UnitSpec()
        model = costmodel.CostModel(spec)  # type: ignore[arg-type]
        rec = LevelRecord(
            level=3,
            frontier_vertices=Quantity(1e4, VERTICES),  # type: ignore[arg-type]
            frontier_edges=Quantity(2e5, EDGES),  # type: ignore[arg-type]
            unvisited_vertices=Quantity(5e4, VERTICES),  # type: ignore[arg-type]
            unvisited_edges=Quantity(9e5, EDGES),  # type: ignore[arg-type]
            bu_edges_checked=Quantity(3e5, EDGES),  # type: ignore[arg-type]
            claimed=Quantity(8e3, VERTICES),  # type: ignore[arg-type]
            bu_edges_failed=Quantity(1e5, EDGES),  # type: ignore[arg-type]
        )
        num_vertices = Quantity(1e5, VERTICES)

        try:
            td = model.top_down_seconds(rec, num_vertices)  # type: ignore[arg-type]
        except UnitsError as exc:
            failures.append(f"top-down pricing: {exc}")
        else:
            _expect_seconds("top-down seconds", td.seconds, failures)
            _expect_seconds("top-down overhead_s", td.overhead_s, failures)
            _expect_seconds("top-down memory_s", td.memory_s, failures)
            _expect_seconds("top-down compute_s", td.compute_s, failures)
            if isinstance(td.efficiency, Quantity):
                failures.append("top-down efficiency is not dimensionless")

        try:
            bu = model.bottom_up_seconds(rec, num_vertices)  # type: ignore[arg-type]
        except UnitsError as exc:
            failures.append(f"bottom-up pricing: {exc}")
        else:
            _expect_seconds("bottom-up seconds", bu.seconds, failures)
            _expect_seconds("bottom-up overhead_s", bu.overhead_s, failures)
            _expect_seconds("bottom-up memory_s", bu.memory_s, failures)
            _expect_seconds("bottom-up compute_s", bu.compute_s, failures)

        tile_model = costmodel.CostModel(_TileUnitSpec())  # type: ignore[arg-type]
        try:
            tl = tile_model.bottom_up_seconds(rec, num_vertices)  # type: ignore[arg-type]
        except UnitsError as exc:
            failures.append(f"tile bottom-up pricing: {exc}")
        else:
            _expect_seconds("tile bottom-up seconds", tl.seconds, failures)
            _expect_seconds("tile bottom-up overhead_s", tl.overhead_s, failures)
            _expect_seconds("tile bottom-up memory_s", tl.memory_s, failures)
            _expect_seconds("tile bottom-up compute_s", tl.compute_s, failures)
    finally:
        for name, value in saved.items():
            setattr(costmodel, name, value)
    return failures
