"""Whole-program deep rules (RPR015–RPR019) over the project call graph.

These rules consume the fixpoint facts of
:mod:`repro.analysis.callgraph` — effects propagated through arbitrary
call depth, across modules, with method dispatch — so they see
violations that the intraprocedural tier (RPR010–RPR014) provably
cannot:

========  ==============================================================
RPR015    resource lifecycle: a ``ParallelBFS`` / executor /
          ``serve(...)``'d HTTP server acquired on a path that can
          raise before ``close()`` (exception-flow close-on-all-paths),
          a bound resource never closed, or a temporary engine that is
          never closed at all
RPR016    a *public* function returns workspace-aliased storage derived
          from its workspace parameter without ``detach()``/``copy()``
          — the interprocedural generalization of RPR011
RPR017    a thread-pool worker routes a write to a closure-captured
          shared protocol array through helper functions in *other*
          modules (extends RPR013/RPR014 across module boundaries)
RPR018    a public function transitively calls a
          ``# repro: owned[...]``-gated helper without holding
          ownership (no annotation on the path, no mediator in the
          helper's own module)
RPR019    a call-graph cycle through hot-path modules — a Python-level
          call per vertex where :func:`~repro.analysis.lint.is_hot_path`
          prices Python dispatch as forbidden
========  ==============================================================

All five are ``deep`` *and* ``whole_program``: ``lint_paths`` builds
one :class:`~repro.analysis.callgraph.Project` over every file in the
run and threads it through :class:`~repro.analysis.lint.ModuleContext`.
When a rule is invoked on a lone source string (fixture tests), it
falls back to a single-file project, which still exercises the full
fixpoint machinery within that file.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator

from repro.analysis import effects as fx
from repro.analysis.callgraph import (
    Project,
    edge_bindings,
    project_from_sources,
)
from repro.analysis.lint import ModuleContext, rule
from repro.errors import CallGraphError

__all__ = [
    "PROTOCOL_SHARED",
    "program_report",
]

#: Shared-array names of the documented claim protocol
#: (:mod:`repro.bfs.parallel`): workers may read these freely but every
#: write happens on the main thread after the pool joins.
PROTOCOL_SHARED = frozenset(
    {"parent", "level", "cand_parent", "frontier", "unvisited", "in_frontier"}
)

Findings = dict[str, dict[str, list[tuple[int, int, str]]]]


@lru_cache(maxsize=64)
def _single_file_project(ctx: ModuleContext) -> Project | None:
    try:
        return project_from_sources([(ctx.path, ctx.source)])
    except CallGraphError:
        return None


def _project_for(ctx: ModuleContext) -> Project | None:
    project = getattr(ctx, "project", None)
    if isinstance(project, Project):
        return project
    return _single_file_project(ctx)


def program_report(project: Project) -> Findings:
    """All whole-program findings, bucketed ``code -> path -> triples``.

    Computed once per project and memoized on the instance; the five
    rule callbacks then just filter by the module they were invoked on.
    """
    cached = getattr(project, "_program_report", None)
    if cached is not None:
        return cached
    report: Findings = {
        code: {} for code in
        ("RPR015", "RPR016", "RPR017", "RPR018", "RPR019")
    }

    def add(code: str, path: str, line: int, col: int, msg: str) -> None:
        report[code].setdefault(path, []).append((line, col, msg))

    _check_resources(project, add)
    _check_workspace_escapes(project, add)
    _check_cross_module_ownership(project, add)
    _check_owned_gating(project, add)
    _check_hot_cycles(project, add)
    for buckets in report.values():
        for triples in buckets.values():
            triples.sort()
    project._program_report = report
    return report


def _yield_for(ctx: ModuleContext, code: str) -> Iterator[tuple[int, int, str]]:
    project = _project_for(ctx)
    if project is None:
        return
    yield from program_report(project).get(code, {}).get(ctx.path, [])


# -- RPR015: resource lifecycle -------------------------------------------


def _check_resources(project: Project, add) -> None:
    edge_at = {
        (e.caller, e.raw, e.line): e.callee
        for e in project.edges
        if not e.dispatch
    }

    def risk_raises(caller: str, raw: str, line: int) -> str | None:
        if raw == "raise":
            return "an explicit raise"
        callee = edge_at.get((caller, raw, line))
        if callee is None:
            return None
        summary = project.summaries.get(callee)
        if summary is not None and summary.raises:
            return f"`{raw}(...)` (which can raise)"
        return None

    for info in project.functions.values():
        for ctor, line, col in info.temp_ctors:
            add(
                "RPR015", info.path, line, col,
                f"temporary `{ctor}(...)` is never closed — its thread "
                "pool outlives the call; bind it in a `with` block or "
                "call close()",
            )
        for acq in info.acquisitions:
            if acq.escapes:
                continue  # ownership transferred to the caller/object
            raising: list[tuple[int, str]] = []
            for raw, rline, _rcol in acq.risks:
                if any(lo <= rline <= hi for lo, hi in acq.finally_spans):
                    continue  # a finally-close covers this statement
                why = risk_raises(info.qname, raw, rline)
                if why is not None:
                    raising.append((rline, why))
            if not acq.closed:
                detail = (
                    f"; {raising[0][1]} at line {raising[0][0]} exits "
                    "before any close()" if raising else ""
                )
                add(
                    "RPR015", info.path, acq.line, acq.col,
                    f"`{acq.var} = {acq.ctor}(...)` is never closed on "
                    f"any path{detail}; use `with` or try/finally",
                )
            elif raising:
                rline, why = raising[0]
                add(
                    "RPR015", info.path, acq.line, acq.col,
                    f"`{acq.var} = {acq.ctor}(...)` can leak: {why} at "
                    f"line {rline} exits before the close() on line "
                    f"{min(acq.close_lines)}; move the close into a "
                    "finally or use `with`",
                )


# -- RPR016: workspace aliases escaping a public boundary -----------------


def _check_workspace_escapes(project: Project, add) -> None:
    for qname, summary in project.summaries.items():
        if not summary.returns_ws:
            continue
        info = project.functions[qname]
        if not info.is_public:
            continue
        if info.cls is not None and "Workspace" in info.cls:
            continue  # the workspace's own accessors ARE the alias API
        add(
            "RPR016", info.path, info.line, 0,
            f"public `{info.name}` returns workspace-aliased storage "
            "(transitively derived from its workspace parameter) "
            "without detach()/copy(); callers will observe scratch "
            "reuse on the next traversal (interprocedural RPR011)",
        )


# -- RPR017: cross-module ownership ---------------------------------------


@lru_cache(maxsize=256)
def _module_local_writes(record) -> dict[str, frozenset[str]]:
    """Bare-name -> written params under *module-local* fixpoint
    propagation, to tell apart what RPR014 already reports."""
    local = {info.name: info.summary for info in record.functions}
    propagated = fx.propagate(local)
    return {name: s.writes for name, s in propagated.items()}


def _check_cross_module_ownership(project: Project, add) -> None:
    for worker_q in project.workers:
        info = project.functions.get(worker_q)
        if info is None:
            continue
        record = project.modules[info.module]
        local_writes = _module_local_writes(record)
        for edge in project._edges_by_caller.get(worker_q, ()):
            if edge.dispatch or edge.callee is None:
                continue
            callee_info = project.functions[edge.callee]
            callee_summary = project.summaries[edge.callee]
            for param, arg in edge_bindings(edge, callee_summary.params):
                if arg not in PROTOCOL_SHARED:
                    continue
                if arg in info.locals or arg in info.scratch:
                    continue  # worker-owned chunk / scratch / local
                if param not in callee_summary.writes:
                    continue
                if edge.line in record.owned_lines:
                    continue
                same_module = callee_info.module == info.module
                if same_module and param in local_writes.get(
                    callee_info.name, frozenset()
                ):
                    continue  # RPR014's module-local engine reports this
                add(
                    "RPR017", info.path, edge.line, edge.col,
                    f"worker `{info.name}` passes shared protocol array "
                    f"`{arg}` to `{edge.raw}` "
                    f"({callee_info.module}), whose whole-program effect "
                    f"summary writes parameter `{param}`; a cross-module "
                    "write outside the ownership protocol (annotate "
                    "deliberate partitioned writes with "
                    "`# repro: owned[...]`)",
                )


# -- RPR018: ownership-gated helpers reached without ownership ------------


def _check_owned_gating(project: Project, add) -> None:
    gated = [
        info for info in project.functions.values() if info.owned_gated
    ]
    if not gated:
        return
    reverse: dict[str, list] = {}
    for edge in project.edges:
        if edge.callee is not None:
            reverse.setdefault(edge.callee, []).append(edge)
    for helper in gated:
        seen: set[str] = set()
        stack = [helper.qname]
        while stack:
            cur = stack.pop()
            for edge in reverse.get(cur, ()):
                caller = project.functions[edge.caller]
                if caller.qname in seen:
                    continue
                caller_record = project.modules[caller.module]
                if edge.line in caller_record.owned_lines:
                    continue  # the call site holds ownership
                if caller.module == helper.module:
                    continue  # mediated inside the owning module
                if caller.owned_gated:
                    continue  # the caller itself holds ownership
                seen.add(caller.qname)
                if caller.is_public:
                    add(
                        "RPR018", caller.path, caller.line, 0,
                        f"public `{caller.name}` transitively calls "
                        f"ownership-gated `{helper.name}` "
                        f"({helper.path}:{helper.line}) without holding "
                        "ownership: no `# repro: owned[...]` on the "
                        "path and no mediator in the owning module",
                    )
                stack.append(caller.qname)


# -- RPR019: call cycles through hot-path modules -------------------------


def _check_hot_cycles(project: Project, add) -> None:
    for comp in project.cycles():
        hot = [q for q in comp if project.functions[q].hot]
        if not hot:
            continue
        anchor = project.functions[min(hot)]
        chain = " -> ".join(comp)
        add(
            "RPR019", anchor.path, anchor.line, 0,
            f"call-graph cycle through hot-path module(s): {chain}; "
            "recursion here costs a Python-level call per vertex "
            "(is_hot_path prices these packages as vectorized-only) — "
            "restructure as an iterative frontier loop",
        )


# -- rule registrations ----------------------------------------------------


@rule(
    "RPR015",
    "resource (ParallelBFS / executor / HTTP server) acquired on a path "
    "that can raise before close(); close-on-all-paths exception-flow "
    "analysis",
    deep=True,
    whole_program=True,
)
def check_resource_lifecycle(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    yield from _yield_for(ctx, "RPR015")


@rule(
    "RPR016",
    "workspace-aliased array escapes a public API boundary without "
    "detach() (interprocedural RPR011)",
    deep=True,
    whole_program=True,
)
def check_workspace_escape(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    yield from _yield_for(ctx, "RPR016")


@rule(
    "RPR017",
    "worker-side write to a shared protocol array routed through a "
    "helper in another module (cross-module RPR013/RPR014)",
    deep=True,
    whole_program=True,
)
def check_cross_module_ownership(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    yield from _yield_for(ctx, "RPR017")


@rule(
    "RPR018",
    "public function transitively calls a `# repro: owned[...]`-gated "
    "helper without holding ownership",
    deep=True,
    whole_program=True,
)
def check_owned_gating(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    yield from _yield_for(ctx, "RPR018")


@rule(
    "RPR019",
    "call-graph cycle through hot-path modules (Python-level call per "
    "vertex, priced via is_hot_path)",
    deep=True,
    whole_program=True,
)
def check_hot_path_cycles(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    yield from _yield_for(ctx, "RPR019")
