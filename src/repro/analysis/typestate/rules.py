"""Lint registrations for the typestate tier (RPR022–RPR026).

Thin adapters: all the work happens in
:func:`repro.analysis.typestate.interp.typestate_report`, which runs
the protocol abstract interpreter once per
:class:`~repro.analysis.callgraph.Project` and buckets findings by
``code -> path``.  Each rule callback just surfaces its bucket for the
module being linted, so the usual ``# repro: noqa[RPR02x]`` and
baseline machinery apply unchanged.

========  ==============================================================
RPR022    frame-protocol ordering: frames sent before hello / after
          the close handshake, or a clean exit that never sends
          ``metrics_final``/``bye``
RPR023    use of a closed/undrained handle (``Collector``,
          ``ChannelExporter``, ``FlightRecorder``, ``ParallelBFS``)
RPR024    a workspace result still live (read later or escaped) when
          the workspace is re-lent to another traversal
RPR025    a raise-capable path on which an open protocol can never
          reach an accepting state (interprocedural; builds on RPR015's
          raise facts, judged against the protocol machine instead of
          a close-call grep)
RPR026    a spawned child whose call path can emit frames without a
          conformant hello→…→bye handshake (tightens RPR021)
========  ==============================================================
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator

from repro.analysis.callgraph import Project, project_from_sources
from repro.analysis.lint import ModuleContext, rule
from repro.analysis.typestate.interp import typestate_report
from repro.errors import CallGraphError

__all__: list[str] = []


@lru_cache(maxsize=64)
def _single_file_project(ctx: ModuleContext) -> Project | None:
    try:
        return project_from_sources([(ctx.path, ctx.source)])
    except CallGraphError:
        return None


def _yield_for(
    ctx: ModuleContext, code: str
) -> Iterator[tuple[int, int, str]]:
    project = getattr(ctx, "project", None)
    if not isinstance(project, Project):
        project = _single_file_project(ctx)
    if project is None:
        return
    report = typestate_report(
        project, extra_sources={ctx.path: ctx.source}
    )
    yield from report.get(code, {}).get(ctx.path, [])


@rule(
    "RPR022",
    "live-channel frame-protocol ordering violation "
    "(frames before hello / after bye, or no metrics_final on exit)",
    deep=True,
    whole_program=True,
)
def _check_rpr022(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    yield from _yield_for(ctx, "RPR022")


@rule(
    "RPR023",
    "use of a closed or undrained handle "
    "(Collector/ChannelExporter/FlightRecorder/ParallelBFS)",
    deep=True,
    whole_program=True,
)
def _check_rpr023(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    yield from _yield_for(ctx, "RPR023")


@rule(
    "RPR024",
    "workspace re-lent to a traversal while a previous result "
    "still aliases its arrays",
    deep=True,
    whole_program=True,
)
def _check_rpr024(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    yield from _yield_for(ctx, "RPR024")


@rule(
    "RPR025",
    "raise-capable path on which an open protocol can never reach "
    "an accepting state",
    deep=True,
    whole_program=True,
)
def _check_rpr025(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    yield from _yield_for(ctx, "RPR025")


@rule(
    "RPR026",
    "spawned child whose call path can emit frames without a "
    "conformant handshake",
    deep=True,
    whole_program=True,
)
def _check_rpr026(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    yield from _yield_for(ctx, "RPR026")
