"""Typestate & protocol verification tier.

A declarative registry of protocol state machines
(:class:`~repro.analysis.typestate.spec.ProtocolSpec`) for the repo's
stateful contracts — the ``repro.obs.live/1`` frame handshake,
``ChannelExporter``, ``Collector``, ``FlightRecorder``,
``BFSWorkspace`` and ``ParallelBFS`` lifecycles — plus an abstract
interpreter (:mod:`~repro.analysis.typestate.interp`) that checks
every function against those machines along the PR 6 call graph.
Registers lint rules RPR022–RPR026; the same machines power the
dynamic twin (:class:`repro.obs.live.ProtocolMonitor` and strict
capture conformance replay).
"""

from __future__ import annotations

from repro.analysis.typestate.interp import (
    TYPESTATE_RULES,
    TypestateAnalysis,
    typestate_report,
)
from repro.analysis.typestate.spec import (
    BFS_WORKSPACE,
    CHANNEL_EXPORTER,
    COLLECTOR,
    FLIGHT_RECORDER,
    LIVE_CHANNEL,
    PARALLEL_BFS,
    PROTOCOLS,
    ProtocolSpec,
    all_ctor_names,
    get_protocol,
    protocol_for_ctor,
    protocol_for_type,
)

__all__ = [
    "BFS_WORKSPACE",
    "CHANNEL_EXPORTER",
    "COLLECTOR",
    "FLIGHT_RECORDER",
    "LIVE_CHANNEL",
    "PARALLEL_BFS",
    "PROTOCOLS",
    "ProtocolSpec",
    "TYPESTATE_RULES",
    "TypestateAnalysis",
    "all_ctor_names",
    "get_protocol",
    "protocol_for_ctor",
    "protocol_for_type",
    "typestate_report",
]
