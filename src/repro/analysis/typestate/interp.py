"""The typestate abstract interpreter (RPR022–RPR026 engine).

Per function, an abstract environment maps local variables to the
*set of protocol states* their handle may occupy (the finite powerset
lattice over each machine's states).  The interpreter walks the
function body in order, stepping machines on constructor calls, method
calls, ``with`` entry/exit, and — interprocedurally — on the *protocol
summaries* of resolved callees, with set-union joins at control-flow
merges (``if``/``else``, loops, ``try`` handlers).  It reuses PR 6's
resource-acquisition vocabulary: ``try/finally`` blocks whose
``finally`` closes a handle protect the spanned statements, handles
that escape (returned, stored on an object, captured by a nested def)
stop being tracked, and raise-capable calls are judged against the
call-graph fixpoint ``raises`` facts.

Interprocedural lifting: a *protocol summary* per function records, in
order, the lifecycle events the function performs on each of its
parameters (directly, or transitively through its own resolved
callees).  Summaries iterate to a fixpoint over the project call
graph, so ``shutdown(eng)`` two calls above an ``eng.close()`` still
flips the caller's engine to ``closed`` — violations the one-level
view provably misses (``interprocedural=False`` reproduces that blind
view for the regression tests).

The whole report is computed once per
:class:`~repro.analysis.callgraph.Project` and memoized on the
instance, mirroring :mod:`repro.analysis.program`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.callgraph import (
    CallEdge,
    Project,
    edge_bindings,
)
from repro.analysis.typestate.spec import (
    ProtocolSpec,
    protocol_for_ctor,
)

__all__ = [
    "PEvent",
    "TypestateAnalysis",
    "typestate_report",
    "TYPESTATE_RULES",
]

#: Rule codes this engine produces.
TYPESTATE_RULES = ("RPR022", "RPR023", "RPR024", "RPR025", "RPR026")

#: Pseudo-event a ``workspace=``/``ws=`` keyword argument signifies
#: (the callee traversal resets the workspace).
TRAVERSE_MARK = "__traverse__"

#: Keyword names that hand a workspace to a traversal.
_WORKSPACE_KWARGS = frozenset({"workspace", "ws"})

#: Container methods that store their argument (the handle/result
#: escapes into the container).
_STORE_METHODS = frozenset(
    {"append", "add", "extend", "insert", "put", "setdefault", "update"}
)

#: Cap on summary length / fixpoint rounds (defensive; protocol event
#: chains in real code are short).
_MAX_SUMMARY_EVENTS = 48
_MAX_ROUNDS = 10


@dataclass(frozen=True)
class PEvent:
    """One protocol event in a function's parameter summary."""

    event: str  # method name, or the TRAVERSE_MARK pseudo-event
    maybe: bool  # performed only on some path (branch/loop/handler)
    line: int
    via: str | None = None  # callee chain, for messages


class _Track:
    """Abstract state of one tracked handle (mutable, alias-shared)."""

    __slots__ = (
        "spec", "var", "ctor", "states", "escaped", "ctor_line",
        "ctor_col", "protected", "pending", "risk", "reported",
    )

    def __init__(
        self, spec: ProtocolSpec, var: str, ctor: str,
        line: int, col: int,
    ) -> None:
        self.spec = spec
        self.var = var
        self.ctor = ctor
        self.states: frozenset[str] = frozenset({spec.initial})
        self.escaped = False
        self.ctor_line = line
        self.ctor_col = col
        #: Line spans covered by a finally-close or a ``with`` body.
        self.protected: list[tuple[int, int]] = []
        #: Workspace only: ``(result_var, bind_line, escaped)`` of the
        #: live result aliasing this workspace.
        self.pending: tuple[str, int, bool] | None = None
        #: First unprotected raise-capable statement reached while the
        #: machine could not yet reach an accepting state.
        self.risk: tuple[int, str] | None = None
        #: Dedup key set for reported violations.
        self.reported: set = set()

    def copy(self) -> "_Track":
        out = _Track(
            self.spec, self.var, self.ctor, self.ctor_line, self.ctor_col
        )
        out.states = self.states
        out.escaped = self.escaped
        out.protected = list(self.protected)
        out.pending = self.pending
        out.risk = self.risk
        out.reported = self.reported  # shared: dedupe across branches
        return out

    def is_protected(self, line: int) -> bool:
        return any(lo <= line <= hi for lo, hi in self.protected)


def _clone_env(env: dict) -> dict:
    memo: dict[int, _Track] = {}
    out: dict[str, _Track] = {}
    for var, track in env.items():
        clone = memo.get(id(track))
        if clone is None:
            clone = track.copy()
            memo[id(track)] = clone
        out[var] = clone
    return out


def _join_tracks(a: _Track, b: _Track) -> _Track:
    out = a.copy()
    out.states = a.states | b.states
    out.escaped = a.escaped or b.escaped
    out.protected = list({*a.protected, *b.protected})
    out.pending = a.pending if a.pending is not None else b.pending
    out.risk = a.risk if a.risk is not None else b.risk
    return out


def _join_env(a: dict, b: dict) -> dict:
    out: dict[str, _Track] = {}
    memo: dict[tuple[int, int], _Track] = {}
    for var in {*a, *b}:
        ta, tb = a.get(var), b.get(var)
        if tb is None:
            out[var] = ta
        elif ta is None:
            out[var] = tb
        elif ta is tb:
            out[var] = ta
        else:
            key = (id(ta), id(tb))
            joined = memo.get(key)
            if joined is None:
                joined = _join_tracks(ta, tb)
                memo[key] = joined
            out[var] = joined
    return out


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for an attribute chain rooted at a plain name (the
    same spelling :mod:`repro.analysis.effects` records)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _iter_calls_postorder(node: ast.AST):
    """Call nodes innermost-first (evaluation order for our purposes)."""
    for child in ast.iter_child_nodes(node):
        yield from _iter_calls_postorder(child)
    if isinstance(node, ast.Call):
        yield node


def _param_names(fn) -> tuple[str, ...]:
    a = fn.args
    names = [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]
    if a.vararg:
        names.append(a.vararg.arg)
    if a.kwarg:
        names.append(a.kwarg.arg)
    return tuple(names)


#: Every method name any machine treats as an event, plus ``detach``
#: (an event on a workspace's *result*).
def _all_event_methods() -> frozenset[str]:
    from repro.analysis.typestate.spec import PROTOCOLS

    out: set[str] = {"detach"}
    for spec in PROTOCOLS.values():
        out |= {m for m, _e in spec.method_events}
    return frozenset(out)


_EVENT_METHODS = _all_event_methods()


class _FunctionPass:
    """One abstract-interpretation pass over one function body."""

    def __init__(
        self,
        analysis: "TypestateAnalysis",
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        qname: str | None,
        path: str,
    ) -> None:
        self.analysis = analysis
        self.fn = fn
        self.qname = qname
        self.path = path
        self.params = _param_names(fn)
        self.param_log: dict[str, list[PEvent]] = {
            p: [] for p in self.params
        }
        self.violations: list[tuple[str, int, int, str, str]] = []
        # name -> sorted Load lines (workspace result liveness).
        self.uses: dict[str, list[int]] = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                self.uses.setdefault(node.id, []).append(node.lineno)
        if qname is not None:
            self.edges = {
                (e.raw, e.line): e
                for e in self.analysis.project._edges_by_caller.get(
                    qname, ()
                )
                if not e.dispatch
            }
        else:
            self.edges = {}

    # -- reporting -----------------------------------------------------------

    def _report(
        self, code: str, line: int, col: int, machine: str, msg: str,
        track: _Track | None = None,
    ) -> None:
        key = (code, line, col, msg)
        if track is not None:
            if key in track.reported:
                return
            track.reported.add(key)
        self.violations.append((code, line, col, machine, msg))

    # -- protocol stepping ---------------------------------------------------

    def _state_hint(self, track: _Track) -> str:
        states = ", ".join(sorted(track.states))
        spec = track.spec
        if spec.name == "channel-exporter":
            if "created" in track.states:
                return (
                    f"the stream is not open yet (state: {states}) — "
                    "frames would flow before hello"
                )
            return (
                f"the stream already said bye (state: {states}) — "
                "frames after the close handshake are dropped"
            )
        return f"illegal in state(s): {states}"

    def _step(
        self,
        track: _Track,
        event: str,
        line: int,
        col: int,
        *,
        maybe: bool = False,
        via: str | None = None,
    ) -> None:
        if track.escaped:
            return
        spec = track.spec
        if spec.name == "bfs-workspace" and event in (
            "begin", "traverse"
        ):
            self._check_workspace_reuse(track, line, col, via=via)
            nxt, _ok = spec.step_set(track.states, event)
            track.states = (
                nxt if not maybe else track.states | nxt
            )
            return
        nxt, ok = spec.step_set(track.states, event)
        if not ok:
            if maybe:
                return  # a some-path event cannot prove a violation
            suffix = f" (via `{via}(...)`)" if via else ""
            allowed = set()
            for state in sorted(track.states):
                allowed.update(spec.allowed(state))
            hint = self._state_hint(track)
            self._report(
                spec.owner_rule or "RPR023", line, col, spec.name,
                f"`{track.var}.{event}()`{suffix} violates the "
                f"{spec.name} protocol: {hint}; allowed next: "
                f"{', '.join(sorted(allowed)) or 'nothing'}",
                track,
            )
            return
        track.states = nxt if not maybe else track.states | nxt

    def _check_workspace_reuse(
        self, track: _Track, line: int, col: int,
        *, rebind: str | None = None, via: str | None = None,
    ) -> None:
        if "lent" not in track.states or track.pending is None:
            return
        res_var, bind_line, escaped = track.pending
        if rebind == res_var and not escaped:
            return  # the rebinding kills the stale result first
        live_use = escaped or any(
            u > line for u in self.uses.get(res_var, ())
        )
        if not live_use:
            track.pending = None
            return
        how = (
            "escaped into a container/attribute"
            if escaped
            else "is still read afterwards"
        )
        suffix = f" (via `{via}(...)`)" if via else ""
        self._report(
            "RPR024", line, col, track.spec.name,
            f"traversal reuses workspace `{track.var}`{suffix} while "
            f"result `{res_var}` (bound at line {bind_line}) still "
            f"aliases its arrays and {how}; call `{res_var}.detach()` "
            "(or .copy()) before re-running — the reused workspace "
            "silently rewrites the live result",
            track,
        )
        track.pending = None

    def _apply_summary(
        self,
        track: _Track,
        events: tuple[PEvent, ...],
        line: int,
        col: int,
        callee: str,
        *,
        maybe: bool,
        bind: str | None,
    ) -> None:
        traversed = False
        for pe in events:
            if pe.event == TRAVERSE_MARK:
                ev: str | None = "traverse"
                traversed = True
            else:
                ev = track.spec.event_for_method(pe.event)
            if ev is None:
                continue
            self._step(
                track, ev, line, col,
                maybe=maybe or pe.maybe, via=callee,
            )
        if (
            traversed
            and track.spec.name == "bfs-workspace"
            and bind is not None
            and not track.escaped
        ):
            track.states = frozenset({"lent"})
            track.pending = (bind, line, False)

    # -- risk (RPR025) -------------------------------------------------------

    def _mark_risk(
        self, env: dict, line: int, why: str,
        skip: _Track | None = None,
    ) -> None:
        seen: set[int] = set()
        for track in env.values():
            if id(track) in seen or track is skip:
                continue
            seen.add(id(track))
            if (
                track.escaped
                or track.risk is not None
                or track.spec.raise_rule is None
                or track.states & track.spec.accepting
                or track.is_protected(line)
            ):
                continue
            track.risk = (line, why)

    def _call_raise_reason(self, call: ast.Call) -> str | None:
        raw = _dotted(call.func)
        if raw is None:
            return None
        edge = self.edges.get((raw, call.lineno))
        if edge is None or edge.callee is None:
            return None
        if self.analysis.interprocedural:
            summary = self.analysis.project.summaries.get(edge.callee)
        else:
            info = self.analysis.project.functions.get(edge.callee)
            summary = info.summary if info is not None else None
        if summary is not None and summary.raises:
            return f"`{raw}(...)` (which can raise)"
        return None

    # -- call handling -------------------------------------------------------

    def _resolve_edge(self, call: ast.Call) -> CallEdge | None:
        raw = _dotted(call.func)
        if raw is None:
            return None
        return self.edges.get((raw, call.lineno))

    def _handle_call(
        self,
        call: ast.Call,
        env: dict,
        maybe: bool,
        bind: str | None = None,
    ) -> None:
        line, col = call.lineno, call.col_offset
        raw = _dotted(call.func)

        # Raise-capable call while a protocol cannot reach acceptance.
        # Judged against the *pre-call* states: if the call raises, we
        # conservatively assume its own transition did not complete
        # (so `exporter.hello()` from the accepting "created" state is
        # not a leak — the canonical handshake stays clean).
        why = self._call_raise_reason(call)
        if why is not None:
            # A protocol event on a handle is never a leak risk for
            # that same handle (close() raising is close's own
            # failure — the code did attempt finalization).
            skip: _Track | None = None
            if isinstance(call.func, ast.Attribute) and isinstance(
                call.func.value, ast.Name
            ):
                t = env.get(call.func.value.id)
                if (
                    t is not None
                    and t.spec.event_for_method(call.func.attr)
                    is not None
                ):
                    skip = t
            self._mark_risk(env, line, why, skip=skip)

        # Constructor of a protocol-governed handle.
        if raw is not None and bind is not None:
            parts = raw.split(".")
            spec = protocol_for_ctor(parts[-1])
            if spec is None and len(parts) >= 2:
                base = protocol_for_ctor(parts[-2])
                if (
                    base is not None
                    and parts[-1] in base.classmethod_ctors
                ):
                    spec = base
            if spec is not None and not spec.frame_kinds:
                env[bind] = _Track(spec, bind, parts[-1], line, col)
                return

        # Direct method event on a tracked handle or a parameter.
        if isinstance(call.func, ast.Attribute) and isinstance(
            call.func.value, ast.Name
        ):
            recv = call.func.value.id
            attr = call.func.attr
            track = env.get(recv)
            if attr == "detach":
                seen: set[int] = set()
                for t in env.values():
                    if id(t) in seen:
                        continue
                    seen.add(id(t))
                    if t.pending is not None and t.pending[0] == recv:
                        self._step(t, "detach", line, col, maybe=maybe)
                        t.pending = None
            if track is not None:
                event = track.spec.event_for_method(attr)
                if event is not None:
                    self._step(track, event, line, col, maybe=maybe)
            elif recv in self.param_log and attr in _EVENT_METHODS:
                self._log_param(recv, attr, maybe, line)
            # A handle stored into a container escapes.
            if attr in _STORE_METHODS:
                for arg in call.args:
                    if isinstance(arg, ast.Name):
                        t = env.get(arg.id)
                        if t is not None:
                            t.escaped = True
                        self._escape_pending(env, arg.id, line)

        # workspace= keyword: the callee traversal resets the handle.
        for kw in call.keywords:
            if (
                kw.arg in _WORKSPACE_KWARGS
                and isinstance(kw.value, ast.Name)
            ):
                name = kw.value.id
                track = env.get(name)
                if (
                    track is not None
                    and track.spec.name == "bfs-workspace"
                ):
                    self._check_workspace_reuse(
                        track, line, col, rebind=bind
                    )
                    track.states = frozenset(
                        {"lent"} if bind is not None else {"active"}
                    )
                    if bind is not None:
                        track.pending = (bind, line, False)
                elif name in self.param_log:
                    self._log_param(name, TRAVERSE_MARK, maybe, line)

        # Interprocedural: splice the resolved callee's protocol
        # summary onto every bound argument.
        if self.analysis.interprocedural:
            edge = self._resolve_edge(call)
            if edge is not None and edge.callee is not None:
                callee_summary = self.analysis.summaries.get(
                    edge.callee
                )
                if callee_summary:
                    params = self.analysis.param_names_of(edge.callee)
                    for param, arg in edge_bindings(edge, params):
                        events = callee_summary.get(param)
                        if not events:
                            continue
                        track = env.get(arg)
                        if track is not None:
                            self._apply_summary(
                                track, events, line, col,
                                edge.raw, maybe=maybe, bind=bind,
                            )
                        elif arg in self.param_log:
                            self._compose_param(
                                arg, events, maybe, line, edge.raw
                            )

    def _escape_pending(self, env: dict, name: str, line: int) -> None:
        seen: set[int] = set()
        for t in env.values():
            if id(t) in seen:
                continue
            seen.add(id(t))
            if t.pending is not None and t.pending[0] == name:
                t.pending = (t.pending[0], t.pending[1], True)

    def _log_param(
        self, param: str, event: str, maybe: bool, line: int
    ) -> None:
        log = self.param_log[param]
        if len(log) < _MAX_SUMMARY_EVENTS:
            log.append(PEvent(event, maybe, line))

    def _compose_param(
        self,
        param: str,
        events: tuple[PEvent, ...],
        maybe: bool,
        line: int,
        via: str,
    ) -> None:
        log = self.param_log[param]
        for pe in events:
            if len(log) >= _MAX_SUMMARY_EVENTS:
                return
            log.append(
                PEvent(pe.event, maybe or pe.maybe, line, via=via)
            )

    # -- statement walk ------------------------------------------------------

    def run(self) -> None:
        env: dict[str, _Track] = {}
        env = self._exec_block(self.fn.body, env, False)
        self._finish(env)

    def _exec_block(
        self, stmts: list, env: dict, maybe: bool
    ) -> dict:
        for stmt in stmts:
            env = self._exec_stmt(stmt, env, maybe)
        return env

    def _process_expr(
        self, expr: ast.AST | None, env: dict, maybe: bool,
        bind: str | None = None,
    ) -> None:
        if expr is None:
            return
        calls = list(_iter_calls_postorder(expr))
        for call in calls:
            is_outer = call is expr
            self._handle_call(
                call, env, maybe, bind=bind if is_outer else None
            )

    def _exec_stmt(self, stmt, env: dict, maybe: bool) -> dict:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            # A nested scope capturing a handle takes ownership.
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) and node.id in env:
                    env[node.id].escaped = True
            return env

        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            return self._exec_assign(stmt, env, maybe)

        if isinstance(stmt, ast.Expr):
            self._process_expr(stmt.value, env, maybe)
            return env

        if isinstance(stmt, ast.Return):
            self._process_expr(stmt.value, env, maybe)
            if stmt.value is not None:
                for node in ast.walk(stmt.value):
                    if isinstance(node, ast.Name):
                        t = env.get(node.id)
                        if t is not None:
                            t.escaped = True
            return env

        if isinstance(stmt, ast.Raise):
            self._process_expr(stmt.exc, env, maybe)
            self._mark_risk(env, stmt.lineno, "an explicit raise")
            return env

        if isinstance(stmt, ast.If):
            self._process_expr(stmt.test, env, maybe)
            env_a = self._exec_block(stmt.body, _clone_env(env), True)
            env_b = self._exec_block(
                stmt.orelse, _clone_env(env), True
            )
            return _join_env(env_a, env_b)

        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._process_expr(stmt.iter, env, maybe)
            env_body = self._exec_block(
                stmt.body, _clone_env(env), True
            )
            env = _join_env(env, env_body)
            return self._exec_block(stmt.orelse, env, maybe)

        if isinstance(stmt, ast.While):
            self._process_expr(stmt.test, env, maybe)
            env_body = self._exec_block(
                stmt.body, _clone_env(env), True
            )
            env = _join_env(env, env_body)
            return self._exec_block(stmt.orelse, env, maybe)

        if isinstance(stmt, ast.Try):
            return self._exec_try(stmt, env, maybe)

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._exec_with(stmt, env, maybe)

        if isinstance(stmt, (ast.Global, ast.Nonlocal)):
            for name in stmt.names:
                t = env.get(name)
                if t is not None:
                    t.escaped = True
            return env

        # Anything else: still process embedded calls conservatively.
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.expr):
                self._process_expr(node, env, maybe)
        return env

    def _exec_assign(self, stmt, env: dict, maybe: bool) -> dict:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        else:
            targets = [stmt.target]
            value = stmt.value

        bind: str | None = None
        if (
            len(targets) == 1
            and isinstance(targets[0], ast.Name)
            and isinstance(stmt, (ast.Assign, ast.AnnAssign))
        ):
            bind = targets[0].id

        # Aliasing: ``x = tracked`` shares the machine state.
        if (
            bind is not None
            and isinstance(value, ast.Name)
            and value.id in env
        ):
            env[bind] = env[value.id]
            return env

        self._process_expr(value, env, maybe, bind=bind)

        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                # Stored onto an object: the handle escapes.
                if value is not None:
                    for node in ast.walk(value):
                        if isinstance(node, ast.Name):
                            t = env.get(node.id)
                            if t is not None:
                                t.escaped = True
                            self._escape_pending(
                                env, node.id, target.lineno
                            )
            elif isinstance(target, (ast.Tuple, ast.List)):
                for el in target.elts:
                    if isinstance(el, ast.Name):
                        env.pop(el.id, None)
            elif isinstance(target, ast.Name) and bind is None:
                env.pop(target.id, None)
            elif (
                isinstance(target, ast.Name)
                and bind is not None
                and bind in env
                and not isinstance(value, (ast.Call, ast.Name))
            ):
                # Rebound to something unrelated: stop tracking.
                env.pop(bind, None)
        return env

    def _exec_try(self, stmt: ast.Try, env: dict, maybe: bool) -> dict:
        # A finally that fires a protocol event on a handle protects
        # the try body's raise-capable statements (PR 6's
        # finally-span rule, generalized to protocol machines).
        if stmt.finalbody and stmt.body:
            span = (
                stmt.lineno,
                max(
                    getattr(s, "end_lineno", s.lineno) or s.lineno
                    for s in stmt.body
                ),
            )
            for node in ast.walk(ast.Module(body=stmt.finalbody,
                                            type_ignores=[])):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                ):
                    t = env.get(node.func.value.id)
                    if t is not None and t.spec.event_for_method(
                        node.func.attr
                    ):
                        t.protected.append(span)

        env_body = self._exec_block(stmt.body, env, maybe)
        if stmt.handlers:
            pre = _join_env(env, env_body)
            joined: dict | None = None
            for handler in stmt.handlers:
                env_h = self._exec_block(
                    handler.body, _clone_env(pre), True
                )
                joined = (
                    env_h if joined is None
                    else _join_env(joined, env_h)
                )
            env_body = self._exec_block(stmt.orelse, env_body, maybe)
            env_out = _join_env(env_body, joined or env_body)
        else:
            env_out = self._exec_block(stmt.orelse, env_body, maybe)
        return self._exec_block(stmt.finalbody, env_out, maybe)

    def _exec_with(self, stmt, env: dict, maybe: bool) -> dict:
        managed: list[_Track] = []
        body_span = (
            stmt.lineno,
            getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno,
        )
        for item in stmt.items:
            ce = item.context_expr
            bind = (
                item.optional_vars.id
                if isinstance(item.optional_vars, ast.Name)
                else None
            )
            self._process_expr(ce, env, maybe, bind=bind)
            track: _Track | None = None
            if bind is not None and bind in env:
                track = env[bind]
            elif isinstance(ce, ast.Name):
                track = env.get(ce.id)
            if track is not None:
                if track.spec.enter_event:
                    self._step(
                        track, track.spec.enter_event,
                        stmt.lineno, stmt.col_offset, maybe=maybe,
                    )
                track.protected.append(body_span)
                managed.append(track)
        env = self._exec_block(stmt.body, env, maybe)
        for track in managed:
            if track.spec.exit_event:
                self._step(
                    track, track.spec.exit_event,
                    body_span[1], 0, maybe=maybe,
                )
        return env

    # -- end of function -----------------------------------------------------

    def _finish(self, env: dict) -> None:
        seen: set[int] = set()
        for track in env.values():
            if id(track) in seen:
                continue
            seen.add(id(track))
            if track.escaped:
                continue
            complete = bool(track.states & track.spec.accepting)
            if not complete and track.spec.name == "channel-exporter":
                self._report(
                    "RPR022", track.ctor_line, track.ctor_col,
                    track.spec.name,
                    f"`{track.var} = {track.ctor}(...)` opens the "
                    "live stream (hello) but no path sends "
                    "metrics_final/bye before the function exits; "
                    "call close() so the final registry merge and "
                    "the close handshake reach the collector",
                    track,
                )
            elif complete and track.risk is not None:
                rline, why = track.risk
                self._report(
                    track.spec.raise_rule or "RPR025",
                    track.ctor_line, track.ctor_col, track.spec.name,
                    f"`{track.var} = {track.ctor}(...)` can be left "
                    f"open: {why} at line {rline} exits before the "
                    f"{track.spec.name} protocol reaches an accepting "
                    "state; move the close/finalize into a finally or "
                    "use `with`",
                    track,
                )


class TypestateAnalysis:
    """Project-wide typestate pass: summaries fixpoint + violations."""

    def __init__(
        self,
        project: Project,
        *,
        extra_sources: dict[str, str] | None = None,
        interprocedural: bool = True,
    ) -> None:
        self.project = project
        self.interprocedural = interprocedural
        #: qname -> {param: (PEvent, ...)} protocol summaries.
        self.summaries: dict[str, dict[str, tuple[PEvent, ...]]] = {}
        self._params: dict[str, tuple[str, ...]] = {}
        # (path, qname, FunctionDef) work list.
        self._functions: list[tuple[str, str | None, ast.AST]] = []
        self._trees: dict[str, ast.Module] = {}
        sources = dict(extra_sources or {})
        for rec in project.modules.values():
            source = sources.get(rec.path)
            if source is None:
                try:
                    source = Path(rec.path).read_text(encoding="utf-8")
                except (OSError, UnicodeDecodeError):
                    continue
            try:
                tree = ast.parse(source, filename=rec.path)
            except SyntaxError:
                continue
            self._trees[rec.path] = tree
            by_key = {
                (info.name, info.line): info.qname
                for info in rec.functions
            }
            by_name: dict[str, list[str]] = {}
            for info in rec.functions:
                by_name.setdefault(info.name, []).append(info.qname)
            for node in ast.walk(tree):
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    qname = by_key.get((node.name, node.lineno))
                    if qname is None:
                        cands = by_name.get(node.name, [])
                        qname = cands[0] if len(cands) == 1 else None
                    if qname is not None:
                        self._params[qname] = _param_names(node)
                    self._functions.append((rec.path, qname, node))

    def param_names_of(self, qname: str) -> tuple[str, ...]:
        """Declared parameter names of ``qname`` (empty when the
        function was not matched to an AST)."""
        return self._params.get(qname, ())

    def _summary_pass(self) -> bool:
        changed = False
        for path, qname, node in self._functions:
            if qname is None:
                continue
            fpass = _FunctionPass(self, node, qname, path)
            fpass.run()
            new = {
                p: tuple(log)
                for p, log in fpass.param_log.items()
                if log
            }
            if new != self.summaries.get(qname, {}):
                self.summaries[qname] = new
                changed = True
        return changed

    def run(self) -> dict[str, dict[str, list[tuple[int, int, str]]]]:
        """Compute the full report: ``code -> path -> triples`` plus
        per-function channel findings for RPR026."""
        if self.interprocedural:
            for _round in range(_MAX_ROUNDS):
                if not self._summary_pass():
                    break
        report: dict[str, dict[str, list[tuple[int, int, str]]]] = {
            code: {} for code in TYPESTATE_RULES
        }
        channel_viols: dict[str, list[tuple[int, int, str]]] = {}
        for path, qname, node in self._functions:
            fpass = _FunctionPass(self, node, qname, path)
            fpass.run()
            for code, line, col, machine, msg in fpass.violations:
                report[code].setdefault(path, []).append(
                    (line, col, msg)
                )
                if machine == "channel-exporter" and qname:
                    channel_viols.setdefault(qname, []).append(
                        (line, col, msg)
                    )
        self._check_spawn_conformance(report, channel_viols)
        for buckets in report.values():
            for triples in buckets.values():
                triples.sort()
        return report

    # -- RPR026: spawned children must drive the channel in order ----------

    def _check_spawn_conformance(
        self,
        report: dict,
        channel_viols: dict[str, list[tuple[int, int, str]]],
    ) -> None:
        if not channel_viols:
            return
        project = self.project
        for rec in project.modules.values():
            tree = self._trees.get(rec.path)
            if tree is None:
                continue
            infos = sorted(rec.functions, key=lambda i: i.line)
            for call in ast.walk(tree):
                if not isinstance(call, ast.Call):
                    continue
                raw = _dotted(call.func)
                if raw is None or raw.split(".")[-1] != "Process":
                    continue
                target = next(
                    (
                        kw.value.id
                        for kw in call.keywords
                        if kw.arg == "target"
                        and isinstance(kw.value, ast.Name)
                    ),
                    None,
                )
                if target is None:
                    continue
                owner = None
                for info in infos:
                    if info.line <= call.lineno <= info.end_line:
                        owner = info
                if owner is None:
                    continue
                callee = project._resolve_plain(owner, target)
                if callee is None:
                    continue
                reach = {callee} | project.reachable_from(callee)
                hits = [
                    (fn, v)
                    for fn in sorted(reach)
                    for v in channel_viols.get(fn, ())
                ]
                if not hits:
                    continue
                fn, (vline, _vcol, vmsg) = hits[0]
                where = project.functions[fn]
                report["RPR026"].setdefault(rec.path, []).append(
                    (
                        call.lineno, call.col_offset,
                        f"spawned child target `{target}` can emit "
                        "frames without a conformant handshake: "
                        f"`{fn.rsplit('.', 1)[-1]}` "
                        f"({where.path}:{vline}) drives its channel "
                        "out of order — a conformant stream is hello "
                        "-> frames -> metrics_final -> bye (tightens "
                        "RPR021: having a channel is not enough, it "
                        "must be driven in order)",
                    )
                )


def typestate_report(
    project: Project,
    *,
    extra_sources: dict[str, str] | None = None,
) -> dict[str, dict[str, list[tuple[int, int, str]]]]:
    """Memoized typestate findings for ``project``
    (``code -> path -> (line, col, message) triples``)."""
    cached = getattr(project, "_typestate_report", None)
    if cached is not None:
        return cached
    analysis = TypestateAnalysis(
        project, extra_sources=extra_sources
    )
    report = analysis.run()
    project._typestate_report = report
    return report
