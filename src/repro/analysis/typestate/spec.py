"""Declarative protocol state machines for the typestate tier.

A :class:`ProtocolSpec` is a finite state machine over the *lifecycle
events* of one kind of handle: constructor calls, method calls, and —
for the live telemetry stream — frame kinds.  The static typestate
interpreter (:mod:`repro.analysis.typestate.interp`) drives these
machines over abstract states per variable; the dynamic
:class:`~repro.obs.live.protocol.ProtocolMonitor` drives the *same*
machines over real method calls and captured frames, so every static
rule has a runtime twin proven on the same scenarios.

Built-in machines (:data:`PROTOCOLS`):

================  =========================================================
live-channel      the ``repro.obs.live/1`` frame handshake:
                  hello → spans/metrics → metrics_final → bye
channel-exporter  :class:`~repro.obs.live.channel.ChannelExporter`:
                  created → (hello) open → (close) closed
collector         :class:`~repro.obs.live.collector.Collector`:
                  created → (enter) attached → (exit) detached
flight-recorder   :class:`~repro.obs.profile.FlightRecorder` attach/detach
bfs-workspace     :class:`~repro.bfs.workspace.BFSWorkspace`:
                  idle → (begin/traverse) active → (result bound) lent
                  → (detach) active
parallel-bfs      :class:`~repro.bfs.parallel.ParallelBFS`:
                  open → (close) closed
================  =========================================================

Each machine carries the lint rule that owns its misuse findings
(``owner_rule``) and, where applicable, the rule reporting raise-path
incompleteness (``raise_rule``, RPR025).  Machines export to DOT via
:meth:`ProtocolSpec.to_dot` (``repro-bfs protocols --format dot``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import AnalysisError

__all__ = [
    "ProtocolSpec",
    "PROTOCOLS",
    "get_protocol",
    "protocol_for_ctor",
    "protocol_for_type",
    "all_ctor_names",
]


@dataclass(frozen=True)
class ProtocolSpec:
    """One protocol state machine.

    ``transitions`` is a tuple of ``(state, event, next_state)``
    triples; an event with no triple for the current state is a
    protocol violation.  ``method_events`` maps method *names* (as
    called on a handle) to event names; ``ctors`` are constructor leaf
    names that create a handle in the ``initial`` state.
    """

    name: str
    subject: str
    description: str
    states: tuple[str, ...]
    initial: str
    accepting: frozenset[str]
    transitions: tuple[tuple[str, str, str], ...]
    ctors: frozenset[str] = frozenset()
    classmethod_ctors: frozenset[str] = frozenset()
    method_events: tuple[tuple[str, str], ...] = ()
    enter_event: str | None = None
    exit_event: str | None = None
    #: Rule code that owns ordering/use-after-close findings.
    owner_rule: str | None = None
    #: Rule code for "a raise-capable path leaves the protocol unable
    #: to reach an accepting state" (None when another rule owns it,
    #: e.g. RPR015 already reports leaked ``ParallelBFS`` engines).
    raise_rule: str | None = None
    #: Whether events are frame kinds (the live stream) rather than
    #: method calls on a Python object.
    frame_kinds: bool = False
    _table: dict = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        table: dict[tuple[str, str], str] = {}
        for state, event, nxt in self.transitions:
            if state not in self.states or nxt not in self.states:
                raise AnalysisError(
                    f"protocol {self.name}: transition "
                    f"({state!r}, {event!r}, {nxt!r}) names an "
                    "undeclared state"
                )
            table[(state, event)] = nxt
        if self.initial not in self.states:
            raise AnalysisError(
                f"protocol {self.name}: initial state {self.initial!r} "
                "is not declared"
            )
        object.__setattr__(self, "_table", table)

    # -- stepping ------------------------------------------------------------

    def step(self, state: str, event: str) -> str | None:
        """Next state, or ``None`` when ``event`` violates the
        protocol in ``state``."""
        return self._table.get((state, event))

    def step_set(
        self, states: frozenset[str], event: str
    ) -> tuple[frozenset[str], bool]:
        """Step a *set* of possible states (the abstract lattice).

        Returns ``(next_states, ok)`` where ``ok`` is False when the
        event is a violation from **every** current state — the
        must-fail condition the static rules report on.
        """
        nxt = {self._table[(s, event)]
               for s in states if (s, event) in self._table}
        if not nxt:
            return states, False
        return frozenset(nxt), True

    def allowed(self, state: str) -> tuple[str, ...]:
        """Events legal in ``state``, sorted (for messages)."""
        return tuple(sorted(
            ev for (s, ev) in self._table if s == state
        ))

    def is_accepting(self, state: str) -> bool:
        """Whether a handle may legally end its life in ``state``."""
        return state in self.accepting

    def event_for_method(self, method: str) -> str | None:
        """The event a call to ``handle.method(...)`` signifies."""
        for name, event in self.method_events:
            if name == method:
                return event
        return None

    def events(self) -> tuple[str, ...]:
        """Every event named by any transition, sorted."""
        return tuple(sorted({ev for (_s, ev) in self._table}))

    # -- export --------------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready description (``repro-bfs protocols --format
        json``)."""
        return {
            "name": self.name,
            "subject": self.subject,
            "description": self.description,
            "states": list(self.states),
            "initial": self.initial,
            "accepting": sorted(self.accepting),
            "transitions": [list(t) for t in self.transitions],
            "events": list(self.events()),
            "owner_rule": self.owner_rule,
            "raise_rule": self.raise_rule,
        }

    def to_dot(self) -> str:
        """GraphViz DOT rendering: accepting states are double
        circles, the initial state gets an entry arrow."""
        lines = [
            f'digraph "{self.name}" {{',
            "  rankdir=LR;",
            '  __start [shape=point, label=""];',
        ]
        for state in self.states:
            shape = (
                "doublecircle" if state in self.accepting else "circle"
            )
            lines.append(f'  "{state}" [shape={shape}];')
        lines.append(f'  __start -> "{self.initial}";')
        by_pair: dict[tuple[str, str], list[str]] = {}
        for state, event, nxt in self.transitions:
            by_pair.setdefault((state, nxt), []).append(event)
        for (state, nxt), events in by_pair.items():
            label = ", ".join(events)
            lines.append(f'  "{state}" -> "{nxt}" [label="{label}"];')
        lines.append("}")
        return "\n".join(lines) + "\n"


def _self_loops(
    states: Iterator[str] | tuple[str, ...], events: tuple[str, ...]
) -> tuple[tuple[str, str, str], ...]:
    return tuple(
        (state, event, state) for state in states for event in events
    )


#: The ``repro.obs.live/1`` frame handshake over one stream (keyed by
#: the frame ``source``).  ``span``/``event`` frames may trail into the
#: ``finalized`` state — a listener racing ``close()`` can land one
#: after ``metrics_final`` — but nothing follows ``bye``, nothing
#: precedes ``hello``, and ``bye`` without ``metrics_final`` means the
#: final registry merge was lost.
LIVE_CHANNEL = ProtocolSpec(
    name="live-channel",
    subject="repro.obs.live/1 frame stream",
    description=(
        "hello opens the stream, spans/events/metrics flow, "
        "metrics_final carries the exact registry merge, bye closes"
    ),
    states=("idle", "open", "streaming", "finalized", "closed"),
    initial="idle",
    accepting=frozenset({"closed"}),
    transitions=(
        ("idle", "hello", "open"),
        ("open", "span_open", "streaming"),
        ("open", "span", "streaming"),
        ("open", "event", "streaming"),
        ("open", "metrics", "streaming"),
        ("open", "metrics_final", "finalized"),
        ("streaming", "span_open", "streaming"),
        ("streaming", "span", "streaming"),
        ("streaming", "event", "streaming"),
        ("streaming", "metrics", "streaming"),
        ("streaming", "metrics_final", "finalized"),
        ("finalized", "span_open", "finalized"),
        ("finalized", "span", "finalized"),
        ("finalized", "event", "finalized"),
        ("finalized", "bye", "closed"),
    ),
    owner_rule="RPR022",
    frame_kinds=True,
)

#: ``ChannelExporter``: ``hello()`` before any frame flows, ``close()``
#: sends ``metrics_final`` + ``bye`` exactly once.  Flushing before
#: hello puts frames on the wire outside the handshake; flushing after
#: close is silently dropped telemetry.
CHANNEL_EXPORTER = ProtocolSpec(
    name="channel-exporter",
    subject="ChannelExporter",
    description=(
        "hello() opens the stream; flush() requires an open stream; "
        "close() finalizes (idempotent)"
    ),
    states=("created", "open", "closed"),
    initial="created",
    accepting=frozenset({"created", "closed"}),
    transitions=(
        ("created", "hello", "open"),
        ("open", "flush", "open"),
        ("open", "close", "closed"),
        ("closed", "close", "closed"),
    ),
    ctors=frozenset({"ChannelExporter"}),
    method_events=(
        ("hello", "hello"),
        ("flush", "flush"),
        ("close", "close"),
    ),
    owner_rule="RPR022",
    raise_rule="RPR025",
)

#: ``Collector``: attach with ``with``, drain with ``close()``, detach
#: on exit.  Watching or polling a detached collector silently loses
#: parent-side telemetry.
COLLECTOR = ProtocolSpec(
    name="collector",
    subject="Collector",
    description=(
        "context entry attaches to the tracer; watch/poll/replay need "
        "an attached (or not-yet-attached) collector; exit detaches"
    ),
    states=("created", "attached", "detached"),
    initial="created",
    accepting=frozenset({"created", "detached"}),
    transitions=(
        ("created", "enter", "attached"),
        ("attached", "exit", "detached"),
        ("created", "use", "created"),
        ("created", "drain", "created"),
        ("created", "evaluate", "created"),
        ("attached", "use", "attached"),
        ("attached", "drain", "attached"),
        ("attached", "evaluate", "attached"),
        ("detached", "evaluate", "detached"),
    ),
    ctors=frozenset({"Collector"}),
    method_events=(
        ("watch", "use"),
        ("poll", "use"),
        ("replay", "use"),
        ("close", "drain"),
        ("evaluate", "evaluate"),
    ),
    enter_event="enter",
    exit_event="exit",
    owner_rule="RPR023",
    raise_rule="RPR025",
)

#: ``FlightRecorder``: attach/detach bracket; ``trigger()`` works in
#: any state (a manual snapshot needs no listener).
FLIGHT_RECORDER = ProtocolSpec(
    name="flight-recorder",
    subject="FlightRecorder",
    description=(
        "context entry attaches the ring to the tracer; exit detaches; "
        "trigger() dumps from any state"
    ),
    states=("created", "attached", "detached"),
    initial="created",
    accepting=frozenset({"created", "detached"}),
    transitions=(
        ("created", "enter", "attached"),
        ("attached", "exit", "detached"),
    ) + _self_loops(
        ("created", "attached", "detached"), ("trigger", "arm")
    ),
    ctors=frozenset({"FlightRecorder"}),
    method_events=(
        ("trigger", "trigger"),
        ("add_artifact_provider", "arm"),
    ),
    enter_event="enter",
    exit_event="exit",
    owner_rule="RPR023",
)

#: ``BFSWorkspace``: ``begin``/a traversal resets every map; a
#: :class:`~repro.bfs.result.BFSResult` built from the workspace
#: *aliases* its arrays (state ``lent``) until ``detach()``.  A new
#: traversal while a live result is lent silently corrupts it — the
#: stateful ordering RPR011's escape analysis cannot see.
BFS_WORKSPACE = ProtocolSpec(
    name="bfs-workspace",
    subject="BFSWorkspace",
    description=(
        "begin()/a traversal resets the maps; a bound result aliases "
        "the workspace (lent) until detach(); re-running while lent "
        "corrupts the live result"
    ),
    states=("idle", "active", "lent"),
    initial="idle",
    accepting=frozenset({"idle", "active", "lent"}),
    transitions=(
        ("idle", "begin", "active"),
        ("active", "begin", "active"),
        ("idle", "traverse", "active"),
        ("active", "traverse", "active"),
        ("idle", "detach", "idle"),
        ("active", "detach", "active"),
        ("lent", "detach", "active"),
    ),
    ctors=frozenset({"BFSWorkspace"}),
    classmethod_ctors=frozenset({"for_graph"}),
    method_events=(("begin", "begin"),),
    owner_rule="RPR024",
)

#: ``ParallelBFS``: ``run()`` needs an open engine; ``close()`` joins
#: the pool (idempotent).  Never-closed engines are RPR015's finding;
#: run-after-close is RPR023's.
PARALLEL_BFS = ProtocolSpec(
    name="parallel-bfs",
    subject="ParallelBFS",
    description=(
        "run() requires an open engine; close() joins the thread pool "
        "(idempotent); the context manager closes on exit"
    ),
    states=("open", "closed"),
    initial="open",
    accepting=frozenset({"closed"}),
    transitions=(
        ("open", "run", "open"),
        ("open", "close", "closed"),
        ("closed", "close", "closed"),
    ),
    ctors=frozenset({"ParallelBFS"}),
    method_events=(("run", "run"), ("close", "close")),
    exit_event="close",
    owner_rule="RPR023",
)

#: Every built-in machine, by name.
PROTOCOLS: dict[str, ProtocolSpec] = {
    spec.name: spec
    for spec in (
        LIVE_CHANNEL,
        CHANNEL_EXPORTER,
        COLLECTOR,
        FLIGHT_RECORDER,
        BFS_WORKSPACE,
        PARALLEL_BFS,
    )
}


def get_protocol(name: str) -> ProtocolSpec:
    """Look a machine up by name (raises
    :class:`~repro.errors.AnalysisError` on unknown names)."""
    spec = PROTOCOLS.get(name)
    if spec is None:
        raise AnalysisError(
            f"unknown protocol {name!r}; known: "
            + ", ".join(sorted(PROTOCOLS))
        )
    return spec


def protocol_for_ctor(leaf: str) -> ProtocolSpec | None:
    """The machine whose handles ``leaf(...)`` constructs, if any."""
    for spec in PROTOCOLS.values():
        if leaf in spec.ctors:
            return spec
    return None


def protocol_for_type(type_name: str) -> ProtocolSpec | None:
    """The machine governing instances of ``type_name`` (the dynamic
    monitor's auto-detection)."""
    for spec in PROTOCOLS.values():
        if spec.subject == type_name or type_name in spec.ctors:
            return spec
    return None


def all_ctor_names() -> frozenset[str]:
    """Every constructor leaf name any machine tracks."""
    out: set[str] = set()
    for spec in PROTOCOLS.values():
        out |= spec.ctors
    return frozenset(out)
