"""The ``repro`` lint engine.

A small, dependency-free static analyzer built on :mod:`ast`.  Rules are
codebase-specific: they encode the invariants this reproduction's hot
paths rely on (vectorized kernels, wide index dtypes, monotonic clocks,
library-grade error reporting, frozen CSR storage) rather than generic
style.  The concrete rules live in :mod:`repro.analysis.rules` (the
line-local pattern rules) and :mod:`repro.analysis.dataflow` /
:mod:`repro.analysis.races` (the deep dataflow rules); this module
provides the machinery:

* a rule registry (``RULES``) populated by the :func:`rule` decorator;
* a two-tier rule model: default rules run everywhere, ``deep`` rules
  (abstract interpretation, effect summaries, race detection) run only
  under ``--deep`` or when explicitly selected;
* per-file AST visiting with a :class:`ModuleContext` handed to each
  rule.  The AST is parsed **once** per file and a shared
  :class:`NodeIndex` (one ``ast.walk`` materialized by node type) is
  reused by every rule, so a lint run is a single visitor pass;
* a third tier: ``whole_program`` rules (RPR015+ in
  :mod:`repro.analysis.program`) additionally receive a resolved
  :class:`~repro.analysis.callgraph.Project` built once per
  :func:`lint_paths` run, so their findings rest on interprocedural
  fixpoint facts;
* structured diagnostics: files that cannot be decoded or parsed are
  reported as pseudo-rule ``RPR000`` violations instead of aborting
  the run with a traceback;
* line-level suppression via ``# repro: noqa[RPR001]`` (or a bare
  ``# repro: noqa`` to silence every rule on that line).  A marker on
  any line of a multi-line simple statement suppresses the whole
  statement extent;
* text and JSON reporters.

Run it programmatically (:func:`lint_paths`) or via ``repro-bfs lint``.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import LintError

__all__ = [
    "Violation",
    "Rule",
    "RULES",
    "rule",
    "deep_rule_codes",
    "ModuleContext",
    "NodeIndex",
    "lint_source",
    "lint_file",
    "lint_paths",
    "format_text",
    "format_json",
    "iter_python_files",
    "changed_python_files",
    "DIAGNOSTIC_RULE",
]

#: Pseudo-rule code for engine diagnostics (undecodable / unparsable
#: files).  Not in ``RULES`` — it cannot be selected or suppressed; it
#: reports that a file could not be analyzed at all.
DIAGNOSTIC_RULE = "RPR000"

#: Directories (as package path fragments) whose modules are hot paths:
#: Python-level per-vertex/per-edge loops are forbidden there (RPR001).
HOT_PATH_FRAGMENTS = ("repro/bfs/", "repro/graph/", "repro/hetero/")

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)

#: Simple (non-compound) statement types over which a ``# repro: noqa``
#: marker is expanded to the full statement extent.  Compound statements
#: (``if``/``for``/``def``/...) are deliberately excluded — a noqa on a
#: ``def`` line must not blanket the whole function body.
_SIMPLE_STMT_TYPES = (
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.Expr,
    ast.Return,
    ast.Raise,
    ast.Assert,
    ast.Delete,
    ast.Import,
    ast.ImportFrom,
)


class NodeIndex:
    """One materialized ``ast.walk`` shared by every rule.

    Historically each rule walked the module tree itself, so an
    N-rule lint run traversed every AST N times.  The index walks once
    and buckets nodes by concrete type; rules ask for the types they
    care about via :meth:`of`.
    """

    __slots__ = ("nodes", "_by_type")

    def __init__(self, tree: ast.AST) -> None:
        self.nodes: tuple[ast.AST, ...] = tuple(ast.walk(tree))
        by_type: dict[type, list[ast.AST]] = {}
        for node in self.nodes:
            by_type.setdefault(type(node), []).append(node)
        self._by_type: dict[type, tuple[ast.AST, ...]] = {
            t: tuple(ns) for t, ns in by_type.items()
        }

    def of(self, *types: type) -> list[ast.AST]:
        """All nodes of the given concrete AST types, in walk order."""
        if len(types) == 1:
            return list(self._by_type.get(types[0], ()))
        out: list[ast.AST] = []
        for t in types:
            out.extend(self._by_type.get(t, ()))
        return out


@dataclass(frozen=True)
class Violation:
    """One rule firing at one source location."""

    rule: str
    message: str
    path: str
    line: int
    col: int

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }


@dataclass(frozen=True, eq=False)
class ModuleContext:
    """Everything a rule may inspect about one module.

    Instances are compared/hashes by identity so per-module analysis
    passes (the dataflow interpreter, effect summaries) can be cached
    with ``functools.lru_cache`` keyed on the context itself.
    """

    path: str
    source: str
    tree: ast.Module
    hot_path: bool
    lines: tuple[str, ...] = field(repr=False, default=())
    index: NodeIndex | None = field(repr=False, default=None, compare=False)
    #: Whole-program view (repro.analysis.callgraph.Project) when the
    #: lint run covers multiple files; ``None`` for single-source runs,
    #: where whole-program rules fall back to a one-file project.
    project: object | None = field(repr=False, default=None, compare=False)

    @property
    def module_basename(self) -> str:
        """File name without the ``.py`` suffix."""
        name = Path(self.path).name
        return name[:-3] if name.endswith(".py") else name

    def nodes(self, *types: type) -> list[ast.AST]:
        """Nodes of the given types from the shared single-pass index."""
        if self.index is not None:
            return self.index.of(*types)
        return [n for n in ast.walk(self.tree) if isinstance(n, types)]


#: A rule yields ``(lineno, col, message)`` triples for one module.
RuleCheck = Callable[[ModuleContext], Iterator[tuple[int, int, str]]]


@dataclass(frozen=True)
class Rule:
    """A registered lint rule."""

    code: str
    name: str
    summary: str
    check: RuleCheck
    hot_path_only: bool = False
    deep: bool = False
    whole_program: bool = False


RULES: dict[str, Rule] = {}


def rule(
    code: str,
    summary: str,
    *,
    hot_path_only: bool = False,
    deep: bool = False,
    whole_program: bool = False,
) -> Callable[[RuleCheck], RuleCheck]:
    """Register a rule under ``code`` (e.g. ``'RPR001'``).

    ``deep`` rules (dataflow / race analysis) only run when the caller
    passes ``deep=True`` or selects the code explicitly.
    ``whole_program`` rules additionally want a resolved call-graph
    project on the context (``lint_paths`` builds one per run).
    """

    def register(fn: RuleCheck) -> RuleCheck:
        if code in RULES:
            raise LintError(f"duplicate rule code {code!r}")
        RULES[code] = Rule(
            code=code,
            name=fn.__name__,
            summary=summary,
            check=fn,
            hot_path_only=hot_path_only,
            deep=deep,
            whole_program=whole_program,
        )
        return fn

    return register


def _ensure_rules_loaded() -> None:
    # The concrete rules register themselves on import; importing here
    # (not at module top) avoids a cycle since the rule modules import
    # us.  Import unconditionally (imports are idempotent): guarding on
    # an empty registry would leave the set partial when a rule module
    # was imported directly first.
    from repro.analysis import dataflow, program, races, rules  # noqa: F401
    from repro.analysis.typestate import rules as _typestate  # noqa: F401


def deep_rule_codes() -> list[str]:
    """Codes of the registered deep (dataflow/race) rules, sorted."""
    _ensure_rules_loaded()
    return sorted(c for c, r in RULES.items() if r.deep)


def _resolve_select(
    select: Iterable[str] | None, *, deep: bool = False
) -> list[Rule]:
    _ensure_rules_loaded()
    if select is None:
        rules = [RULES[c] for c in sorted(RULES)]
        if not deep:
            rules = [r for r in rules if not r.deep]
        return rules
    chosen: list[Rule] = []
    for code in select:
        code = code.strip().upper()
        if not code:
            continue
        if code not in RULES:
            raise LintError(
                f"unknown rule code {code!r}; known: {', '.join(sorted(RULES))}"
            )
        chosen.append(RULES[code])
    return chosen


def _suppressions(
    lines: Sequence[str], index: NodeIndex | None = None
) -> dict[int, set[str] | None]:
    """Per-line suppression map: line -> set of codes, or ``None`` for
    a blanket ``# repro: noqa``.

    When ``index`` is given, a marker on any line of a multi-line
    *simple* statement is expanded to the statement's full
    ``lineno..end_lineno`` extent, so a noqa on (say) the closing line
    of a wrapped call suppresses the whole call.
    """
    out: dict[int, set[str] | None] = {}
    for i, text in enumerate(lines, 1):
        m = _NOQA_RE.search(text)
        if not m:
            continue
        codes = m.group("codes")
        if codes is None:
            out[i] = None
        else:
            out[i] = {c.strip().upper() for c in codes.split(",") if c.strip()}
    if not out or index is None:
        return out
    for node in index.of(*_SIMPLE_STMT_TYPES):
        end = getattr(node, "end_lineno", None)
        if end is None or end <= node.lineno:
            continue
        extent = range(node.lineno, end + 1)
        marks = [out[i] for i in extent if i in out]
        if not marks:
            continue
        if any(m is None for m in marks):
            merged: set[str] | None = None
        else:
            merged = set().union(*marks)  # type: ignore[arg-type]
        for i in extent:
            if merged is None:
                out[i] = None
            elif out.get(i, ()) is not None:
                out[i] = set(out.get(i) or ()) | merged
    return out


def is_hot_path(path: str) -> bool:
    """Whether ``path`` belongs to a hot-path package (RPR001 scope)."""
    posix = Path(path).as_posix()
    return any(frag in posix for frag in HOT_PATH_FRAGMENTS)


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    select: Iterable[str] | None = None,
    hot_path: bool | None = None,
    deep: bool = False,
    project: object | None = None,
) -> list[Violation]:
    """Lint one module given as a string.

    ``hot_path`` overrides the path-based hot-path detection (useful for
    testing rules against files outside the package layout).  ``deep``
    additionally runs the dataflow/race rules (RPR010+).  ``project``
    optionally carries the whole-program call graph the RPR015+ rules
    consume; without one they analyze this file in isolation.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: cannot parse: {exc}") from exc
    lines = tuple(source.splitlines())
    index = NodeIndex(tree)
    ctx = ModuleContext(
        path=path,
        source=source,
        tree=tree,
        hot_path=is_hot_path(path) if hot_path is None else hot_path,
        lines=lines,
        index=index,
        project=project,
    )
    suppressed = _suppressions(lines, index)
    violations: list[Violation] = []
    for rl in _resolve_select(select, deep=deep):
        if rl.hot_path_only and not ctx.hot_path:
            continue
        for lineno, col, message in rl.check(ctx):
            mask = suppressed.get(lineno, "absent")
            if mask is None or (mask != "absent" and rl.code in mask):
                continue
            violations.append(
                Violation(
                    rule=rl.code,
                    message=message,
                    path=path,
                    line=lineno,
                    col=col,
                )
            )
    violations.sort(key=lambda v: (v.line, v.col, v.rule))
    return violations


def _diagnostic(path: Path, message: str, line: int = 1) -> Violation:
    return Violation(
        rule=DIAGNOSTIC_RULE,
        message=message,
        path=str(path),
        line=line,
        col=0,
    )


def lint_file(
    path: str | Path,
    *,
    select: Iterable[str] | None = None,
    deep: bool = False,
    project: object | None = None,
) -> list[Violation]:
    """Lint one file on disk.

    Files that cannot be decoded as UTF-8 or parsed as Python yield a
    single structured ``RPR000`` diagnostic violation instead of
    raising, so a directory run reports them and keeps going (the CLI
    exit code is nonzero either way).  A missing/unreadable file is
    still a usage error (:class:`~repro.errors.LintError`).
    """
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except UnicodeDecodeError as exc:
        return [_diagnostic(p, f"cannot decode as UTF-8: {exc}")]
    except OSError as exc:
        raise LintError(f"{p}: cannot read: {exc}") from exc
    try:
        return lint_source(
            source, str(p), select=select, deep=deep, project=project
        )
    except LintError as exc:
        cause = exc.__cause__
        if isinstance(cause, SyntaxError):
            return [
                _diagnostic(
                    p,
                    f"cannot parse: {cause.msg}",
                    line=cause.lineno or 1,
                )
            ]
        raise


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files to lint.

    Directories are walked recursively; hidden directories and
    ``__pycache__`` are skipped.  Order is deterministic.
    """
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                parts = sub.relative_to(p).parts
                if any(
                    part.startswith(".") or part == "__pycache__"
                    for part in parts[:-1]
                ):
                    continue
                yield sub
        elif p.suffix == ".py":
            yield p
        elif not p.exists():
            raise LintError(f"{p}: no such file or directory")


def changed_python_files(
    paths: Iterable[str | Path] | None = None,
    *,
    root: str | Path | None = None,
) -> list[Path]:
    """``.py`` files changed vs git: working tree + staged + untracked.

    Backs ``repro-bfs lint --changed``.  When ``paths`` is given, the
    changed set is filtered to files under those files/directories.
    Raises :class:`~repro.errors.LintError` outside a git checkout.
    """
    import subprocess

    cwd = Path(root) if root is not None else Path.cwd()
    commands = (
        ["git", "diff", "--name-only", "HEAD", "--", "*.py"],
        ["git", "ls-files", "--others", "--exclude-standard", "--", "*.py"],
    )
    names: list[str] = []
    for cmd in commands:
        try:
            proc = subprocess.run(
                cmd, cwd=cwd, capture_output=True, text=True, timeout=30
            )
        except (OSError, subprocess.TimeoutExpired) as exc:
            raise LintError(f"--changed requires git: {exc}") from exc
        if proc.returncode != 0:
            raise LintError(
                "--changed requires a git checkout: "
                + proc.stderr.strip().splitlines()[-1]
                if proc.stderr.strip()
                else "--changed requires a git checkout"
            )
        names.extend(proc.stdout.splitlines())
    scopes = None
    if paths is not None:
        scopes = [Path(p).resolve() for p in paths]
    out: list[Path] = []
    seen: set[Path] = set()
    for name in names:
        p = (cwd / name).resolve()
        if not p.exists() or p.suffix != ".py" or p in seen:
            continue
        if scopes is not None and not any(
            p == scope or scope in p.parents for scope in scopes
        ):
            continue
        seen.add(p)
        out.append(p)
    return sorted(out)


def lint_paths(
    paths: Iterable[str | Path],
    *,
    select: Iterable[str] | None = None,
    deep: bool = False,
    restrict_to: Iterable[str | Path] | None = None,
) -> tuple[list[Violation], int]:
    """Lint files and directories.

    When the selected rule set contains whole-program rules, one
    call-graph project is built over every file in the run and handed
    to each per-file context.  ``restrict_to`` narrows which files are
    *reported on* without narrowing the analysis scope: the project is
    still built over every file under ``paths``, so interprocedural
    rules keep seeing callees in unchanged modules, but only findings
    located in a restricted file surface (and only those files count
    toward ``files_checked``).  Returns ``(violations, files_checked)``.
    """
    files = list(iter_python_files(paths))
    report_files = files
    if restrict_to is not None:
        wanted = {Path(p).resolve() for p in restrict_to}
        report_files = [f for f in files if Path(f).resolve() in wanted]
    project: object | None = None
    if any(r.whole_program for r in _resolve_select(select, deep=deep)):
        from repro.analysis.callgraph import build_project
        from repro.errors import CallGraphError

        try:
            project = build_project(files)
        except CallGraphError:
            project = None  # nothing parsable; per-file diagnostics follow
    violations: list[Violation] = []
    checked = 0
    for file in report_files:
        violations.extend(
            lint_file(file, select=select, deep=deep, project=project)
        )
        checked += 1
    return violations, checked


# -- reporters ------------------------------------------------------------


def format_text(violations: Sequence[Violation]) -> str:
    """One ``path:line:col CODE message`` line per violation."""
    return "\n".join(
        f"{v.path}:{v.line}:{v.col} {v.rule} {v.message}" for v in violations
    )


def format_json(violations: Sequence[Violation]) -> str:
    """JSON array of violation objects (stable key order)."""
    return json.dumps([v.as_dict() for v in violations], indent=2)
