"""Concrete lint rules (``RPR001`` … ``RPR009``, ``RPR020``, ``RPR021``).

Each rule encodes an invariant this codebase depends on:

========  ==============================================================
RPR001    no Python-level loop over vertices/edges in hot-path modules
          (``repro.bfs``/``repro.graph``/``repro.hetero``) — the kernels
          must stay vectorized or the paper's performance story is void
RPR002    no ``int64 -> int32`` narrowing of CSR ``offsets`` — offsets
          index the edge array and overflow int32 past 2^31 edges
RPR003    ``time.time()`` is not a benchmark clock — use
          ``time.perf_counter()`` (monotonic, highest resolution)
RPR004    no bare ``assert`` in library code — asserts vanish under
          ``python -O``; raise a :mod:`repro.errors` type instead
RPR005    no mutation of ``CSRGraph.offsets``/``targets`` outside the
          construction module — traversals alias these arrays
RPR006    public modules must declare ``__all__``
RPR007    no fresh graph-sized allocation inside a BFS level kernel
          (``repro/bfs/`` and the ``repro/linalg/`` tile kernels) —
          level kernels must draw scratch from the
          :class:`~repro.bfs.workspace.BFSWorkspace` so warm traversals
          stay allocation-free
RPR008    no ad-hoc ``time.perf_counter()`` outside ``repro/obs/`` —
          timing goes through :func:`repro.obs.clock.now` (one
          swappable clock, so traces/tests can substitute a
          :class:`~repro.obs.clock.ManualClock`)
RPR009    metric names passed to the registry/tracer must be lowercase
          dotted identifiers from the declared catalog
          (:data:`repro.obs.metrics.METRIC_CATALOG`) — ad-hoc names
          fragment the run-history trajectory and the OpenMetrics
          exposition
RPR020    no ``tracemalloc`` / ``sys.settrace`` / ``sys.setprofile``
          outside ``repro/obs/`` — interpreter-level instrumentation
          distorts the kernels being measured and belongs to the
          profiling tier (:mod:`repro.obs.profile`), whose sampler and
          allocation windows are overhead-bounded by the benchmarks
RPR021    (deep) no span/metric emission inside a ``multiprocessing``
          target whose call path never installs a
          :class:`~repro.obs.live.ChannelExporter` /
          :class:`~repro.obs.TraceContext` — a child process gets a
          fresh interpreter, so its telemetry dies with it unless a
          channel carries it home; spawn the child with
          :func:`repro.obs.live.spawn_traced`
========  ==============================================================

Rules yield ``(line, col, message)``; the engine applies suppression and
reporting.  See :mod:`repro.analysis.lint`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import ModuleContext, rule

__all__ = [
    "check_hot_path_loops",
    "check_offset_narrowing",
    "check_wall_clock",
    "check_bare_assert",
    "check_csr_mutation",
    "check_missing_all",
    "check_kernel_allocations",
    "check_adhoc_perf_counter",
    "check_metric_names",
    "check_adhoc_instrumentation",
    "check_untraced_process_target",
]

# Names whose iteration in a hot-path module almost certainly means a
# scalar per-vertex/per-edge loop (the frontier, adjacency material).
_VERTEXY_ITER_NAMES = {
    "cq",
    "frontier",
    "neighbours",
    "neighbors",
    "unvisited",
    "vertices",
    "edges",
}
_CSR_ARRAY_ATTRS = {"offsets", "targets"}
_SIZE_NAMES = {"num_vertices", "num_edges", "num_directed_edges",
               "nverts", "nedges", "n_vertices", "n_edges"}
_MUTATING_METHODS = {"fill", "sort", "resize", "put", "partition",
                     "setfield", "byteswap"}


def _terminal_name(node: ast.expr) -> str | None:
    """The identifier a Name/Attribute expression ends in, if any."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _mentions_size(node: ast.expr) -> bool:
    """Whether any sub-expression names a vertex/edge count or a CSR
    array (so ``range()`` over it is a per-vertex/per-edge loop)."""
    for sub in ast.walk(node):
        name = _terminal_name(sub) if isinstance(sub, (ast.Name, ast.Attribute)) else None
        if name in _SIZE_NAMES or name in _CSR_ARRAY_ATTRS:
            return True
    return False


def _is_vertexy_iter(iter_node: ast.expr) -> bool:
    """Heuristic: does this ``for``-loop iterable walk vertices/edges?"""
    if isinstance(iter_node, ast.Call):
        fn = iter_node.func
        if isinstance(fn, ast.Name) and fn.id in ("range", "zip", "enumerate"):
            return any(_mentions_size(a) or _is_vertexy_iter(a)
                       for a in iter_node.args)
        if isinstance(fn, ast.Attribute) and fn.attr in ("neighbors", "edge_list"):
            return True
        return False
    name = _terminal_name(iter_node)
    return name in _VERTEXY_ITER_NAMES or name in _CSR_ARRAY_ATTRS


@rule(
    "RPR001",
    "Python-level loop over vertices/edges in a hot-path module "
    "(bfs/graph/hetero); vectorize with NumPy",
    hot_path_only=True,
)
def check_hot_path_loops(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    """Flag scalar per-vertex/per-edge ``for`` loops (and comprehension
    generators) inside the vectorized-kernel packages."""
    for node in ctx.nodes(ast.For, ast.AsyncFor, ast.ListComp, ast.SetComp,
                          ast.DictComp, ast.GeneratorExp):
        iters: list[tuple[int, int, ast.expr]] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append((node.lineno, node.col_offset, node.iter))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                iters.append((node.lineno, node.col_offset, gen.iter))
        for line, col, iter_node in iters:
            if _is_vertexy_iter(iter_node):
                yield (
                    line,
                    col,
                    "Python-level loop over vertices/edges "
                    f"(`{ast.unparse(iter_node)}`) in a hot-path module; "
                    "use vectorized NumPy kernels",
                )


def _is_int32_dtype(node: ast.expr) -> bool:
    """Whether an expression denotes the int32 dtype (``np.int32``,
    ``numpy.int32``, ``'int32'``, ``'i4'``)."""
    if isinstance(node, ast.Attribute) and node.attr == "int32":
        return True
    if isinstance(node, ast.Constant) and node.value in ("int32", "i4", "<i4"):
        return True
    return False


def _mentions_offsets(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Name, ast.Attribute)):
            if _terminal_name(sub) == "offsets":
                return True
    return False


@rule(
    "RPR002",
    "int64 -> int32 narrowing of CSR offsets; offsets index the edge "
    "array and overflow int32 on large graphs",
)
def check_offset_narrowing(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    """Flag ``<expr involving offsets>.astype(np.int32)`` and
    ``np.asarray(offsets…, dtype=np.int32)``-style narrowing."""
    for node in ctx.nodes(ast.Call):
        fn = node.func
        # x.astype(np.int32) where x mentions offsets
        if (
            isinstance(fn, ast.Attribute)
            and fn.attr == "astype"
            and node.args
            and _is_int32_dtype(node.args[0])
            and _mentions_offsets(fn.value)
        ):
            yield (
                node.lineno,
                node.col_offset,
                "narrowing a CSR offsets expression to int32; offsets "
                "must stay int64 (they index up to |E| > 2^31 entries)",
            )
            continue
        # np.asarray(x, dtype=np.int32) / np.array(...) where x mentions offsets
        if (
            isinstance(fn, ast.Attribute)
            and fn.attr in ("asarray", "array", "ascontiguousarray", "zeros_like", "empty_like")
            and node.args
            and _mentions_offsets(node.args[0])
        ):
            for kw in node.keywords:
                if kw.arg == "dtype" and _is_int32_dtype(kw.value):
                    yield (
                        node.lineno,
                        node.col_offset,
                        "constructing an int32 array from a CSR offsets "
                        "expression; offsets must stay int64",
                    )


@rule(
    "RPR003",
    "time.time() used for timing; use time.perf_counter() "
    "(monotonic, not subject to clock adjustments)",
)
def check_wall_clock(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    """Flag ``time.time()`` calls and ``from time import time``."""
    for node in ctx.nodes(ast.ImportFrom, ast.Call):
        if isinstance(node, ast.ImportFrom):
            if node.module == "time" and any(
                alias.name == "time" for alias in node.names
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    "importing time.time; use time.perf_counter for timing",
                )
        elif isinstance(node, ast.Call):
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr == "time"
                and isinstance(fn.value, ast.Name)
                and fn.value.id == "time"
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    "time.time() is not a benchmark clock; "
                    "use time.perf_counter()",
                )


@rule(
    "RPR004",
    "bare assert in library code; asserts vanish under `python -O` — "
    "raise a repro.errors type",
)
def check_bare_assert(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    """Flag every ``assert`` statement (library code must raise)."""
    for node in ctx.nodes(ast.Assert):
        yield (
            node.lineno,
            node.col_offset,
            "bare assert in library code; raise a repro.errors "
            "exception (asserts are stripped under python -O)",
        )


@rule(
    "RPR005",
    "mutation of CSRGraph offsets/targets outside graph/csr.py; "
    "traversals alias these arrays",
)
def check_csr_mutation(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    """Flag writes to ``<obj>.offsets`` / ``<obj>.targets`` — element
    assignment, rebinding, augmented assignment, or in-place methods —
    anywhere but the construction module."""
    if ctx.path.replace("\\", "/").endswith("repro/graph/csr.py"):
        return
    for node in ctx.nodes(ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Call):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Call):
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr in _MUTATING_METHODS
                and isinstance(fn.value, ast.Attribute)
                and fn.value.attr in _CSR_ARRAY_ATTRS
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"in-place `{fn.attr}` on CSR `{fn.value.attr}`; "
                    "CSR arrays are frozen outside construction",
                )
            continue
        for tgt in targets:
            # g.offsets[...] = x   or   g.offsets = x
            inner = tgt.value if isinstance(tgt, ast.Subscript) else tgt
            if (
                isinstance(inner, ast.Attribute)
                and inner.attr in _CSR_ARRAY_ATTRS
            ):
                yield (
                    tgt.lineno,
                    tgt.col_offset,
                    f"assignment to CSR `{inner.attr}` outside "
                    "construction; build a new CSRGraph instead",
                )


# Function names that are per-level kernel entry points in repro.bfs
# and repro.linalg — the code paths that run once per BFS level and
# must stay allocation-free after workspace warm-up.
_KERNEL_FN_SUFFIXES = ("_step", "_level", "_scan")
_KERNEL_FN_NAMES = {"expand_rows", "gather_segments", "segment_first_true"}
_ALLOC_FNS = {"zeros", "empty", "full", "ones"}


def _is_kernel_function(name: str) -> bool:
    return name in _KERNEL_FN_NAMES or name.endswith(_KERNEL_FN_SUFFIXES)


def _mentions_parent(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Name, ast.Attribute)):
            if _terminal_name(sub) == "parent":
                return True
    return False


@rule(
    "RPR007",
    "fresh array allocation or parent-map rescan inside a BFS/linalg "
    "level kernel; draw scratch from the BFSWorkspace",
)
def check_kernel_allocations(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    """Flag per-level allocations in the ``repro.bfs`` / ``repro.linalg``
    kernel functions.

    Inside any function named like a level kernel (``*_step``,
    ``*_level``, ``*_scan``, or the shared gather primitives) in a
    ``repro/bfs/`` or ``repro/linalg/`` module, flag:

    * ``np.arange(...)`` — use the workspace iota cache;
    * ``np.zeros/empty/full/ones(k)`` with ``k`` not the constant 0
      (empty-result sentinels are fine) — use a workspace buffer;
    * ``np.nonzero(parent ...)`` / ``np.flatnonzero(parent ...)`` —
      an O(V) rescan of the parent map; use the workspace's
      incremental unvisited list.

    Cold paths (no workspace supplied) carry ``# repro: noqa[RPR007]``.
    """
    path = ctx.path.replace("\\", "/")
    if "repro/bfs/" not in path and "repro/linalg/" not in path:
        return
    for fn in ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef):
        if not _is_kernel_function(fn.name):
            continue
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            name = _terminal_name(callee)
            if name == "arange":
                yield (
                    node.lineno,
                    node.col_offset,
                    "np.arange in a level kernel; use the workspace "
                    "iota cache",
                )
            elif name in _ALLOC_FNS and node.args:
                size = node.args[0]
                if isinstance(size, ast.Constant) and size.value == 0:
                    continue  # empty-result sentinel
                yield (
                    node.lineno,
                    node.col_offset,
                    f"np.{name} allocation in a level kernel; use a "
                    "workspace buffer",
                )
            elif name in ("nonzero", "flatnonzero") and node.args and _mentions_parent(
                node.args[0]
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    "O(V) rescan of the parent map in a level kernel; "
                    "use the workspace's incremental unvisited list",
                )


@rule(
    "RPR008",
    "ad-hoc time.perf_counter() outside repro/obs/; use "
    "repro.obs.clock.now (the library's one swappable clock)",
)
def check_adhoc_perf_counter(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    """Flag ``time.perf_counter()`` calls and ``from time import
    perf_counter`` anywhere but the :mod:`repro.obs` package.

    The observability layer routes every timestamp through
    :func:`repro.obs.clock.now` so spans, ``timed_bfs`` and the bench
    harness all read the same clock — and tests can swap in a
    :class:`~repro.obs.clock.ManualClock`.  A scattered
    ``perf_counter()`` call bypasses that substitution point.
    """
    if "repro/obs/" in ctx.path.replace("\\", "/"):
        return
    for node in ctx.nodes(ast.ImportFrom, ast.Call):
        if isinstance(node, ast.ImportFrom):
            if node.module == "time" and any(
                alias.name == "perf_counter" for alias in node.names
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    "importing time.perf_counter outside repro/obs/; "
                    "use repro.obs.clock.now",
                )
        elif isinstance(node, ast.Call):
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr == "perf_counter"
                and isinstance(fn.value, ast.Name)
                and fn.value.id == "time"
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    "ad-hoc time.perf_counter() outside repro/obs/; "
                    "use repro.obs.clock.now so the clock stays "
                    "swappable",
                )


# Registry methods (and the tracer shorthands that delegate to them)
# whose first argument names a metric.
_METRIC_METHODS = {"counter", "gauge", "histogram", "count", "gauge_set"}
_METRIC_NAME_PATTERN = r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$"


def _metric_catalog() -> tuple[str, ...]:
    # Imported lazily so the analysis layer has no import-time coupling
    # to the observability package it lints.
    from repro.obs.metrics import METRIC_CATALOG

    return METRIC_CATALOG


@rule(
    "RPR009",
    "metric name is not a lowercase dotted identifier from "
    "repro.obs.metrics.METRIC_CATALOG; declare it there first",
)
def check_metric_names(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    """Flag registry/tracer metric call sites whose *string-literal*
    name argument is malformed or undeclared.

    Checked methods: ``registry.counter/gauge/histogram`` and the
    tracer shorthands ``tracer.count/gauge_set/observe`` (``observe``
    only when the first argument is a string — ``histogram.observe(v)``
    takes a value, not a name).  Names built at runtime are out of
    scope; dynamic call sites carry the catalog discipline by
    convention (or a ``# repro: noqa[RPR009]``).
    """
    import re

    catalog = None  # loaded on first hit; most modules emit no metrics
    for node in ctx.nodes(ast.Call):
        fn = node.func
        if not isinstance(fn, ast.Attribute):
            continue
        if fn.attr not in _METRIC_METHODS and fn.attr != "observe":
            continue
        if not node.args:
            continue
        name_arg = node.args[0]
        if not (isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str)):
            continue
        name = name_arg.value
        if catalog is None:
            catalog = _metric_catalog()
        if not re.match(_METRIC_NAME_PATTERN, name):
            yield (
                node.lineno,
                node.col_offset,
                f"metric name {name!r} is not a lowercase dotted "
                "identifier (\"ns.sub.name\")",
            )
        elif name not in catalog:
            yield (
                node.lineno,
                node.col_offset,
                f"metric name {name!r} is not in "
                "repro.obs.metrics.METRIC_CATALOG; declare it there "
                "before emitting it",
            )


@rule(
    "RPR006",
    "public module missing __all__; the API contract must be explicit",
)
def check_missing_all(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    """Flag public modules (basename not starting with ``_``) that never
    assign ``__all__`` at module level."""
    if ctx.module_basename.startswith("_"):
        return
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            return
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == "__all__"
        ):
            return
    yield (1, 0, "public module does not declare __all__")


#: ``sys`` functions that install interpreter-wide hooks: a per-call /
#: per-line callback fires inside every kernel afterwards.
_TRACE_HOOKS = {"settrace", "setprofile"}


@rule(
    "RPR020",
    "tracemalloc / sys.settrace / sys.setprofile outside repro/obs/; "
    "interpreter instrumentation belongs to the profiling tier",
)
def check_adhoc_instrumentation(
    ctx: ModuleContext,
) -> Iterator[tuple[int, int, str]]:
    """Flag interpreter-level instrumentation outside :mod:`repro.obs`.

    ``sys.settrace``/``sys.setprofile`` install a hook the interpreter
    invokes on every call (or line) — exactly the overhead the sampling
    profiler exists to avoid — and a stray ``tracemalloc.start()``
    silently taxes every allocation in the process for as long as it
    stays on.  Both are legitimate *inside* ``repro/obs/``, where the
    profiling tier scopes them to windows and bounds their cost with
    the overhead benchmark; anywhere else they distort the kernels the
    paper's numbers depend on.
    """
    if "repro/obs/" in ctx.path.replace("\\", "/"):
        return
    for node in ctx.nodes(ast.Import, ast.ImportFrom, ast.Call):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "tracemalloc":
                    yield (
                        node.lineno,
                        node.col_offset,
                        "importing tracemalloc outside repro/obs/; use "
                        "repro.obs.profile.AllocationProfiler windows",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "tracemalloc":
                yield (
                    node.lineno,
                    node.col_offset,
                    "importing from tracemalloc outside repro/obs/; use "
                    "repro.obs.profile.AllocationProfiler windows",
                )
            elif node.module == "sys" and any(
                alias.name in _TRACE_HOOKS for alias in node.names
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    "importing sys.settrace/setprofile outside "
                    "repro/obs/; use the sampling profiler "
                    "(repro.obs.profile.StackSampler)",
                )
        else:
            fn = node.func
            if not isinstance(fn, ast.Attribute):
                continue
            if (
                isinstance(fn.value, ast.Name)
                and fn.value.id == "sys"
                and fn.attr in _TRACE_HOOKS
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"sys.{fn.attr}() outside repro/obs/ hooks every "
                    "call in the interpreter; use the sampling "
                    "profiler (repro.obs.profile.StackSampler)",
                )
            elif (
                isinstance(fn.value, ast.Name)
                and fn.value.id == "tracemalloc"
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"tracemalloc.{fn.attr}() outside repro/obs/ taxes "
                    "every allocation in the process; use "
                    "repro.obs.profile.AllocationProfiler windows",
                )


#: Tracer/registry emission methods whose records live only in the
#: process that made them.
_CHILD_EMIT_METHODS = {"span", "instant", "count", "gauge_set", "observe"}

#: Names whose presence on a multiprocessing target's call path means
#: the child's telemetry has a channel back to the parent (or the spawn
#: site wires one up itself).
_CHANNEL_INSTALLERS = {
    "ChannelExporter",
    "TraceContext",
    "use_context",
    "spawn_traced",
    "adopt_record",
}


def _local_function_defs(
    tree: ast.Module,
) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    """Map every function defined anywhere in the module by name."""
    defs: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs.setdefault(node.name, node)
    return defs


def _mentions_channel_installer(fn_node: ast.AST) -> bool:
    """Whether the function references any channel/context installer."""
    for sub in ast.walk(fn_node):
        if isinstance(sub, ast.Name) and sub.id in _CHANNEL_INSTALLERS:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in _CHANNEL_INSTALLERS:
            return True
    return False


def _first_emission(fn_node: ast.AST) -> ast.Call | None:
    """The first tracer/metric emission call inside the function."""
    for sub in ast.walk(fn_node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in _CHILD_EMIT_METHODS
        ):
            return sub
    return None


@rule(
    "RPR021",
    "multiprocessing target emits spans/metrics but its call path never "
    "installs a ChannelExporter/TraceContext; child telemetry is "
    "orphaned — spawn with repro.obs.live.spawn_traced",
    deep=True,
)
def check_untraced_process_target(
    ctx: ModuleContext,
) -> Iterator[tuple[int, int, str]]:
    """Flag ``Process(target=f)`` spawns whose target emits telemetry
    into the void.

    A forked/spawned child gets a fresh interpreter: a tracer or
    registry created there is invisible to the parent, so spans,
    events and metric increments emitted inside the target are lost
    when the child exits — silently, which is why runs "missing" child
    telemetry are so hard to diagnose.  The live tier exists for this:
    :func:`repro.obs.live.spawn_traced` installs the parent's
    :class:`~repro.obs.TraceContext` and a
    :class:`~repro.obs.live.ChannelExporter` in the child so everything
    stitches back into one trace.

    Module-local analysis: the target name is resolved to a function
    defined in this module, and its body plus one hop of module-local
    callees is searched for emission calls (``span`` / ``instant`` /
    ``count`` / ``gauge_set`` / ``observe``).  The spawn is exempt when
    that call path — or the function enclosing the spawn site — ever
    references a channel installer (``ChannelExporter``,
    ``TraceContext``, ``use_context``, ``spawn_traced``,
    ``adopt_record``): wiring we can see locally is assumed correct.
    Targets defined in other modules are out of scope (the discipline
    travels by convention or a ``# repro: noqa[RPR021]``).
    """
    if "repro/obs/" in ctx.path.replace("\\", "/"):
        return
    local_defs = _local_function_defs(ctx.tree)
    if not local_defs:
        return
    for call in ctx.nodes(ast.Call):
        if _terminal_name(call.func) != "Process":
            continue
        target = next(
            (kw.value for kw in call.keywords if kw.arg == "target"), None
        )
        if not isinstance(target, ast.Name):
            continue
        fn_node = local_defs.get(target.id)
        if fn_node is None:
            continue
        # The checked call path: the target plus one hop of
        # module-local callees (helpers the target delegates to).
        path_nodes: list[ast.AST] = [fn_node]
        for sub in ast.walk(fn_node):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name):
                callee = local_defs.get(sub.func.id)
                if callee is not None and callee not in path_nodes:
                    path_nodes.append(callee)
        # The function enclosing the spawn site may wire the channel
        # from the parent side; innermost def containing the call.
        enclosing = None
        for node in local_defs.values():
            end = getattr(node, "end_lineno", node.lineno)
            if node.lineno <= call.lineno <= end:
                if enclosing is None or node.lineno > enclosing.lineno:
                    enclosing = node
        if any(_mentions_channel_installer(n) for n in path_nodes):
            continue
        if enclosing is not None and _mentions_channel_installer(enclosing):
            continue
        emission = None
        for node in path_nodes:
            emission = _first_emission(node)
            if emission is not None:
                break
        if emission is None:
            continue
        yield (
            call.lineno,
            call.col_offset,
            f"multiprocessing target {target.id!r} emits telemetry "
            f"(.{emission.func.attr}() at line {emission.lineno}) but "
            "its call path never installs a ChannelExporter/"
            "TraceContext; the child's spans and metrics die with it "
            "— spawn it with repro.obs.live.spawn_traced",
        )
