"""Runtime BFS sanitizer.

An opt-in harness around the traversal engines (pass ``sanitize=True``
to :func:`repro.bfs.bfs_top_down` / ``bfs_bottom_up`` / ``bfs_hybrid``)
that turns silent traversal corruption into a structured
:class:`~repro.errors.SanitizerError`.  Two mechanisms:

**Freezing** — for the duration of a sanitized traversal the graph's CSR
arrays are marked ``writeable=False``, so any kernel that writes through
an alias of ``offsets``/``targets`` (the bug class lint rule ``RPR005``
looks for statically) fails loudly at the write site instead of
corrupting the graph for every later traversal.

**Per-level invariants** — after every level the sanitizer checks:

1. every newly claimed vertex is recorded at depth ``d + 1`` and its
   parent sits at exactly depth ``d`` (one level shallower);
2. no vertex is ever claimed twice across the traversal;
3. when the level ran bottom-up, the frontier bitmap the kernel consumed
   agrees exactly with the queue representation;
4. the unvisited count is strictly decreasing while the traversal makes
   progress, and always agrees with the parent map.

**Write tracking (race mode)** — :class:`RaceTracker` backs the
parallel engine's ``sanitize="race"`` mode.  It snapshots the
``parent``/``level`` maps before each level, lets worker threads stamp
the segments they process, and after the level verifies that the set
of modified vertices is *exactly* the claimed next frontier — any
write outside the claimed set is a cross-thread write that bypassed
the main-thread merge (the ownership protocol the static rules
``RPR013``/``RPR014`` enforce at the AST level), and raises
:class:`~repro.errors.SanitizerError` naming the rogue vertices.

Violations raise :class:`~repro.errors.SanitizerError` carrying the
level and the offending vertex ids.  The checks are vectorized and add
``O(frontier)`` work per level (``O(V)`` per level in race mode), so
sanitized runs remain usable on Graph 500-scale inputs (the acceptance
bar is a clean R-MAT scale-14 hybrid run).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import BFSError, SanitizerError
from repro.graph.csr import CSRGraph

__all__ = ["Sanitizer", "RaceTracker", "frozen_arrays"]


class frozen_arrays:
    """Context manager marking a graph's CSR arrays read-only.

    Restores the previous ``writeable`` flags on exit, so graphs that
    were deliberately writable (via :meth:`CSRGraph.copy_writable`) come
    back as they were.
    """

    def __init__(self, graph: CSRGraph) -> None:
        self._graph = graph
        self._saved: tuple[bool, bool] | None = None

    def __enter__(self) -> "frozen_arrays":
        g = self._graph
        self._saved = (
            bool(g.offsets.flags.writeable),
            bool(g.targets.flags.writeable),
        )
        g.offsets.flags.writeable = False
        g.targets.flags.writeable = False
        return self

    def __exit__(self, *exc: object) -> None:
        g = self._graph
        if self._saved is not None:
            g.offsets.flags.writeable = self._saved[0]
            g.targets.flags.writeable = self._saved[1]
        self._saved = None


class Sanitizer:
    """Tracks one traversal and checks its per-level invariants.

    Engines drive it as::

        san = Sanitizer(graph, source)
        with san:
            while frontier.size:
                next_frontier, _ = step(...)
                san.after_level(depth, frontier, next_frontier,
                                parent, level, in_frontier=bitmap_or_None)
                ...

    ``levels_checked`` and ``vertices_checked`` summarize a clean run.
    """

    def __init__(self, graph: CSRGraph, source: int) -> None:
        n = graph.num_vertices
        if not 0 <= source < n:
            raise BFSError(f"source {source} out of range [0, {n})")
        self.graph = graph
        self.source = int(source)
        self._visited = np.zeros(n, dtype=bool)
        self._visited[source] = True
        self._unvisited = n - 1
        self.levels_checked = 0
        self.vertices_checked = 1
        self._frozen = frozen_arrays(graph)

    # -- context manager (array freezing) ---------------------------------

    def __enter__(self) -> "Sanitizer":
        self._frozen.__enter__()
        return self

    def __exit__(self, *exc: object) -> None:
        self._frozen.__exit__(*exc)

    # -- per-level checks ---------------------------------------------------

    def after_level(
        self,
        depth: int,
        frontier: np.ndarray,
        next_frontier: np.ndarray,
        parent: np.ndarray,
        level: np.ndarray,
        *,
        in_frontier: object | None = None,
    ) -> None:
        """Validate the state left behind by the level at ``depth``.

        ``frontier`` is the queue the level consumed, ``next_frontier``
        the vertices it claimed; ``in_frontier`` is the frontier
        membership structure the kernel consumed when the level ran
        bottom-up — either a packed :class:`~repro.graph.bitmap.Bitmap`
        or a dense boolean mask (``None`` for top-down levels).
        """
        from repro.graph.bitmap import Bitmap

        nf = np.asarray(next_frontier, dtype=np.int64)

        if in_frontier is not None:
            if isinstance(in_frontier, Bitmap):
                bitmap_ids = in_frontier.nonzero()
            else:
                bitmap_ids = np.nonzero(in_frontier)[0]
            queue_ids = np.sort(np.asarray(frontier, dtype=np.int64))
            if not np.array_equal(bitmap_ids, queue_ids):
                extra = np.setdiff1d(bitmap_ids, queue_ids)
                missing = np.setdiff1d(queue_ids, bitmap_ids)
                bad = np.concatenate([extra, missing])
                raise SanitizerError(
                    "frontier bitmap and queue disagree "
                    f"({extra.size} extra, {missing.size} missing)",
                    level=depth,
                    vertices=tuple(bad[:16]),
                )

        if nf.size:
            wrong_level = nf[level[nf] != depth + 1]
            if wrong_level.size:
                raise SanitizerError(
                    "claimed vertex not recorded one level below the "
                    "frontier",
                    level=depth + 1,
                    vertices=tuple(wrong_level[:16]),
                )
            parents = parent[nf]
            bad_parent = (parents < 0) | (parents >= level.size)
            if bad_parent.any():
                raise SanitizerError(
                    "claimed vertex has an out-of-range parent",
                    level=depth + 1,
                    vertices=tuple(nf[bad_parent][:16]),
                )
            not_shallower = nf[level[parents] != depth]
            if not_shallower.size:
                raise SanitizerError(
                    "claimed vertex's parent is not exactly one level "
                    "shallower",
                    level=depth + 1,
                    vertices=tuple(not_shallower[:16]),
                )
            revisited = nf[self._visited[nf]]
            if revisited.size:
                raise SanitizerError(
                    "vertex visited twice",
                    level=depth + 1,
                    vertices=tuple(revisited[:16]),
                )
            self._visited[nf] = True

        expected_unvisited = self._unvisited - int(nf.size)
        actual_unvisited = int((parent < 0).sum())
        if actual_unvisited != expected_unvisited:
            raise SanitizerError(
                "unvisited count does not match the parent map "
                f"(expected {expected_unvisited}, parent map says "
                f"{actual_unvisited})",
                level=depth,
            )
        if nf.size and expected_unvisited >= self._unvisited:
            raise SanitizerError(
                "unvisited count failed to decrease on a claiming level",
                level=depth,
            )
        self._unvisited = expected_unvisited
        self.levels_checked += 1
        self.vertices_checked += int(nf.size)

    # -- whole-traversal checks ------------------------------------------

    def finish(self, parent: np.ndarray, level: np.ndarray) -> None:
        """Final cross-checks once the traversal terminates."""
        reached_p = parent >= 0
        reached_l = level >= 0
        if not np.array_equal(reached_p, reached_l):
            bad = np.nonzero(reached_p != reached_l)[0]
            raise SanitizerError(
                "parent map and level map disagree on the reached set",
                vertices=tuple(bad[:16]),
            )
        if not np.array_equal(reached_p, self._visited):
            bad = np.nonzero(reached_p != self._visited)[0]
            raise SanitizerError(
                "reached set disagrees with the per-level claim history",
                vertices=tuple(bad[:16]),
            )

    def summary(self) -> str:
        """One-line report for a clean run."""
        return (
            f"sanitizer: {self.levels_checked} levels, "
            f"{self.vertices_checked} vertices checked, 0 violations"
        )


class RaceTracker:
    """Thread-ownership write tracking for ``ParallelBFS`` race mode.

    The parallel engine's ownership protocol says all ``parent``/
    ``level`` writes happen on the main thread, as the first-writer
    claim of the next frontier, after the worker pool has joined.  The
    tracker enforces that dynamically:

    * :meth:`begin_level` snapshots both maps (into reused buffers —
      two O(V) copies per level, only in race mode);
    * workers call :meth:`stamp_chunk` to record which thread touched
      which segment (pure bookkeeping, used for diagnostics);
    * :meth:`verify_level` diffs the maps against the snapshot and
      raises :class:`~repro.errors.SanitizerError` if any vertex
      changed that is **not** in the claimed next frontier — a write
      that bypassed the main-thread merge — or if a claimed vertex was
      never actually written.

    Because the legitimate write set is exactly the claimed frontier,
    the check is independent of how the level function is implemented:
    a worker scribbling on shared state is caught even if it races the
    snapshot, since its target vertices are not claimed.
    """

    def __init__(self, graph: CSRGraph, source: int) -> None:
        n = graph.num_vertices
        if not 0 <= source < n:
            raise BFSError(f"source {source} out of range [0, {n})")
        self._snap_parent = np.empty(n, dtype=np.int64)
        self._snap_level = np.empty(n, dtype=np.int64)
        self._stamps: list[tuple[int, str]] = []
        self._lock = threading.Lock()
        self.levels_verified = 0
        self.writes_verified = 0

    def begin_level(self, parent: np.ndarray, level: np.ndarray) -> None:
        """Snapshot the maps before the level's kernels run."""
        np.copyto(self._snap_parent, parent)
        np.copyto(self._snap_level, level)
        self._stamps.clear()

    def stamp_chunk(self, note: str = "") -> None:
        """Record that the calling thread processed one work chunk."""
        with self._lock:
            self._stamps.append((threading.get_ident(), note))

    def verify_level(
        self,
        depth: int,
        parent: np.ndarray,
        level: np.ndarray,
        claimed: np.ndarray,
    ) -> None:
        """Check that this level's writes are exactly the claimed set."""
        claimed = np.sort(np.asarray(claimed, dtype=np.int64))
        threads = sorted({tid for tid, _ in self._stamps})
        for name, current, snapshot in (
            ("parent", parent, self._snap_parent),
            ("level", level, self._snap_level),
        ):
            changed = np.flatnonzero(current != snapshot)
            rogue = np.setdiff1d(changed, claimed)
            if rogue.size:
                raise SanitizerError(
                    f"{rogue.size} write(s) to the {name} map outside "
                    f"the claimed next frontier at depth {depth} — a "
                    "cross-thread write bypassed the main-thread merge "
                    f"(worker threads this level: {threads})",
                    level=depth,
                    vertices=tuple(rogue[:16]),
                )
            unwritten = np.setdiff1d(claimed, changed)
            if unwritten.size:
                raise SanitizerError(
                    f"{unwritten.size} claimed vertex(es) never written "
                    f"to the {name} map at depth {depth}",
                    level=depth,
                    vertices=tuple(unwritten[:16]),
                )
            self.writes_verified += int(changed.size)
        self.levels_verified += 1

    def summary(self) -> str:
        """One-line report for a clean run."""
        return (
            f"race tracker: {self.levels_verified} levels, "
            f"{self.writes_verified} writes verified, 0 rogue writes"
        )
