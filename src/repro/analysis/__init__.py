"""Static analysis and runtime sanitizing for the reproduction.

Four coordinated correctness tools (see ``docs/static_analysis.md``):

* :mod:`repro.analysis.lint` — a dependency-free AST rule engine with
  codebase-specific rules (``RPR001`` … ``RPR014``) and line-level
  ``# repro: noqa[RULE]`` suppression; the repo lints itself as a
  tier-1 test.  Rules ``RPR010+`` are *deep* (dataflow) rules that run
  under ``repro-bfs lint --deep``.
* :mod:`repro.analysis.dataflow` / :mod:`repro.analysis.effects` /
  :mod:`repro.analysis.races` — an intraprocedural abstract
  interpreter (dtype/shape lattice, workspace alias analysis), per-
  function read/write/escape effect summaries, and a lockset-style
  static race detector for the parallel BFS worker closures.
* :mod:`repro.analysis.callgraph` / :mod:`repro.analysis.program` —
  whole-program analysis: a project-wide call graph with import-aware
  name resolution and method dispatch, a worklist *fixpoint* that
  propagates effects through arbitrary call depth, and five
  whole-program rules (``RPR015`` … ``RPR019``) covering resource
  lifecycle, interprocedural workspace escapes, cross-module worker
  writes, ownership gating and hot-path call cycles.  Exposed as
  ``repro-bfs callgraph`` and folded into ``lint --deep``.
* :mod:`repro.analysis.typestate` — typestate & protocol verification:
  a declarative registry of protocol state machines (live-channel
  handshake, ``ChannelExporter``, ``Collector``, ``FlightRecorder``,
  ``BFSWorkspace``, ``ParallelBFS``) plus an abstract interpreter that
  checks each handle's lifecycle along the call graph.  Five more
  ``lint --deep`` rules (``RPR022`` … ``RPR026``) and the machinery
  behind the dynamic twin (:class:`repro.obs.live.ProtocolMonitor`,
  strict capture conformance).  Exposed as ``repro-bfs protocols``.
* :mod:`repro.analysis.sanitizer` — an opt-in runtime harness
  (``sanitize=True`` on the BFS engines) that freezes CSR arrays during
  traversal and checks per-level invariants, raising structured
  :class:`~repro.errors.SanitizerError` on corruption; the parallel
  engine additionally supports ``sanitize="race"`` write-tracking via
  :class:`RaceTracker`.
* :mod:`repro.analysis.units` — dimensional analysis that re-executes
  the cost model with unit-tagged quantities so its output provably
  reduces to seconds.

Exposed on the CLI as ``repro-bfs lint`` (``--deep``),
``repro-bfs dataflow`` and ``repro-bfs sanitize``.
"""

from repro.analysis.lint import (
    DIAGNOSTIC_RULE,
    RULES,
    ModuleContext,
    Rule,
    Violation,
    changed_python_files,
    deep_rule_codes,
    format_json,
    format_text,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.sanitizer import RaceTracker, Sanitizer, frozen_arrays
from repro.analysis.units import (
    BYTES,
    DIMENSIONLESS,
    EDGES,
    OPS,
    SECONDS,
    VERTICES,
    Quantity,
    Unit,
    check_cost_model,
)

# Importing the rule modules registers RPR001..RPR026 in RULES.
from repro.analysis import dataflow as _dataflow  # noqa: F401
from repro.analysis import program as _program  # noqa: F401
from repro.analysis import races as _races  # noqa: F401
from repro.analysis import rules as _rules  # noqa: F401
from repro.analysis.typestate import rules as _typestate_rules  # noqa: F401
from repro.analysis.callgraph import (
    Project,
    SummaryCache,
    build_project,
    project_from_sources,
)
from repro.analysis.dataflow import (
    AbstractValue,
    DataflowReport,
    analyze,
    promote,
)
from repro.analysis.effects import (
    FunctionEffects,
    format_effects,
    function_effects,
    module_effects,
    propagate,
    propagate_one_level,
)
from repro.analysis.program import program_report
from repro.analysis.typestate import (
    PROTOCOLS,
    ProtocolSpec,
    TypestateAnalysis,
    get_protocol,
    typestate_report,
)

__all__ = [
    "RULES",
    "Rule",
    "Violation",
    "ModuleContext",
    "lint_source",
    "lint_file",
    "lint_paths",
    "deep_rule_codes",
    "changed_python_files",
    "DIAGNOSTIC_RULE",
    "format_text",
    "format_json",
    "Project",
    "SummaryCache",
    "build_project",
    "project_from_sources",
    "program_report",
    "PROTOCOLS",
    "ProtocolSpec",
    "TypestateAnalysis",
    "get_protocol",
    "typestate_report",
    "AbstractValue",
    "DataflowReport",
    "analyze",
    "promote",
    "FunctionEffects",
    "function_effects",
    "module_effects",
    "propagate",
    "propagate_one_level",
    "format_effects",
    "Sanitizer",
    "RaceTracker",
    "frozen_arrays",
    "Unit",
    "Quantity",
    "DIMENSIONLESS",
    "EDGES",
    "VERTICES",
    "BYTES",
    "SECONDS",
    "OPS",
    "check_cost_model",
]
