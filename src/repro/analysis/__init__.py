"""Static analysis and runtime sanitizing for the reproduction.

Three coordinated correctness tools (see ``docs/static_analysis.md``):

* :mod:`repro.analysis.lint` — a dependency-free AST rule engine with
  codebase-specific rules (``RPR001`` … ``RPR007``) and line-level
  ``# repro: noqa[RULE]`` suppression; the repo lints itself as a
  tier-1 test.
* :mod:`repro.analysis.sanitizer` — an opt-in runtime harness
  (``sanitize=True`` on the BFS engines) that freezes CSR arrays during
  traversal and checks per-level invariants, raising structured
  :class:`~repro.errors.SanitizerError` on corruption.
* :mod:`repro.analysis.units` — dimensional analysis that re-executes
  the cost model with unit-tagged quantities so its output provably
  reduces to seconds.

Exposed on the CLI as ``repro-bfs lint`` and ``repro-bfs sanitize``.
"""

from repro.analysis.lint import (
    RULES,
    ModuleContext,
    Rule,
    Violation,
    format_json,
    format_text,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.sanitizer import Sanitizer, frozen_arrays
from repro.analysis.units import (
    BYTES,
    DIMENSIONLESS,
    EDGES,
    OPS,
    SECONDS,
    VERTICES,
    Quantity,
    Unit,
    check_cost_model,
)

# Importing the rules module registers RPR001..RPR007 in RULES.
from repro.analysis import rules as _rules  # noqa: F401

__all__ = [
    "RULES",
    "Rule",
    "Violation",
    "ModuleContext",
    "lint_source",
    "lint_file",
    "lint_paths",
    "format_text",
    "format_json",
    "Sanitizer",
    "frozen_arrays",
    "Unit",
    "Quantity",
    "DIMENSIONLESS",
    "EDGES",
    "VERTICES",
    "BYTES",
    "SECONDS",
    "OPS",
    "check_cost_model",
]
