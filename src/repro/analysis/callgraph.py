"""Whole-program call-graph construction and interprocedural fixpoint
effect propagation.

PR 5's deep tier is intraprocedural: :mod:`repro.analysis.effects`
summarizes one function at a time and propagates effects within one
module only.  This module lifts those summaries to the whole program:

1. **Extraction** (per module, cacheable): parse each file once and
   record an import table, the class/method layout, per-function
   :class:`~repro.analysis.effects.FunctionEffects` base summaries,
   thread-pool dispatch sites, resource acquisitions
   (``ParallelBFS()``, executors, ``serve(...)``) and a lightweight
   receiver-typing environment.  Records are keyed by the file's
   SHA-256, so unchanged files are never re-analyzed
   (:class:`SummaryCache` persists them across runs).
2. **Resolution**: every recorded call site — bare names *and* dotted
   spellings like ``ws.begin`` or ``topdown.claim_first_writer`` — is
   resolved against the import tables, module function tables and a
   receiver-type heuristic (parameter annotations, the ``ws`` /
   ``workspace`` / ``graph`` naming conventions the dataflow tier
   already seeds, and locals assigned from a known constructor).
   Method dispatch walks base classes.  Unresolved callees stay
   ``None`` and are assumed effect-free and non-raising — the same
   optimism the intramodule engine documents.
3. **Fixpoint**: a worklist iterates over the resolved edges until
   per-function writes/escapes/raises/workspace-write facts stop
   changing.  The lattice is the finite powerset of names mentioned in
   the program and every transfer is monotone, so the iteration
   terminates; recursion (direct or mutual) simply converges, and a
   generous round cap widens defensively.

The resulting :class:`Project` answers the queries the whole-program
rules (:mod:`repro.analysis.program`, RPR015–RPR019) and the
``repro-bfs callgraph`` CLI need: ``who_writes("workspace.parent")``,
transitive reachability, strongly-connected components through
hot-path modules, and DOT/JSON exports.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis import effects as fx
from repro.analysis.lint import is_hot_path
from repro.errors import CallGraphError

__all__ = [
    "CallEdge",
    "FunctionInfo",
    "Acquisition",
    "ModuleRecord",
    "Project",
    "SummaryCache",
    "build_project",
    "project_from_sources",
    "edge_bindings",
]

_OWNED_RE = re.compile(r"#\s*repro:\s*owned\[", re.IGNORECASE)

#: Constructors that acquire a joinable/closeable resource (RPR015).
RESOURCE_CTORS = frozenset(
    {"ParallelBFS", "ThreadPoolExecutor", "ProcessPoolExecutor",
     "WorkspacePool"}
)
#: Factory functions returning a resource that must be closed.
RESOURCE_FACTORIES = frozenset({"serve"})
#: Methods that release any of the above.
CLOSE_METHODS = frozenset({"close", "shutdown", "server_close"})

#: Receiver-name conventions mapped to class *bare* names; only applied
#: when the project actually defines the class (mirrors the seeding
#: conventions in repro.analysis.dataflow).
_RECEIVER_CONVENTIONS = {
    "ws": "BFSWorkspace",
    "workspace": "BFSWorkspace",
    "graph": "CSRGraph",
    "bitmap": "Bitmap",
}

_DISPATCH_ATTRS = frozenset({"map", "submit"})
_POOL_NAME_HINTS = ("pool", "executor")

#: Fixpoint safety valve; the lattice is finite so this is never the
#: terminating condition on real input.
_MAX_ROUNDS_PER_FUNCTION = 50


@dataclass(frozen=True)
class Acquisition:
    """One ``name = Ctor(...)`` resource acquisition inside a function.

    ``risks`` are the statements between acquisition and release that
    may raise: explicit ``raise`` statements (``raw == "raise"``) and
    call sites, judged against the fixpoint ``raises`` facts at rule
    time.  ``finally_spans`` are ``(start, end)`` line ranges of try
    bodies whose ``finally`` releases the resource.
    """

    var: str
    ctor: str
    line: int
    col: int
    closed: bool
    escapes: bool
    finally_spans: tuple[tuple[int, int], ...]
    close_lines: tuple[int, ...]
    risks: tuple[tuple[str, int, int], ...]


@dataclass(frozen=True)
class FunctionInfo:
    """Static facts about one function definition (phase-1 product)."""

    qname: str
    module: str
    path: str
    name: str
    cls: str | None
    line: int
    end_line: int
    is_public: bool
    hot: bool
    owned_gated: bool
    summary: fx.FunctionEffects
    locals: frozenset[str]
    scratch: frozenset[str]
    types: tuple[tuple[str, str], ...]
    acquisitions: tuple[Acquisition, ...]
    temp_ctors: tuple[tuple[str, int, int], ...]
    dispatch_targets: tuple[tuple[str, int, int], ...]


@dataclass(frozen=True)
class ClassInfo:
    name: str
    qname: str
    module: str
    bases: tuple[str, ...]
    methods: tuple[tuple[str, str], ...]

    def method(self, attr: str) -> str | None:
        for bare, qname in self.methods:
            if bare == attr:
                return qname
        return None


@dataclass(frozen=True)
class ModuleRecord:
    """Everything phase 1 extracts from one file (hash-cacheable)."""

    module: str
    path: str
    sha: str
    imports: tuple[tuple[str, str], ...]
    classes: tuple[ClassInfo, ...]
    functions: tuple[FunctionInfo, ...]
    owned_lines: frozenset[int]


@dataclass(frozen=True)
class CallEdge:
    """One resolved (or unresolved) call site in the program graph."""

    caller: str
    callee: str | None
    raw: str
    line: int
    col: int
    receiver: str | None
    args: tuple[str | None, ...]
    kwargs: tuple[tuple[str, str], ...]
    dispatch: bool = False


def edge_bindings(
    edge: CallEdge, callee_params: Sequence[str]
) -> list[tuple[str, str]]:
    """``(callee_param, caller_name)`` pairs for one resolved edge.

    A method call binds the receiver variable to ``self``; positional
    arguments then map onto the remaining parameters.
    """
    bindings: list[tuple[str, str]] = []
    params = list(callee_params)
    if edge.receiver is not None and params and params[0] == "self":
        bindings.append(("self", edge.receiver))
        params = params[1:]
    for pos, arg in enumerate(edge.args):
        if arg is not None and pos < len(params):
            bindings.append((params[pos], arg))
    for kw, arg in edge.kwargs:
        bindings.append((kw, arg))
    return bindings


# -- phase 1: per-module extraction ---------------------------------------


def module_name_for(path: Path) -> str:
    """Dotted module name, walking up while ``__init__.py`` exists.

    Files outside any package (fixtures, scratch sources) fall back to
    their stem, so a single-file project still has stable names.
    """
    parts: list[str] = []
    if path.stem != "__init__":
        parts.append(path.stem)
    cur = path.parent
    try:
        while (cur / "__init__.py").exists():
            parts.append(cur.name)
            parent = cur.parent
            if parent == cur:
                break
            cur = parent
    except OSError:
        pass
    return ".".join(reversed(parts)) or path.stem


def _import_table(tree: ast.Module, module: str) -> dict[str, str]:
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                table[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                pkg_parts = module.split(".")[: -node.level]
                base = ".".join(pkg_parts)
            else:
                base = ""
            if node.module:
                base = f"{base}.{node.module}" if base else node.module
            for alias in node.names:
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    return table


def _annotation_types(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, str]:
    types: dict[str, str] = {}
    a = fn.args
    for p in (*a.posonlyargs, *a.args, *a.kwonlyargs):
        ann = fx._annotation_name(p.annotation)
        if ann:
            types[p.arg] = ann
    return types


def _ctor_locals(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, str]:
    """Locals assigned directly from a named constructor/function call."""
    out: dict[str, str] = {}
    for node in fx._walk_own(fn):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            raw = fx._dotted_name(node.value.func)
            if raw:
                out[node.targets[0].id] = raw
    return out


def _scratch_locals(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Locals holding per-thread workspace scratch (``ws.buffer(...)``)."""
    scratch: set[str] = set()
    for node in fx._walk_own(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            call = node.value
            if isinstance(call.func, ast.Attribute) and call.func.attr == "buffer":
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        scratch.add(tgt.id)
    return scratch


def _looks_like_pool(node: ast.expr) -> bool:
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is None:
        return False
    lowered = name.lower()
    return any(hint in lowered for hint in _POOL_NAME_HINTS)


def _dispatch_targets(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[tuple[str, int, int]]:
    """Worker names handed to a pool/thread from inside ``fn``."""
    out: list[tuple[str, int, int]] = []
    for node in fx._walk_own(fn):
        if not isinstance(node, ast.Call):
            continue
        f = node.func
        if (
            isinstance(f, ast.Attribute)
            and f.attr in _DISPATCH_ATTRS
            and _looks_like_pool(f.value)
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            out.append((node.args[0].id, node.lineno, node.col_offset))
        elif isinstance(f, ast.Name) and f.id == "Thread":
            for kw in node.keywords:
                if kw.arg == "target" and isinstance(kw.value, ast.Name):
                    out.append((kw.value.id, node.lineno, node.col_offset))
    return out


def _is_resource_call(call: ast.Call) -> str | None:
    raw = fx._dotted_name(call.func)
    if raw is None:
        return None
    leaf = raw.rsplit(".", 1)[-1]
    if leaf in RESOURCE_CTORS or leaf in RESOURCE_FACTORIES:
        return raw
    return None


def _extract_acquisitions(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[tuple[Acquisition, ...], tuple[tuple[str, int, int], ...]]:
    """Resource acquisitions and unbound resource temporaries in ``fn``."""
    own = fx._walk_own(fn)
    sanctioned: set[int] = set()
    for node in own:
        if isinstance(node, ast.Assign):
            sanctioned.add(id(node.value))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                sanctioned.add(id(item.context_expr))
        elif isinstance(node, ast.Return) and node.value is not None:
            sanctioned.add(id(node.value))
            if isinstance(node.value, ast.Tuple):
                sanctioned.update(id(e) for e in node.value.elts)
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                sanctioned.add(id(node.value))
        elif isinstance(node, ast.Call):
            sanctioned.update(id(a) for a in node.args)
            sanctioned.update(id(kw.value) for kw in node.keywords)

    temps: list[tuple[str, int, int]] = []
    binds: dict[str, tuple[str, int, int]] = {}
    for node in own:
        if isinstance(node, ast.Call):
            raw = _is_resource_call(node)
            if raw and id(node) not in sanctioned:
                temps.append((raw, node.lineno, node.col_offset))
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            raw = _is_resource_call(node.value)
            if raw:
                binds[node.targets[0].id] = (
                    raw, node.lineno, node.col_offset
                )
    if not binds:
        return (), tuple(temps)

    # try/finally structure: spans of try bodies keyed by the finally
    # statements that cover them.
    try_spans: list[tuple[tuple[int, int], list[ast.stmt]]] = []
    for node in own:
        if isinstance(node, ast.Try) and node.finalbody:
            start = node.body[0].lineno
            end = max(
                getattr(s, "end_lineno", s.lineno) for s in node.body
            )
            try_spans.append(((start, end), node.finalbody))

    def close_calls(var: str) -> list[tuple[int, bool, tuple[int, int] | None]]:
        out = []
        for node in own:
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in CLOSE_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == var
            ):
                covered = None
                for span, finalbody in try_spans:
                    lo = finalbody[0].lineno
                    hi = max(
                        getattr(s, "end_lineno", s.lineno) for s in finalbody
                    )
                    if lo <= node.lineno <= hi:
                        covered = span
                        break
                out.append((node.lineno, covered is not None, covered))
        return out

    def var_escapes(var: str) -> bool:
        for node in own:
            if isinstance(node, ast.Return) and node.value is not None:
                if any(
                    isinstance(s, ast.Name) and s.id == var
                    for s in ast.walk(node.value)
                ):
                    return True
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                if node.value is not None and any(
                    isinstance(s, ast.Name) and s.id == var
                    for s in ast.walk(node.value)
                ):
                    return True
            elif isinstance(node, ast.Assign):
                if any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                ) and any(
                    isinstance(s, ast.Name) and s.id == var
                    for s in ast.walk(node.value)
                ):
                    return True
        # Passing the resource as a call argument is a *borrow*, not a
        # transfer — the callee's raises flow back through the fixpoint
        # and the acquirer still owns the close.
        return False

    acqs: list[Acquisition] = []
    for var, (ctor, line, col) in binds.items():
        closes = close_calls(var)
        first_close = min((ln for ln, _, _ in closes), default=None)
        finally_spans = tuple(
            span for _, in_finally, span in closes
            if in_finally and span is not None
        )
        risks: list[tuple[str, int, int]] = []
        for node in own:
            node_line = getattr(node, "lineno", 0)
            if node_line <= line:
                continue
            if first_close is not None and node_line >= first_close:
                continue
            if isinstance(node, ast.Raise):
                risks.append(("raise", node_line, node.col_offset))
            elif isinstance(node, ast.Call):
                raw = fx._dotted_name(node.func)
                if raw is None or raw.rsplit(".", 1)[-1] in CLOSE_METHODS:
                    continue
                risks.append((raw, node_line, node.col_offset))
        acqs.append(
            Acquisition(
                var=var,
                ctor=ctor,
                line=line,
                col=col,
                closed=bool(closes),
                escapes=var_escapes(var),
                finally_spans=finally_spans,
                close_lines=tuple(ln for ln, _, _ in closes),
                risks=tuple(risks),
            )
        )
    return tuple(acqs), tuple(temps)


def _owned_lines(source: str) -> frozenset[int]:
    """Lines carrying a real ``owned[...]`` *comment* annotation.

    Tokenize-based so a docstring or message string that merely talks
    about the annotation does not gate its function (the line-regex
    shortcut the intramodule tier uses is fine there because it only
    ever inspects write-statement lines).
    """
    out: set[int] = set()
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT and _OWNED_RE.search(tok.string):
                out.add(tok.start[0])
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for i, text in enumerate(source.splitlines(), 1):
            if _OWNED_RE.search(text):
                out.add(i)
    return frozenset(out)


def extract_module(path: str | Path, source: str) -> ModuleRecord:
    """Phase-1 extraction of one module (pure function of the source)."""
    p = Path(path)
    module = module_name_for(p)
    try:
        tree = ast.parse(source, filename=str(p))
    except SyntaxError as exc:
        raise CallGraphError(f"{p}: cannot parse: {exc}") from exc
    sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
    imports = _import_table(tree, module)
    owned = _owned_lines(source)
    import_names = frozenset(imports)
    ws_method_ids = fx._workspace_classes(tree)
    hot = is_hot_path(str(p))

    classes: list[ClassInfo] = []
    functions: list[FunctionInfo] = []

    def visit(body: Iterable[ast.stmt], prefix: tuple[str, ...],
              cls: str | None, nested: bool = False) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                cq = ".".join((module, *prefix, node.name))
                methods = tuple(
                    (s.name, f"{cq}.{s.name}")
                    for s in node.body
                    if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
                )
                bases = tuple(
                    b for b in (fx._dotted_name(x) for x in node.bases) if b
                )
                classes.append(
                    ClassInfo(
                        name=node.name,
                        qname=cq,
                        module=module,
                        bases=bases,
                        methods=methods,
                    )
                )
                visit(node.body, (*prefix, node.name), node.name, nested)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = ".".join((module, *prefix, node.name))
                summary = fx.function_effects(
                    node,
                    module_imports=import_names,
                    owned_lines=owned,
                    self_is_workspace=id(node) in ws_method_ids,
                )
                end_line = getattr(node, "end_lineno", node.lineno)
                types = dict(_annotation_types(node))
                for var, raw in _ctor_locals(node).items():
                    types.setdefault(var, raw)
                acqs, temps = _extract_acquisitions(node)
                functions.append(
                    FunctionInfo(
                        qname=qname,
                        module=module,
                        path=str(p),
                        name=node.name,
                        cls=cls,
                        line=node.lineno,
                        end_line=end_line,
                        is_public=not nested and all(
                            not part.startswith("_")
                            for part in qname.split(".")
                        ),
                        hot=hot,
                        owned_gated=any(
                            node.lineno <= ln <= end_line for ln in owned
                        ),
                        summary=summary,
                        locals=frozenset(fx._local_names(node)),
                        scratch=frozenset(_scratch_locals(node)),
                        types=tuple(sorted(types.items())),
                        acquisitions=acqs,
                        temp_ctors=temps,
                        dispatch_targets=tuple(_dispatch_targets(node)),
                    )
                )
                visit(node.body, (*prefix, node.name), None, True)

    visit(tree.body, (), None)
    return ModuleRecord(
        module=module,
        path=str(p),
        sha=sha,
        imports=tuple(sorted(imports.items())),
        classes=tuple(classes),
        functions=tuple(functions),
        owned_lines=owned,
    )


# -- record (de)serialization for the summary cache -----------------------


def _summary_to_dict(s: fx.FunctionEffects) -> dict:
    return {
        "name": s.name,
        "params": list(s.params),
        "reads": sorted(s.reads),
        "writes": sorted(s.writes),
        "escapes": sorted(s.escapes),
        "calls": [
            [c.callee, list(c.args), [list(kv) for kv in c.kwargs],
             c.line, c.col]
            for c in s.calls
        ],
        "line": s.line,
        "raises": s.raises,
        "ws_params": sorted(s.ws_params),
        "ws_writes": sorted(s.ws_writes),
        "returns_ws": s.returns_ws,
        "returns_calls": list(s.returns_calls),
    }


def _summary_from_dict(d: dict) -> fx.FunctionEffects:
    return fx.FunctionEffects(
        name=d["name"],
        params=tuple(d["params"]),
        reads=frozenset(d["reads"]),
        writes=frozenset(d["writes"]),
        escapes=frozenset(d["escapes"]),
        calls=tuple(
            fx.CallSite(
                callee=c[0],
                args=tuple(c[1]),
                kwargs=tuple((k, v) for k, v in c[2]),
                line=c[3],
                col=c[4],
            )
            for c in d["calls"]
        ),
        line=d["line"],
        raises=d["raises"],
        ws_params=frozenset(d["ws_params"]),
        ws_writes=frozenset(d["ws_writes"]),
        returns_ws=d["returns_ws"],
        returns_calls=tuple(d["returns_calls"]),
    )


def record_to_dict(rec: ModuleRecord) -> dict:
    return {
        "module": rec.module,
        "path": rec.path,
        "sha": rec.sha,
        "imports": [list(kv) for kv in rec.imports],
        "owned_lines": sorted(rec.owned_lines),
        "classes": [
            {
                "name": c.name,
                "qname": c.qname,
                "module": c.module,
                "bases": list(c.bases),
                "methods": [list(kv) for kv in c.methods],
            }
            for c in rec.classes
        ],
        "functions": [
            {
                "qname": f.qname,
                "module": f.module,
                "path": f.path,
                "name": f.name,
                "cls": f.cls,
                "line": f.line,
                "end_line": f.end_line,
                "is_public": f.is_public,
                "hot": f.hot,
                "owned_gated": f.owned_gated,
                "summary": _summary_to_dict(f.summary),
                "locals": sorted(f.locals),
                "scratch": sorted(f.scratch),
                "types": [list(kv) for kv in f.types],
                "acquisitions": [
                    {
                        "var": a.var,
                        "ctor": a.ctor,
                        "line": a.line,
                        "col": a.col,
                        "closed": a.closed,
                        "escapes": a.escapes,
                        "finally_spans": [list(s) for s in a.finally_spans],
                        "close_lines": list(a.close_lines),
                        "risks": [list(r) for r in a.risks],
                    }
                    for a in f.acquisitions
                ],
                "temp_ctors": [list(t) for t in f.temp_ctors],
                "dispatch_targets": [list(t) for t in f.dispatch_targets],
            }
            for f in rec.functions
        ],
    }


def record_from_dict(d: dict) -> ModuleRecord:
    try:
        return ModuleRecord(
            module=d["module"],
            path=d["path"],
            sha=d["sha"],
            imports=tuple((k, v) for k, v in d["imports"]),
            owned_lines=frozenset(d["owned_lines"]),
            classes=tuple(
                ClassInfo(
                    name=c["name"],
                    qname=c["qname"],
                    module=c["module"],
                    bases=tuple(c["bases"]),
                    methods=tuple((k, v) for k, v in c["methods"]),
                )
                for c in d["classes"]
            ),
            functions=tuple(
                FunctionInfo(
                    qname=f["qname"],
                    module=f["module"],
                    path=f["path"],
                    name=f["name"],
                    cls=f["cls"],
                    line=f["line"],
                    end_line=f["end_line"],
                    is_public=f["is_public"],
                    hot=f["hot"],
                    owned_gated=f["owned_gated"],
                    summary=_summary_from_dict(f["summary"]),
                    locals=frozenset(f["locals"]),
                    scratch=frozenset(f["scratch"]),
                    types=tuple((k, v) for k, v in f["types"]),
                    acquisitions=tuple(
                        Acquisition(
                            var=a["var"],
                            ctor=a["ctor"],
                            line=a["line"],
                            col=a["col"],
                            closed=a["closed"],
                            escapes=a["escapes"],
                            finally_spans=tuple(
                                (s[0], s[1]) for s in a["finally_spans"]
                            ),
                            close_lines=tuple(a["close_lines"]),
                            risks=tuple(
                                (r[0], r[1], r[2]) for r in a["risks"]
                            ),
                        )
                        for a in f["acquisitions"]
                    ),
                    temp_ctors=tuple(
                        (t[0], t[1], t[2]) for t in f["temp_ctors"]
                    ),
                    dispatch_targets=tuple(
                        (t[0], t[1], t[2]) for t in f["dispatch_targets"]
                    ),
                )
                for f in d["functions"]
            ),
        )
    except (KeyError, IndexError, TypeError) as exc:
        raise CallGraphError(f"malformed summary-cache record: {exc}") from exc


#: Version of the extraction/summary *semantics* (what the analyzer
#: computes from a module, independent of the record wire format).
#: Bump whenever extraction or summary rules change meaning — cache
#: entries written under another version are treated as misses, so a
#: rule upgrade can never be served stale summaries for unchanged
#: files.
ANALYSIS_VERSION = 2


def _cache_key(sha: str) -> str:
    """Cache key for one module: content hash + analysis version."""
    return f"{sha}:v{ANALYSIS_VERSION}"


class SummaryCache:
    """Per-module extraction records keyed by file SHA-256 plus the
    :data:`ANALYSIS_VERSION` of the analyzer that produced them.

    Re-running the whole-program pass only re-extracts files whose
    content hash changed (or whose cached record predates the current
    analysis version); everything else deserializes.  The on-disk
    format is a single JSON object ``{key: record}``.
    """

    SCHEMA = "repro.analysis.callgraph_cache/1"

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._records: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        if self.path is not None and self.path.exists():
            try:
                blob = json.loads(self.path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                raise CallGraphError(
                    f"{self.path}: unreadable summary cache: {exc}"
                ) from exc
            if blob.get("schema") != self.SCHEMA:
                raise CallGraphError(
                    f"{self.path}: summary cache schema "
                    f"{blob.get('schema')!r} != {self.SCHEMA!r}"
                )
            self._records = dict(blob.get("records", {}))

    def get(self, sha: str) -> ModuleRecord | None:
        raw = self._records.get(_cache_key(sha))
        if raw is None:
            self.misses += 1
            return None
        self.hits += 1
        return record_from_dict(raw)

    def put(self, rec: ModuleRecord) -> None:
        self._records[_cache_key(rec.sha)] = record_to_dict(rec)

    def save(self) -> None:
        if self.path is None:
            raise CallGraphError("summary cache has no backing path")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema": self.SCHEMA, "records": self._records}
        self.path.write_text(
            json.dumps(payload, indent=None, sort_keys=True) + "\n",
            encoding="utf-8",
        )


#: In-process extraction cache shared by every Project built in one
#: interpreter (the lint self-tests build the same package repeatedly).
_MEMORY_CACHE: dict[str, ModuleRecord] = {}


# -- phase 2: resolution + fixpoint ---------------------------------------


class Project:
    """A resolved whole-program view: functions, edges, fixpoint facts."""

    def __init__(self, records: Sequence[ModuleRecord]) -> None:
        self.modules: dict[str, ModuleRecord] = {}
        for rec in records:
            prior = self.modules.get(rec.module)
            if prior is not None and prior.path != rec.path:
                # Same stem outside a package (two fixture files named
                # alike): qualify by path stem collision index.
                alias = f"{rec.module}#{len(self.modules)}"
                rec = replace(rec, module=alias)
            self.modules[rec.module] = rec
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._classes_by_bare: dict[str, list[str]] = {}
        for rec in self.modules.values():
            for info in rec.functions:
                self.functions[info.qname] = info
            for ci in rec.classes:
                self.classes[ci.qname] = ci
                self._classes_by_bare.setdefault(ci.name, []).append(ci.qname)
        self.edges: list[CallEdge] = []
        self.workers: dict[str, list[str]] = {}
        self._resolve_edges()
        self._edges_by_caller: dict[str, list[CallEdge]] = {}
        for edge in self.edges:
            self._edges_by_caller.setdefault(edge.caller, []).append(edge)
        self.summaries: dict[str, fx.FunctionEffects] = {}
        self.rounds = 0
        self._fixpoint()

    # -- resolution --

    def _resolve_class_name(self, raw: str, module: str) -> str | None:
        rec = self.modules.get(module)
        leaf = raw.rsplit(".", 1)[-1]
        if rec is not None:
            imports = dict(rec.imports)
            if raw in imports and imports[raw] in self.classes:
                return imports[raw]
            candidate = f"{module}.{raw}"
            if candidate in self.classes:
                return candidate
        qnames = self._classes_by_bare.get(leaf, [])
        if len(qnames) == 1:
            return qnames[0]
        return None

    def _lookup_method(
        self, class_qname: str, attr: str, depth: int = 0
    ) -> str | None:
        if depth > 8:
            return None
        ci = self.classes.get(class_qname)
        if ci is None:
            return None
        found = ci.method(attr)
        if found is not None:
            return found
        for base_raw in ci.bases:
            base_q = self._resolve_class_name(base_raw, ci.module)
            if base_q is not None and base_q != class_qname:
                found = self._lookup_method(base_q, attr, depth + 1)
                if found is not None:
                    return found
        return None

    def _receiver_class(self, info: FunctionInfo, var: str) -> str | None:
        if var == "self" and info.cls is not None:
            return f"{info.module}.{info.cls}"
        types = dict(info.types)
        raw = types.get(var)
        if raw is not None:
            resolved = self._resolve_class_name(raw, info.module)
            if resolved is not None:
                return resolved
        conv = _RECEIVER_CONVENTIONS.get(var)
        if conv is not None:
            qnames = self._classes_by_bare.get(conv, [])
            if len(qnames) == 1:
                return qnames[0]
        return None

    def _resolve_plain(self, info: FunctionInfo, name: str) -> str | None:
        # Innermost enclosing scope first: nested defs, then siblings up
        # the qname chain, then module level.
        parts = info.qname.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join((*parts[:cut], name))
            if candidate in self.functions:
                return candidate
        rec = self.modules.get(info.module)
        if rec is not None:
            imports = dict(rec.imports)
            target = imports.get(name)
            if target is not None:
                if target in self.functions:
                    return target
                if target in self.classes:
                    init = self._lookup_method(target, "__init__")
                    return init
        cls_q = self._resolve_class_name(name, info.module)
        if cls_q is not None:
            return self._lookup_method(cls_q, "__init__")
        return None

    def _resolve_call(
        self, info: FunctionInfo, raw: str
    ) -> tuple[str | None, str | None]:
        """``(callee_qname, receiver_var)`` for one call spelling."""
        if "." not in raw:
            return self._resolve_plain(info, raw), None
        base, attr = raw.rsplit(".", 1)
        if "." in base:
            # a.b.c(...): resolvable only when `a.b` spells a module.
            root = base.split(".", 1)[0]
            rec = self.modules.get(info.module)
            imports = dict(rec.imports) if rec is not None else {}
            prefix = imports.get(root)
            if prefix is not None:
                resolved_mod = base.replace(root, prefix, 1)
                candidate = f"{resolved_mod}.{attr}"
                if candidate in self.functions:
                    return candidate, None
            return None, None
        rec = self.modules.get(info.module)
        imports = dict(rec.imports) if rec is not None else {}
        target = imports.get(base)
        if target is not None and target in self.modules:
            candidate = f"{target}.{attr}"
            if candidate in self.functions:
                return candidate, None
        if target is not None:
            candidate = f"{target}.{attr}"
            if candidate in self.functions:
                return candidate, None
            if target in self.classes:
                method = self._lookup_method(target, attr)
                if method is not None:
                    return method, base
        cls_q = self._receiver_class(info, base)
        if cls_q is not None:
            method = self._lookup_method(cls_q, attr)
            if method is not None:
                return method, base
        return None, None

    def _resolve_edges(self) -> None:
        for info in self.functions.values():
            for call in info.summary.calls:
                callee, receiver = self._resolve_call(info, call.callee)
                self.edges.append(
                    CallEdge(
                        caller=info.qname,
                        callee=callee,
                        raw=call.callee,
                        line=call.line,
                        col=call.col,
                        receiver=receiver,
                        args=call.args,
                        kwargs=call.kwargs,
                    )
                )
            for worker_raw, line, col in info.dispatch_targets:
                worker_q = self._resolve_plain(info, worker_raw)
                if worker_q is not None:
                    self.workers.setdefault(worker_q, []).append(info.qname)
                self.edges.append(
                    CallEdge(
                        caller=info.qname,
                        callee=worker_q,
                        raw=worker_raw,
                        line=line,
                        col=col,
                        receiver=None,
                        args=(),
                        kwargs=(),
                        dispatch=True,
                    )
                )

    # -- fixpoint --

    def _fixpoint(self) -> None:
        base = {q: info.summary for q, info in self.functions.items()}
        state = {
            q: {
                "writes": set(s.writes),
                "escapes": set(s.escapes),
                "raises": s.raises,
                "ws_writes": set(s.ws_writes),
                "returns_ws": s.returns_ws,
            }
            for q, s in base.items()
        }
        callers_of: dict[str, set[str]] = {}
        for edge in self.edges:
            if edge.callee is not None:
                callers_of.setdefault(edge.callee, set()).add(edge.caller)
        worklist: deque[str] = deque(self.functions)
        queued = set(worklist)
        cap = _MAX_ROUNDS_PER_FUNCTION * max(1, len(self.functions))
        rounds = 0
        while worklist and rounds < cap:
            rounds += 1
            q = worklist.popleft()
            queued.discard(q)
            info = self.functions[q]
            s = state[q]
            bs = base[q]
            changed = False
            for edge in self._edges_by_caller.get(q, ()):
                if edge.callee is None:
                    continue
                callee_state = state[edge.callee]
                callee_base = base[edge.callee]
                if callee_state["raises"] and not s["raises"]:
                    # A dispatched worker's exception surfaces when the
                    # pool result is consumed, so dispatch edges carry
                    # the raises fact too.
                    s["raises"] = True
                    changed = True
                if edge.dispatch:
                    continue
                bindings = edge_bindings(edge, callee_base.params)
                ws_bound = False
                for param, arg in bindings:
                    if param in callee_state["writes"] and arg not in s["writes"]:
                        s["writes"].add(arg)
                        changed = True
                    if (
                        param in callee_state["escapes"]
                        and arg not in s["escapes"]
                    ):
                        s["escapes"].add(arg)
                        changed = True
                    if param in callee_base.ws_params and (
                        arg in bs.ws_params or arg in fx.WS_PARAM_NAMES
                    ):
                        ws_bound = True
                if ws_bound and callee_state["ws_writes"]:
                    before = len(s["ws_writes"])
                    s["ws_writes"].update(callee_state["ws_writes"])
                    if len(s["ws_writes"]) != before:
                        changed = True
                if (
                    not s["returns_ws"]
                    and callee_state["returns_ws"]
                    and edge.raw in bs.returns_calls
                    and ws_bound
                ):
                    s["returns_ws"] = True
                    changed = True
            if changed:
                for caller in callers_of.get(q, ()):
                    if caller not in queued:
                        worklist.append(caller)
                        queued.add(caller)
        self.rounds = rounds
        self.summaries = {
            q: replace(
                base[q],
                writes=frozenset(state[q]["writes"]),
                escapes=frozenset(state[q]["escapes"]),
                raises=state[q]["raises"],
                ws_writes=frozenset(state[q]["ws_writes"]),
                returns_ws=state[q]["returns_ws"],
            )
            for q in self.functions
        }

    # -- queries --

    def who_writes(self, target: str) -> list[str]:
        """Functions whose fixpoint summary writes ``target``.

        ``workspace.<attr>`` matches the canonical dotted workspace
        locations; a plain name matches parameter/free-variable writes.
        """
        if target.startswith("workspace."):
            return sorted(
                q for q, s in self.summaries.items()
                if target in s.ws_writes
            )
        return sorted(
            q for q, s in self.summaries.items() if target in s.writes
        )

    def reachable_from(self, qname: str) -> set[str]:
        """Transitive callees of ``qname`` (resolved edges only)."""
        if qname not in self.functions:
            raise CallGraphError(f"unknown function {qname!r}")
        seen: set[str] = set()
        stack = [qname]
        while stack:
            cur = stack.pop()
            for edge in self._edges_by_caller.get(cur, ()):
                if edge.callee is not None and edge.callee not in seen:
                    seen.add(edge.callee)
                    stack.append(edge.callee)
        return seen

    def callers_of(self, qname: str) -> set[str]:
        """Transitive callers of ``qname`` (reverse reachability)."""
        if qname not in self.functions:
            raise CallGraphError(f"unknown function {qname!r}")
        reverse: dict[str, set[str]] = {}
        for edge in self.edges:
            if edge.callee is not None:
                reverse.setdefault(edge.callee, set()).add(edge.caller)
        seen: set[str] = set()
        stack = [qname]
        while stack:
            cur = stack.pop()
            for caller in reverse.get(cur, ()):
                if caller not in seen:
                    seen.add(caller)
                    stack.append(caller)
        return seen

    def cycles(self) -> list[list[str]]:
        """Non-trivial strongly-connected components (Tarjan), plus
        self-loops, over resolved call edges."""
        adjacency: dict[str, list[str]] = {}
        for edge in self.edges:
            if edge.callee is not None:
                adjacency.setdefault(edge.caller, []).append(edge.callee)
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        out: list[list[str]] = []

        def strongconnect(v: str) -> None:
            # Iterative Tarjan: recursion depth equals call-chain depth,
            # which an adversarial fixture could overflow.
            work = [(v, 0)]
            while work:
                node, pi = work[-1]
                if pi == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                neighbours = adjacency.get(node, [])
                for i in range(pi, len(neighbours)):
                    w = neighbours[i]
                    if w not in index:
                        work[-1] = (node, i + 1)
                        work.append((w, 0))
                        recurse = True
                        break
                    if w in on_stack:
                        low[node] = min(low[node], index[w])
                if recurse:
                    continue
                if low[node] == index[node]:
                    comp: list[str] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    if len(comp) > 1 or any(
                        e.callee == node
                        for e in self._edges_by_caller.get(node, ())
                    ):
                        out.append(sorted(comp))
                work.pop()
                if work:
                    parent, _ = work[-1]
                    low[parent] = min(low[parent], low[node])

        for v in self.functions:
            if v not in index:
                strongconnect(v)
        return out

    def stats(self) -> dict:
        resolved = sum(1 for e in self.edges if e.callee is not None)
        return {
            "modules": len(self.modules),
            "functions": len(self.functions),
            "edges": len(self.edges),
            "resolved_edges": resolved,
            "workers": len(self.workers),
            "fixpoint_rounds": self.rounds,
        }

    # -- exports --

    def to_dot(self) -> str:
        """GraphViz digraph: one node per function, clustered by module;
        hot-path nodes are shaded, dispatch edges dashed."""
        lines = ["digraph callgraph {", '  rankdir="LR";',
                 '  node [shape=box, fontsize=9];']
        for mi, (mod, rec) in enumerate(sorted(self.modules.items())):
            lines.append(f'  subgraph "cluster_{mi}" {{')
            lines.append(f'    label="{mod}";')
            for info in rec.functions:
                style = ', style=filled, fillcolor="lightsalmon"' \
                    if info.hot else ""
                lines.append(
                    f'    "{info.qname}" [label="{info.name}"{style}];'
                )
            lines.append("  }")
        for edge in self.edges:
            if edge.callee is None:
                continue
            style = ' [style=dashed, label="dispatch"]' if edge.dispatch else ""
            lines.append(f'  "{edge.caller}" -> "{edge.callee}"{style};')
        lines.append("}")
        return "\n".join(lines) + "\n"

    def to_json(self, *, summaries: bool = False) -> str:
        payload: dict = {
            "schema": "repro.analysis.callgraph/1",
            "stats": self.stats(),
            "functions": sorted(self.functions),
            "edges": [
                {
                    "caller": e.caller,
                    "callee": e.callee,
                    "raw": e.raw,
                    "line": e.line,
                    "dispatch": e.dispatch,
                }
                for e in self.edges
            ],
        }
        if summaries:
            payload["summaries"] = {
                q: _summary_to_dict(s)
                for q, s in sorted(self.summaries.items())
            }
        return json.dumps(payload, indent=2, sort_keys=False)

    def format_summaries(self) -> str:
        """Human-readable fixpoint summaries, one function per line."""
        return fx.format_effects(
            {q: self.summaries[q] for q in sorted(self.summaries)}
        )


def project_from_sources(
    pairs: Iterable[tuple[str | Path, str]]
) -> Project:
    """Build a project from in-memory ``(path, source)`` pairs.

    Unparsable sources raise :class:`CallGraphError`; this entry point
    is for tests and single-file analysis where the caller already
    validated the source.
    """
    return Project([extract_module(p, src) for p, src in pairs])


def build_project(
    files: Iterable[str | Path],
    *,
    cache: SummaryCache | None = None,
) -> Project:
    """Build a whole-program project from files on disk.

    Files that cannot be read, decoded or parsed are skipped — the lint
    driver reports them separately as structured diagnostics; the graph
    is built over everything that parses.  Extraction records come from
    ``cache`` (or an in-process memory cache) on content-hash hits.
    """
    records: list[ModuleRecord] = []
    for entry in files:
        p = Path(entry)
        try:
            source = p.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
        rec = _MEMORY_CACHE.get(_cache_key(sha))
        if rec is None and cache is not None:
            rec = cache.get(sha)
        if rec is None or rec.path != str(p):
            try:
                rec = extract_module(p, source)
            except CallGraphError:
                continue
        _MEMORY_CACHE[_cache_key(sha)] = rec
        if cache is not None:
            cache.put(rec)
        records.append(rec)
    if not records:
        raise CallGraphError("no parsable Python inputs for the call graph")
    return Project(records)
