"""Lockset-style static race detection for the parallel BFS datapath.

The parallel engine's documented ownership protocol
(:mod:`repro.bfs.parallel`) is:

* worker closures dispatched through a thread pool may **read** shared
  arrays (``parent``, ``level``, CSR storage, the frontier) freely;
* a worker may write only (a) arrays it allocated locally, (b) its own
  per-thread workspace scratch (``workspace.buffer(...)`` is keyed by
  thread id), and (c) the disjoint chunk it was handed as a parameter
  (``np.array_split`` partitions are non-overlapping views);
* every write to the shared ``parent``/``level`` maps happens on the
  main thread, after the pool has joined, via the first-writer claim.

Two deep rules enforce this statically:

========  ==============================================================
RPR013    a worker function dispatched via ``pool.map``/``executor.
          submit``/``Thread(target=...)`` writes a closure-captured
          shared array directly (subscript store, ``fill``, ``out=``)
RPR014    a worker calls a same-module function whose propagated
          effect summary (:mod:`repro.analysis.effects`) writes a
          parameter bound to a closure-captured shared array
========  ==============================================================

A deliberate per-line annotation ``# repro: owned[<why>]`` marks a
write the protocol allows (e.g. a partitioned output slab) and is
honoured by both rules; cross-module callees are assumed safe —
without whole-program analysis, assuming otherwise would drown the
detector in false positives.
"""

from __future__ import annotations

import ast
import re
from functools import lru_cache
from typing import Iterator

from repro.analysis import effects as fx
from repro.analysis.lint import ModuleContext, rule

__all__ = [
    "find_worker_functions",
    "check_worker_shared_writes",
    "check_worker_callee_writes",
]

_OWNED_RE = re.compile(r"#\s*repro:\s*owned\[", re.IGNORECASE)
_DISPATCH_ATTRS = {"map", "submit"}
_POOL_NAME_HINTS = ("pool", "executor")


def _terminal_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _looks_like_pool(node: ast.expr) -> bool:
    name = _terminal_name(node)
    if name is None:
        return False
    lowered = name.lower()
    return any(hint in lowered for hint in _POOL_NAME_HINTS)


def find_worker_functions(ctx: ModuleContext) -> dict[str, list[ast.Call]]:
    """Names of locally-defined functions handed to a thread pool
    (``pool.map(fn, ...)``, ``executor.submit(fn, ...)``) or a thread
    (``Thread(target=fn)``), with their dispatch sites."""
    out: dict[str, list[ast.Call]] = {}
    for node in ctx.nodes(ast.Call):
        fn = node.func
        worker: str | None = None
        if (
            isinstance(fn, ast.Attribute)
            and fn.attr in _DISPATCH_ATTRS
            and _looks_like_pool(fn.value)
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            worker = node.args[0].id
        elif isinstance(fn, ast.Name) and fn.id == "Thread":
            for kw in node.keywords:
                if kw.arg == "target" and isinstance(kw.value, ast.Name):
                    worker = kw.value.id
        if worker is not None:
            out.setdefault(worker, []).append(node)
    return out


@lru_cache(maxsize=32)
def _module_effects(ctx: ModuleContext) -> dict[str, fx.FunctionEffects]:
    return fx.propagate(fx.module_effects(ctx.tree))


def _function_defs(ctx: ModuleContext) -> dict[str, list[ast.FunctionDef]]:
    defs: dict[str, list[ast.FunctionDef]] = {}
    for node in ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef):
        defs.setdefault(node.name, []).append(node)
    return defs


def _is_owned_line(ctx: ModuleContext, lineno: int) -> bool:
    if 1 <= lineno <= len(ctx.lines):
        return bool(_OWNED_RE.search(ctx.lines[lineno - 1]))
    return False


def _worker_scope(fn: ast.FunctionDef | ast.AsyncFunctionDef):
    """(params, locals, scratch_locals) for one worker body."""
    params = set(fx._param_names(fn))
    locals_ = fx._local_names(fn)
    scratch: set[str] = set()
    for node in fx._walk_own(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            call = node.value
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "buffer"
            ):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        scratch.add(tgt.id)
    return params, locals_, scratch


def _iter_worker_writes(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    imports: frozenset[str] = frozenset(),
) -> Iterator[tuple[str, str, ast.AST]]:
    """Yield ``(name, how, node)`` for every array-write syntax inside
    the worker body (not descending into nested defs).

    ``imports`` receivers are modules (``np.sort(x)`` is the copying
    functional sort, not an in-place method) and are skipped.
    """
    for node in fx._walk_own(fn):
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Subscript):
                    name = _base_name(tgt)
                    if name:
                        yield name, "subscript store", tgt
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Subscript):
                name = _base_name(node.target)
                if name:
                    yield name, "augmented store", node.target
        elif isinstance(node, ast.Call):
            f = node.func
            if (
                isinstance(f, ast.Attribute)
                and f.attr in fx.MUTATING_METHODS
                and isinstance(f.value, ast.Name)
                and f.value.id not in imports
            ):
                yield f.value.id, f"in-place .{f.attr}()", node
            for kw in node.keywords:
                if kw.arg == "out" and isinstance(kw.value, ast.Name):
                    yield kw.value.id, "out= target", node


def _base_name(node: ast.expr) -> str | None:
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


@rule(
    "RPR013",
    "thread-pool worker writes a closure-captured shared array outside "
    "the ownership protocol (main-thread merge / owned chunk / "
    "per-thread scratch)",
    deep=True,
)
def check_worker_shared_writes(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    """Direct shared-array writes inside worker closures (RPR013)."""
    workers = find_worker_functions(ctx)
    if not workers:
        return
    defs = _function_defs(ctx)
    imports = fx.module_import_names(ctx.tree)
    for worker_name in workers:
        for fn in defs.get(worker_name, ()):
            params, locals_, scratch = _worker_scope(fn)
            for name, how, node in _iter_worker_writes(fn, imports):
                if name in params:
                    continue  # the worker's own disjoint chunk
                if name in scratch:
                    continue  # per-thread workspace scratch
                if name in locals_:
                    continue  # locally allocated array
                line = getattr(node, "lineno", fn.lineno)
                if _is_owned_line(ctx, line):
                    continue
                yield (
                    line,
                    getattr(node, "col_offset", 0),
                    f"worker `{worker_name}` writes shared array "
                    f"`{name}` ({how}); shared parent/level writes must "
                    "happen on the main thread after the pool joins "
                    "(annotate deliberate partitioned writes with "
                    "`# repro: owned[...]`)",
                )


@rule(
    "RPR014",
    "thread-pool worker calls a function whose effect summary writes a "
    "shared array argument (propagated race)",
    deep=True,
)
def check_worker_callee_writes(ctx: ModuleContext) -> Iterator[tuple[int, int, str]]:
    """Shared-array writes one call level below a worker (RPR014)."""
    workers = find_worker_functions(ctx)
    if not workers:
        return
    defs = _function_defs(ctx)
    summaries = _module_effects(ctx)
    for worker_name in workers:
        for fn in defs.get(worker_name, ()):
            params, locals_, scratch = _worker_scope(fn)
            for node in fx._walk_own(fn):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)):
                    continue
                callee = summaries.get(node.func.id)
                if callee is None:
                    continue  # cross-module / unresolved: assumed safe
                bindings: list[tuple[str, str]] = []
                for pos, arg in enumerate(node.args):
                    if (isinstance(arg, ast.Name)
                            and pos < len(callee.params)):
                        bindings.append((callee.params[pos], arg.id))
                for kw in node.keywords:
                    if kw.arg is not None and isinstance(kw.value, ast.Name):
                        bindings.append((kw.arg, kw.value.id))
                for param, arg_name in bindings:
                    if param not in callee.writes:
                        continue
                    if arg_name in params or arg_name in scratch:
                        continue
                    if arg_name in locals_:
                        continue
                    if _is_owned_line(ctx, node.lineno):
                        continue
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"worker `{worker_name}` passes shared array "
                        f"`{arg_name}` to `{node.func.id}`, whose effect "
                        f"summary writes parameter `{param}`; "
                        "a propagated cross-thread write outside the "
                        "ownership protocol",
                    )
