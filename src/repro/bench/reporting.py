"""Table and series formatting for experiment output.

Experiments print the same rows/series the paper reports; these helpers
render row-dicts as aligned monospace tables and persist them as JSON
so EXPERIMENTS.md can cite exact numbers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.errors import BenchError

__all__ = ["format_table", "format_value", "save_rows", "load_rows"]


def format_value(value: object, *, precision: int = 4) -> str:
    """Render one cell: floats get fixed precision with magnitude-aware
    fallbacks (tiny values go scientific so level times stay readable)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) < 10 ** (-precision) or abs(value) >= 1e7:
            return f"{value:.3e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    rows: Sequence[dict],
    columns: Sequence[str] | None = None,
    *,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render row-dicts as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    missing = [c for c in columns if any(c not in r for r in rows)]
    if missing:
        raise BenchError(f"rows missing columns: {missing}")
    cells = [[format_value(r[c], precision=precision) for c in columns] for r in rows]
    widths = [
        max(len(str(c)), *(len(row[i]) for row in cells))
        for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def save_rows(rows: Sequence[dict], path: str | Path, *, meta: dict | None = None) -> None:
    """Persist experiment rows (plus optional metadata) as JSON."""
    payload = {"meta": meta or {}, "rows": list(rows)}
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(
        json.dumps(payload, indent=2, default=float), encoding="utf-8"
    )


def load_rows(path: str | Path) -> list[dict]:
    """Load rows written by :func:`save_rows`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        return list(payload["rows"])
    except (OSError, KeyError, json.JSONDecodeError) as exc:
        raise BenchError(f"cannot load rows from {path}: {exc}") from exc
