"""Workload definitions and the profile cache.

Every experiment runs on Graph 500 R-MAT graphs described by a
:class:`WorkloadSpec`.  Because most experiments consume only the
measured :class:`~repro.bfs.trace.LevelProfile` (the cost models never
touch the graph), profiles are cached as small JSON files keyed by the
spec — regenerating a whole experiment suite after the first run costs
milliseconds.

Paper-scale semantics: the paper evaluates SCALE 21–23.  Running pure-
Python traversals at that size is possible but slow, so experiments
measure at ``scale`` and (where the paper's absolute numbers matter)
use :func:`paper_scale_profile` to scale counters up to the paper's
|V|/|E| — the scale-invariance of R-MAT level structure is what makes
that faithful, and is itself verified by
``tests/bench/test_scale_invariance.py``.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path

from repro.arch.calibration import scale_profile
from repro.bfs.profiler import pick_sources, profile_bfs
from repro.bfs.trace import LevelProfile
from repro.errors import BenchError
from repro.graph.csr import CSRGraph
from repro.graph.generators import GRAPH500_PARAMS, RMATParams, rmat

__all__ = [
    "WorkloadSpec",
    "default_cache_dir",
    "get_graph",
    "get_profile",
    "paper_scale_profile",
    "PAPER_SUITE",
    "TABLE5_GRAPHS",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """One R-MAT workload: graph parameters plus the traversal root seed."""

    scale: int
    edgefactor: int = 16
    seed: int = 0
    source_seed: int = 0
    params: RMATParams = GRAPH500_PARAMS

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise BenchError(f"scale must be >= 1, got {self.scale}")
        if self.edgefactor < 1:
            raise BenchError(f"edgefactor must be >= 1, got {self.edgefactor}")

    def key(self) -> str:
        """Stable cache key."""
        raw = (
            f"s{self.scale}-e{self.edgefactor}-g{self.seed}"
            f"-r{self.source_seed}-p{self.params.as_tuple()}"
        )
        return hashlib.sha1(raw.encode()).hexdigest()[:16]

    def label(self) -> str:
        """Human-readable tag (``scale=16 ef=16``)."""
        return f"scale={self.scale} ef={self.edgefactor}"


def default_cache_dir() -> Path:
    """Cache directory (``REPRO_CACHE_DIR`` env var or ``~/.cache/repro``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def get_graph(spec: WorkloadSpec) -> CSRGraph:
    """Generate the graph for ``spec`` (not cached on disk: CSR arrays
    are large and regeneration is deterministic)."""
    return rmat(spec.scale, spec.edgefactor, spec.params, seed=spec.seed)


def get_profile(
    spec: WorkloadSpec, *, cache_dir: Path | None = None
) -> LevelProfile:
    """Measured level profile for ``spec``, cached as JSON."""
    cache_dir = cache_dir or default_cache_dir()
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / f"profile-{spec.key()}.json"
    if path.exists():
        return LevelProfile.load(path)
    graph = get_graph(spec)
    source = int(pick_sources(graph, 1, seed=spec.source_seed)[0])
    profile, _ = profile_bfs(graph, source)
    profile.save(path)
    return profile


def paper_scale_profile(
    spec: WorkloadSpec,
    target_scale: int,
    *,
    cache_dir: Path | None = None,
) -> LevelProfile:
    """Profile of ``spec`` with counters scaled up to ``target_scale``
    (the paper's SCALE 21–23 sizes)."""
    if target_scale < spec.scale:
        raise BenchError(
            f"target scale {target_scale} below measured scale {spec.scale}"
        )
    profile = get_profile(spec, cache_dir=cache_dir)
    return scale_profile(profile, 2 ** (target_scale - spec.scale))


#: The Fig. 9 / Table III suite: SCALE 21–23 × edgefactor 8/16/32,
#: measured at (scale - 6) and scaled up.
PAPER_SUITE: tuple[tuple[int, int], ...] = tuple(
    (scale, ef) for scale in (21, 22, 23) for ef in (8, 16, 32)
)

#: The Table V graphs: (|V| millions, |E| millions) pairs as
#: (target_scale, edgefactor).
TABLE5_GRAPHS: tuple[tuple[int, int], ...] = (
    (21, 16),  # 2M vertices,  32M edges
    (21, 32),  # 2M vertices,  64M edges
    (21, 64),  # 2M vertices, 128M edges
    (22, 16),  # 4M vertices,  64M edges
    (22, 32),  # 4M vertices, 128M edges
    (22, 64),  # 4M vertices, 256M edges
    (23, 16),  # 8M vertices, 128M edges
)
