"""Performance metrics (Graph 500 conventions, the paper's Table I)."""

from __future__ import annotations

import numpy as np

from repro.errors import BenchError

__all__ = ["teps", "gteps", "speedup", "geometric_mean", "harmonic_mean"]


def teps(traversed_edges: int, seconds: float) -> float:
    """Traversed edges per second — the Graph 500 BFS metric."""
    if seconds <= 0:
        raise BenchError(f"seconds must be positive, got {seconds}")
    if traversed_edges < 0:
        raise BenchError("traversed_edges must be non-negative")
    return traversed_edges / seconds


def gteps(traversed_edges: int, seconds: float) -> float:
    """TEPS in units of 10⁹, as reported throughout the paper."""
    return teps(traversed_edges, seconds) / 1e9


def speedup(baseline_seconds: float, seconds: float) -> float:
    """``baseline / candidate`` — >1 means the candidate is faster."""
    if baseline_seconds <= 0 or seconds <= 0:
        raise BenchError("times must be positive")
    return baseline_seconds / seconds


def geometric_mean(values) -> float:
    """Geometric mean (the right average for speedup ratios)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise BenchError("geometric mean of an empty sequence")
    if (arr <= 0).any():
        raise BenchError("geometric mean requires positive values")
    return float(np.exp(np.log(arr).mean()))


def harmonic_mean(values) -> float:
    """Harmonic mean (the right average for rates like TEPS)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise BenchError("harmonic mean of an empty sequence")
    if (arr <= 0).any():
        raise BenchError("harmonic mean requires positive values")
    return float(arr.size / (1.0 / arr).sum())
