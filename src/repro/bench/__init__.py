"""Benchmark harness: metrics, workload cache, experiment runner and
the per-table/figure experiment registry."""

from repro.bench.metrics import (
    geometric_mean,
    gteps,
    harmonic_mean,
    speedup,
    teps,
)
from repro.bench.reporting import format_table, load_rows, save_rows
from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bench.workloads import (
    PAPER_SUITE,
    TABLE5_GRAPHS,
    WorkloadSpec,
    default_cache_dir,
    get_graph,
    get_profile,
    paper_scale_profile,
)

__all__ = [
    "teps",
    "gteps",
    "speedup",
    "geometric_mean",
    "harmonic_mean",
    "format_table",
    "save_rows",
    "load_rows",
    "BenchConfig",
    "ExperimentResult",
    "WorkloadSpec",
    "get_graph",
    "get_profile",
    "paper_scale_profile",
    "default_cache_dir",
    "PAPER_SUITE",
    "TABLE5_GRAPHS",
]
