"""Experiment plumbing shared by every table/figure module.

Each experiment module exposes ``run(config) -> ExperimentResult``.
The result carries row-dicts (the table the paper printed), free-form
notes (paper-vs-measured commentary) and knows how to print and persist
itself.  The CLI and the pytest benchmarks are thin wrappers over this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.reporting import format_table, save_rows
from repro.errors import BenchError

__all__ = ["BenchConfig", "ExperimentResult"]


@dataclass(frozen=True)
class BenchConfig:
    """Knobs shared by all experiments.

    ``base_scale`` is the *measured* graph scale; experiments that
    reproduce paper-scale absolute numbers scale counters up from here.
    Raising it improves fidelity at the cost of runtime; the defaults
    keep the full suite under a few minutes.
    """

    base_scale: int = 15
    seeds: tuple[int, ...] = (0, 1)
    candidate_count: int = 1000
    results_dir: Path = Path("benchmarks/results")
    cache_dir: Path | None = None
    #: When set, every experiment run through
    #: :func:`repro.bench.experiments.run_experiment` is also appended
    #: to this JSONL run-history store (see :mod:`repro.obs.history`).
    history_path: Path | None = None

    def __post_init__(self) -> None:
        if self.base_scale < 8:
            raise BenchError(
                f"base_scale must be >= 8 for stable level structure, "
                f"got {self.base_scale}"
            )
        if not self.seeds:
            raise BenchError("at least one seed required")
        if self.candidate_count < 2:
            raise BenchError("candidate_count must be >= 2")


@dataclass
class ExperimentResult:
    """One regenerated table/figure."""

    name: str
    title: str
    rows: list[dict]
    columns: list[str] | None = None
    notes: list[str] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def render(self, *, precision: int = 4) -> str:
        """The printable table plus notes."""
        out = format_table(
            self.rows, self.columns, precision=precision, title=self.title
        )
        if self.notes:
            out += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return out

    def save(self, results_dir: str | Path) -> Path:
        """Write rows+meta JSON under ``results_dir``; returns the path."""
        path = Path(results_dir) / f"{self.name}.json"
        save_rows(self.rows, path, meta={"title": self.title, **self.meta})
        return path

    def column(self, name: str) -> list:
        """Extract one column across rows."""
        try:
            return [r[name] for r in self.rows]
        except KeyError as exc:
            raise BenchError(f"no column {name!r} in {self.name}") from exc

    def to_run_record(self, *, config: "BenchConfig | None" = None):
        """This result as a history :class:`~repro.obs.history.RunRecord`.

        The experiment's observability payload (attached by
        ``run_experiment`` when a tracer is active) supplies the
        metrics/span aggregates; the rows themselves travel in ``meta``
        so a trajectory diff can point at the exact table cell that
        moved.
        """
        from repro.obs.history import snapshot_run

        obs = self.meta.get("obs") or {}
        workload = self.name
        if config is not None:
            workload = f"{self.name}-s{config.base_scale}"
        return snapshot_run(
            "bench.experiment",
            workload,
            metrics=obs.get("metrics"),
            spans=obs.get("spans"),
            experiment=self.name,
            title=self.title,
            rows=self.rows,
        )

    def record_history(
        self, path: str | Path, *, config: "BenchConfig | None" = None
    ) -> Path:
        """Append this result to the JSONL history store at ``path``."""
        from repro.obs.history import HistoryStore

        store = HistoryStore(path)
        return store.append(self.to_run_record(config=config))
