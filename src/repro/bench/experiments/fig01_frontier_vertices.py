"""Fig. 1 — frontier vertex counts per level across graph scales.

Paper claim: "the number of vertices in CQ is small at first, then
increases and peaks in the middle" for every SCALE (18–23, edgefactor
16).  We measure the same unimodal trajectory on R-MAT graphs at
``base_scale - 3 .. base_scale + 1`` (the shape is scale-invariant;
the scales themselves are configurable).
"""

from __future__ import annotations

import numpy as np

from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bench.workloads import WorkloadSpec, get_profile

__all__ = ["run"]


def run(config: BenchConfig = BenchConfig()) -> ExperimentResult:
    """Regenerate the Fig. 1 series."""
    scales = range(config.base_scale - 3, config.base_scale + 2)
    rows: list[dict] = []
    unimodal_all = True
    for scale in scales:
        spec = WorkloadSpec(scale=scale, edgefactor=16, seed=config.seeds[0])
        profile = get_profile(spec, cache_dir=config.cache_dir)
        fv = profile.frontier_vertices()
        peak = int(np.argmax(fv))
        interior = 0 < peak < len(fv) - 1
        unimodal_all &= interior
        rows.append(
            {
                "scale": scale,
                "levels": len(fv),
                "peak_level": peak + 1,
                "peak_vertices": int(fv[peak]),
                "series": fv.tolist(),
                "peak_in_middle": interior,
            }
        )
    result = ExperimentResult(
        name="fig01_frontier_vertices",
        title="Fig. 1 — |V|cq per level (R-MAT, edgefactor 16)",
        rows=rows,
        columns=["scale", "levels", "peak_level", "peak_vertices", "peak_in_middle"],
        meta={"edgefactor": 16},
    )
    result.notes.append(
        "paper: frontier small at first, peaks in the middle, small at the "
        f"end; measured: peak interior on {sum(r['peak_in_middle'] for r in rows)}"
        f"/{len(rows)} scales"
    )
    return result
