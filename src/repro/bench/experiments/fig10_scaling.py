"""Fig. 10 — strong and weak scaling on CPU and MIC.

(a) Strong scaling: fixed graph (SCALE 22 counters), core counts swept;
performance should grow with cores, with diminishing returns as the
memory wall approaches (the paper's curves flatten similarly).

(b) Weak scaling: per-core load held constant (1M vertices +
``edgefactor``M edges per CPU core; 0.25M per MIC core, the paper's
setup); per-core efficiency should hold roughly flat.

Both are reproduced on the cost model via ``ArchSpec.with_cores``; the
real-machine analogue (thread-count sweep of the actual NumPy kernels)
lives in ``benchmarks/bench_kernels.py``.
"""

from __future__ import annotations

import numpy as np

from repro.arch.costmodel import CostModel
from repro.arch.specs import CPU_SANDY_BRIDGE, MIC_KNC, ArchSpec
from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bench.workloads import WorkloadSpec, get_profile, paper_scale_profile
from repro.arch.calibration import scale_profile

__all__ = ["run"]

CPU_CORES = (1, 2, 4, 8)
MIC_CORES = (8, 15, 30, 60)


def _cb_seconds(spec: ArchSpec, profile) -> float:
    """Oracle combination time on one device."""
    t = CostModel(spec).time_matrix(profile)
    return float(np.minimum(t[:, 0], t[:, 1]).sum())


def run(config: BenchConfig = BenchConfig()) -> ExperimentResult:
    """Regenerate both Fig. 10 panels."""
    rows: list[dict] = []
    # --- (a) strong scaling: SCALE-22 counters, edgefactor sweep -------
    for ef in (16, 32, 64):
        spec = WorkloadSpec(
            scale=config.base_scale, edgefactor=ef, seed=config.seeds[0] + ef
        )
        profile = paper_scale_profile(spec, 22, cache_dir=config.cache_dir)
        edges = profile.num_edges
        for arch, cores_sweep in (
            (CPU_SANDY_BRIDGE, CPU_CORES),
            (MIC_KNC, MIC_CORES),
        ):
            for cores in cores_sweep:
                secs = _cb_seconds(arch.with_cores(cores), profile)
                rows.append(
                    {
                        "panel": "strong",
                        "arch": arch.name,
                        "edgefactor": ef,
                        "cores": cores,
                        "gteps": edges / secs / 1e9,
                    }
                )
    # --- (b) weak scaling: constant per-core load ------------------------
    base = WorkloadSpec(
        scale=config.base_scale, edgefactor=16, seed=config.seeds[0]
    )
    base_profile = get_profile(base, cache_dir=config.cache_dir)
    for arch, cores_sweep, verts_per_core in (
        (CPU_SANDY_BRIDGE, CPU_CORES, 1 << 20),
        (MIC_KNC, MIC_CORES, 1 << 18),
    ):
        for cores in cores_sweep:
            target_vertices = cores * verts_per_core
            factor = target_vertices / base_profile.num_vertices
            profile = scale_profile(base_profile, factor)
            secs = _cb_seconds(arch.with_cores(cores), profile)
            rows.append(
                {
                    "panel": "weak",
                    "arch": arch.name,
                    "edgefactor": 16,
                    "cores": cores,
                    "gteps": profile.num_edges / secs / 1e9,
                }
            )
    result = ExperimentResult(
        name="fig10_scaling",
        title="Fig. 10 — strong (a) and weak (b) scaling, CPU and MIC",
        rows=rows,
        meta={"measured_scale": config.base_scale},
    )
    # Monotonicity verdicts.
    for panel in ("strong", "weak"):
        for arch in (CPU_SANDY_BRIDGE.name, MIC_KNC.name):
            series = [
                r["gteps"]
                for r in rows
                if r["panel"] == panel
                and r["arch"] == arch
                and r["edgefactor"] == 16
            ]
            grows = all(b >= a * 0.95 for a, b in zip(series, series[1:]))
            result.notes.append(
                f"{panel} scaling on {arch}: "
                f"{'grows with cores' if grows else 'NON-MONOTONE'} "
                f"({series[0]:.3f} -> {series[-1]:.3f} GTEPS)"
            )
    return result
