"""Fig. 9 — combination performance across architectures per graph.

For each graph of the paper suite, GTEPS of the MIC combination, CPU
combination, GPU combination and the CPU+GPU cross-architecture
combination.  Paper claim: the cross-architecture version wins
everywhere, with average speedups of 8.5× / 2.6× / 2.2× over the
MIC / CPU / GPU combinations.
"""

from __future__ import annotations

from repro.arch.machine import SimulatedMachine
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X, MIC_KNC
from repro.bench.metrics import geometric_mean
from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bench.workloads import PAPER_SUITE, WorkloadSpec, paper_scale_profile
from repro.bench.experiments.table4_step_by_step import build_approaches
from repro.bfs.result import Direction
from repro.arch.machine import PlanStep

__all__ = ["run"]


def run(config: BenchConfig = BenchConfig()) -> ExperimentResult:
    """Regenerate the Fig. 9 bars."""
    machine = SimulatedMachine(
        {"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X, "mic": MIC_KNC}
    )
    rows: list[dict] = []
    for target_scale, ef in PAPER_SUITE:
        spec = WorkloadSpec(
            scale=config.base_scale,
            edgefactor=ef,
            seed=config.seeds[0] + target_scale * 100 + ef,
        )
        profile = paper_scale_profile(
            spec, target_scale, cache_dir=config.cache_dir
        )
        mats = machine.time_matrices(profile)
        plans = build_approaches(machine, profile)
        mic_cb = [
            PlanStep(
                "mic",
                Direction.TOP_DOWN
                if mats["mic"][i, 0] <= mats["mic"][i, 1]
                else Direction.BOTTOM_UP,
            )
            for i in range(len(profile))
        ]
        reports = {
            "mic_cb": machine.run(profile, mic_cb),
            "cpu_cb": machine.run(profile, plans["CPUCB"]),
            "gpu_cb": machine.run(profile, plans["GPUCB"]),
            "cross": machine.run(profile, plans["CPUTD+GPUCB"]),
        }
        row: dict = {"graph": f"scale={target_scale} ef={ef}"}
        for name, rep in reports.items():
            row[f"{name}_gteps"] = rep.gteps
        row["cross_over_mic"] = (
            reports["mic_cb"].total_seconds / reports["cross"].total_seconds
        )
        row["cross_over_cpu"] = (
            reports["cpu_cb"].total_seconds / reports["cross"].total_seconds
        )
        row["cross_over_gpu"] = (
            reports["gpu_cb"].total_seconds / reports["cross"].total_seconds
        )
        rows.append(row)
    result = ExperimentResult(
        name="fig09_combinations",
        title="Fig. 9 — combination GTEPS per graph and architecture",
        rows=rows,
        meta={"measured_scale": config.base_scale},
    )
    for key, paper in (("mic", 8.5), ("cpu", 2.6), ("gpu", 2.2)):
        gm = geometric_mean(r[f"cross_over_{key}"] for r in rows)
        result.notes.append(
            f"cross over {key.upper()} combination: paper average {paper}x, "
            f"measured geomean {gm:.1f}x"
        )
    wins = sum(
        1
        for r in rows
        if min(r["cross_over_mic"], r["cross_over_cpu"], r["cross_over_gpu"])
        > 1.0
    )
    result.notes.append(
        f"cross-architecture wins on {wins}/{len(rows)} graphs "
        "(paper: all graphs)"
    )
    return result
