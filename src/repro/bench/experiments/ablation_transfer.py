"""Ablation — interconnect cost and when cross-architecture pays off.

The paper assumes a PCIe-class link and hands off once.  This ablation
reprices the cross-architecture combination under 0× (free transfers),
1× (PCIe gen 2) and 10× (a slow link) transfer models, against the
best single-device combination — showing how much link budget the
single CPU→GPU handoff of Algorithm 3 can absorb before the
cross-architecture advantage disappears.
"""

from __future__ import annotations

from repro.arch.machine import SimulatedMachine
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X
from repro.arch.transfer import PCIE_GEN2, TransferModel
from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bench.workloads import WorkloadSpec, paper_scale_profile
from repro.bench.experiments.table4_step_by_step import build_approaches

__all__ = ["run"]

LINKS: dict[str, TransferModel] = {
    "free": TransferModel(latency_s=0.0, bandwidth_gbs=1e9),
    "pcie_gen2": PCIE_GEN2,
    "slow_10x": TransferModel(
        latency_s=PCIE_GEN2.latency_s * 10,
        bandwidth_gbs=PCIE_GEN2.bandwidth_gbs / 10,
    ),
    "slow_100x": TransferModel(
        latency_s=PCIE_GEN2.latency_s * 100,
        bandwidth_gbs=PCIE_GEN2.bandwidth_gbs / 100,
    ),
}


def run(config: BenchConfig = BenchConfig()) -> ExperimentResult:
    """Run the transfer-cost ablation."""
    rows: list[dict] = []
    for target_scale, ef in ((22, 16), (23, 16)):
        spec = WorkloadSpec(
            scale=config.base_scale,
            edgefactor=ef,
            seed=config.seeds[0] + target_scale * 100 + ef,
        )
        profile = paper_scale_profile(
            spec, target_scale, cache_dir=config.cache_dir
        )
        for name, link in LINKS.items():
            machine = SimulatedMachine(
                {"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X}, transfer=link
            )
            plans = build_approaches(machine, profile)
            cross = machine.run(profile, plans["CPUTD+GPUCB"])
            gpu_cb = machine.run(profile, plans["GPUCB"]).total_seconds
            cpu_cb = machine.run(profile, plans["CPUCB"]).total_seconds
            best_single = min(gpu_cb, cpu_cb)
            rows.append(
                {
                    "graph": f"scale={target_scale} ef={ef}",
                    "link": name,
                    "cross_s": cross.total_seconds,
                    "transfer_s": float(cross.transfer_seconds.sum()),
                    "best_single_s": best_single,
                    "cross_still_wins": cross.total_seconds < best_single,
                    "advantage": best_single / cross.total_seconds,
                }
            )
    result = ExperimentResult(
        name="ablation_transfer",
        title="Ablation — cross-architecture advantage vs interconnect cost",
        rows=rows,
    )
    flips = [r for r in rows if not r["cross_still_wins"]]
    result.notes.append(
        "cross-architecture survives PCIe-class links (one handoff); "
        + (
            f"advantage flips on: {[(r['graph'], r['link']) for r in flips]}"
            if flips
            else "advantage never flips even at 100x-slower links on these "
            "graphs (the handoff payload is one bitmap)"
        )
    )
    return result
