"""Extension — the shape of the mistuning cliff.

The paper's 695× headline says a mistuned switching point can be
catastrophic for cross-architecture combination.  This experiment maps
*where* the cliff is: a log-spaced (M2, N2) grid (the GPU-internal
switching pair, with the handoff pair held at its optimum) is priced
over one paper-scale traversal, reporting the slowdown relative to the
best grid point.

Expected structure: a wide flat optimal plateau (which is why the
regression only needs to land *inside* it), a moderate penalty region
where one middle level runs the wrong direction, and a cliff — two to
three orders of magnitude — where level 1 or 2 runs bottom-up on the
GPU (the full-graph divergent scan of Table IV's GPUBU column).
"""

from __future__ import annotations

import numpy as np

from repro.arch.machine import SimulatedMachine
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X
from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bench.workloads import WorkloadSpec, paper_scale_profile
from repro.tuning.search import candidate_mn_grid, evaluate_cross

__all__ = ["run"]

GRID_SIDE = 12  # 12x12 (M2, N2) grid


def run(config: BenchConfig = BenchConfig()) -> ExperimentResult:
    """Map the mistuning landscape."""
    spec = WorkloadSpec(
        scale=config.base_scale, edgefactor=16, seed=config.seeds[0]
    )
    profile = paper_scale_profile(spec, 23, cache_dir=config.cache_dir)
    machine = SimulatedMachine({"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X})

    # Fix (M1, N1) at its exhaustive best over a coarse sample.
    coarse = candidate_mn_grid(200, seed=config.seeds[0])
    handoff_cands = np.hstack(
        [coarse, np.full((coarse.shape[0], 2), 100.0)]
    )
    handoff_secs = evaluate_cross(profile, machine, handoff_cands)
    m1, n1 = coarse[int(np.argmin(handoff_secs))]

    axis = np.exp(
        np.linspace(np.log(1.0), np.log(1000.0), GRID_SIDE)
    )
    mm, nn = np.meshgrid(axis, axis, indexing="ij")
    grid = np.column_stack(
        [
            np.full(mm.size, m1),
            np.full(mm.size, n1),
            mm.ravel(),
            nn.ravel(),
        ]
    )
    secs = evaluate_cross(profile, machine, grid)
    best = float(secs.min())
    slowdown = (secs / best).reshape(GRID_SIDE, GRID_SIDE)

    rows: list[dict] = []
    for i in range(GRID_SIDE):
        for j in range(GRID_SIDE):
            rows.append(
                {
                    "m2": float(axis[i]),
                    "n2": float(axis[j]),
                    "slowdown": float(slowdown[i, j]),
                }
            )
    result = ExperimentResult(
        name="ext_mistuning",
        title="Extension — slowdown vs (M2, N2) mistuning "
        f"(handoff fixed at M1={m1:.0f}, N1={n1:.0f})",
        rows=rows,
        columns=["m2", "n2", "slowdown"],
        meta={"grid_side": GRID_SIDE},
    )
    plateau = float((slowdown < 1.05).mean())
    cliff = float(slowdown.max())
    result.notes.append(
        f"optimal plateau covers {plateau:.0%} of the grid; worst corner "
        f"is {cliff:.0f}x slower (the paper's mistuning claim: up to 695x "
        "over its candidate space)"
    )
    result.notes.append(
        "the cliff sits at small (M2, N2): thresholds that keep the "
        "massive middle levels in GPU top-down, the paper's Table IV "
        "GPUTD column"
    )
    return result
