"""One module per reproduced table/figure (plus ablations).

Every module exposes ``run(config: BenchConfig) -> ExperimentResult``.
:data:`REGISTRY` maps experiment names to those callables — the CLI and
the pytest benchmarks both dispatch through it.
"""

from typing import Callable

from repro.bench.runner import BenchConfig, ExperimentResult

from repro.bench.experiments import (
    ablation_features,
    ablation_policy,
    ablation_regression,
    ablation_transfer,
    ext_arch_sweep,
    ext_mistuning,
    ext_root_features,
    ext_sources,
    ext_topology,
    fig01_frontier_vertices,
    fig02_frontier_edges,
    fig03_level_times,
    fig08_regression_quality,
    fig09_combinations,
    fig10_scaling,
    roofline_rcmb,
    sec5d_comparisons,
    table3_best_m,
    table4_step_by_step,
    table5_speedups,
    table6_gteps,
)

__all__ = ["REGISTRY", "run_experiment"]

REGISTRY: dict[str, Callable[[BenchConfig], ExperimentResult]] = {
    "fig01": fig01_frontier_vertices.run,
    "fig02": fig02_frontier_edges.run,
    "fig03": fig03_level_times.run,
    "fig08": fig08_regression_quality.run,
    "fig09": fig09_combinations.run,
    "fig10": fig10_scaling.run,
    "table3": table3_best_m.run,
    "table4": table4_step_by_step.run,
    "table5": table5_speedups.run,
    "table6": table6_gteps.run,
    "sec5d": sec5d_comparisons.run,
    "roofline": roofline_rcmb.run,
    "ablation-policy": ablation_policy.run,
    "ablation-regression": ablation_regression.run,
    "ablation-features": ablation_features.run,
    "ablation-transfer": ablation_transfer.run,
    "ext-arch-sweep": ext_arch_sweep.run,
    "ext-mistuning": ext_mistuning.run,
    "ext-root-features": ext_root_features.run,
    "ext-sources": ext_sources.run,
    "ext-topology": ext_topology.run,
}


def run_experiment(
    name: str, config: BenchConfig | None = None
) -> ExperimentResult:
    """Run one experiment by registry name.

    When an enabled tracer is ambient (:func:`repro.obs.get_tracer`),
    the experiment runs inside a ``bench.experiment`` span and the
    result's ``meta`` gains an ``obs`` block: the experiment's wall
    seconds and the tracer's metrics snapshot — persisted by
    :meth:`~repro.bench.runner.ExperimentResult.save`.

    When ``config.history_path`` is set, the result is also appended to
    that JSONL run-history store
    (:meth:`~repro.bench.runner.ExperimentResult.record_history`), so
    ``repro-bfs monitor check`` can gate bench trajectories too.
    """
    if name not in REGISTRY:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(REGISTRY)}"
        )
    from repro.obs.tracer import get_tracer

    config = config or BenchConfig()
    tr = get_tracer()
    with tr.span("bench.experiment", experiment=name) as sp:
        result = REGISTRY[name](config)
    if tr.enabled:
        result.meta["obs"] = {
            "experiment_seconds": sp.duration,
            "metrics": tr.metrics.snapshot(),
        }
    if config.history_path is not None:
        result.record_history(config.history_path, config=config)
    return result
