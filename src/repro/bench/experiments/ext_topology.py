"""Extension — does direction optimization generalize off R-MAT?

The paper evaluates exclusively on Graph 500 R-MAT graphs, whose
frontier explodes within two levels.  This experiment runs the same
machinery over structurally different topologies:

* **R-MAT** — scale-free, tiny diameter (the paper's regime);
* **Erdős–Rényi** — same density, no skew;
* **Watts–Strogatz** — small world, bounded degree;
* **2-D grid** — high diameter, frontier grows linearly;
* **star** — the degenerate best case for bottom-up.

For each, the measured profile is priced on the CPU model: pure
top-down vs the best (M, N) combination vs the per-level oracle.
Expected structure: big wins wherever the frontier has an explosive
middle (R-MAT, ER, WS, star), collapsing to parity on the grid, whose
frontier never exceeds a thin diagonal — direction optimization is a
property of the *level-set profile*, not of BFS itself.
"""

from __future__ import annotations

import numpy as np

from repro.arch.costmodel import CostModel
from repro.arch.specs import CPU_SANDY_BRIDGE
from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bfs.profiler import pick_sources, profile_bfs
from repro.graph.generators import (
    erdos_renyi,
    grid2d,
    rmat,
    star,
    watts_strogatz,
)
from repro.tuning.search import candidate_mn_grid, evaluate_single

__all__ = ["run"]


def _workloads(scale: int, seed: int):
    n = 1 << scale
    side = int(np.sqrt(n))
    return {
        "rmat": rmat(scale, 16, seed=seed),
        "erdos_renyi": erdos_renyi(n, 32.0, seed=seed),
        "watts_strogatz": watts_strogatz(n, 16, 0.1, seed=seed),
        "grid2d": grid2d(side, side),
        "star": star(n),
    }


def run(config: BenchConfig = BenchConfig()) -> ExperimentResult:
    """Price the hybrid across topologies.

    The flat-degree and scale-free families have scale-invariant level
    structure, so their measured profiles are scaled to paper size
    (SCALE 22) like every other experiment; the grid's level count
    grows with the side length, so it is evaluated as measured and
    flagged as the *overhead-bound* regime (thousands of thin levels —
    per-level launch/barrier floors decide, not edge work).
    """
    from repro.arch.calibration import scale_profile

    scale = min(config.base_scale, 15)
    model = CostModel(CPU_SANDY_BRIDGE)
    cands = candidate_mn_grid(config.candidate_count, seed=config.seeds[0])
    scaled_families = {"rmat", "erdos_renyi", "watts_strogatz", "star"}
    rows: list[dict] = []
    for name, graph in _workloads(scale, config.seeds[0]).items():
        source = int(pick_sources(graph, 1, seed=config.seeds[0])[0])
        max_levels = 200 if name == "grid2d" else None
        profile, _ = profile_bfs(graph, source, max_levels=max_levels)
        if name in scaled_families:
            profile = scale_profile(profile, 2 ** (22 - scale))
        times = model.time_matrix(profile)
        pure_td = float(times[:, 0].sum())
        oracle = float(np.minimum(times[:, 0], times[:, 1]).sum())
        best_mn = float(evaluate_single(profile, model, cands).min())
        fv = profile.frontier_vertices()
        rows.append(
            {
                "topology": name,
                "levels": len(profile),
                "peak_frontier_frac": float(fv.max() / profile.num_vertices),
                "hybrid_speedup": pure_td / best_mn,
                "oracle_speedup": pure_td / oracle,
                "mn_of_oracle": oracle / best_mn,
                "regime": "edge-work" if name in scaled_families else "overhead",
            }
        )
    result = ExperimentResult(
        name="ext_topology",
        title="Extension — direction optimization across topologies "
        "(CPU model; scale-invariant families at SCALE 22)",
        rows=rows,
        meta={"scale": scale},
    )
    by = {r["topology"]: r for r in rows}
    result.notes.append(
        "explosive-frontier graphs benefit from direction switching "
        f"(rmat {by['rmat']['hybrid_speedup']:.1f}x, erdos_renyi "
        f"{by['erdos_renyi']['hybrid_speedup']:.1f}x, watts_strogatz "
        f"{by['watts_strogatz']['hybrid_speedup']:.1f}x over pure top-down)"
    )
    result.notes.append(
        "star is a boundary case for the rule itself: its single middle "
        "level holds ALL edges, so every (M, N) with M >= 1 is forced to "
        "switch there even when top-down is cheaper — hybrid lands at "
        f"{by['star']['hybrid_speedup']:.2f}x, i.e. the threshold form "
        "(not the tuning) is what costs here"
    )
    result.notes.append(
        f"the grid ({by['grid2d']['levels']} thin levels) is a different "
        "regime entirely: per-level overhead floors decide, edge work is "
        "negligible, and any 'speedup' "
        f"({by['grid2d']['hybrid_speedup']:.2f}x here) reflects the "
        "BU-vs-TD barrier-cost gap, not traversal work — the paper's "
        "technique targets low-diameter graphs and says so"
    )
    return result
