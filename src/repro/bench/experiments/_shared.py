"""Helpers shared by the experiment modules.

The regression experiments all need a trained
:class:`~repro.tuning.SwitchingPointPredictor`.  Training data comes
from a corpus of profiled R-MAT graphs crossed with architecture pairs
(the three presets, the CPU→GPU cross pair, and synthetic mixtures —
the paper used 140 samples; the default corpus here is comparable).
The fitted predictor is cached on disk keyed by the corpus parameters.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from repro.arch.specs import (
    CPU_SANDY_BRIDGE,
    GPU_K20X,
    MIC_KNC,
    ArchSpec,
    sample_arch,
)
from repro.bench.runner import BenchConfig
from repro.bench.workloads import default_cache_dir
from repro.graph.generators import rmat
from repro.tuning.predictor import SwitchingPointPredictor
from repro.tuning.training import ProfiledGraph, build_training_set, profile_graph

__all__ = [
    "corpus_graphs",
    "corpus_arch_pairs",
    "train_default_predictor",
    "scaled_graph_features",
]


def scaled_graph_features(config: BenchConfig, spec, target_scale: int):
    """Fig. 7 graph block for ``spec`` scaled to ``target_scale``.

    Experiments evaluate on :func:`paper_scale_profile` counters, so the
    features fed to the predictor must describe the *scaled* graph —
    predicting from the small measured graph would query the model far
    outside its training distribution.
    """
    from repro.bench.workloads import get_graph
    from repro.graph.stats import graph_features

    feats = graph_features(get_graph(spec))
    factor = 2.0 ** (target_scale - spec.scale)
    feats = feats.copy()
    feats[0] *= factor
    feats[1] *= factor
    return feats


def corpus_graphs(config: BenchConfig) -> list[ProfiledGraph]:
    """Profiled training graphs: three scales × three edgefactors ×
    the configured seeds, each also scaled up to two paper-size targets
    (SCALE 20-24) so the corpus covers the size regime the evaluation
    graphs are scaled to.  All generator seeds differ from the
    evaluation specs, so experiment graphs stay held out."""
    out: list[ProfiledGraph] = []
    for scale in range(config.base_scale - 2, config.base_scale + 1):
        for ef in (8, 16, 32):
            for seed in config.seeds:
                g = rmat(scale, ef, seed=1000 * scale + 10 * ef + seed)
                pg = profile_graph(
                    g, seed=seed, tag=f"train-s{scale}-e{ef}-r{seed}"
                )
                for target in (21, 23):
                    out.append(pg.scaled(2.0 ** (target - scale + (ef % 2))))
    return out


def corpus_arch_pairs(
    *, synthetic: int = 6, seed: int = 17
) -> list[tuple[ArchSpec, ArchSpec]]:
    """Architecture pairs for the corpus: each preset with itself, the
    cross CPU→GPU pair, plus synthetic same-device pairs that widen the
    architecture feature coverage beyond three points."""
    pairs: list[tuple[ArchSpec, ArchSpec]] = [
        (CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE),
        (GPU_K20X, GPU_K20X),
        (MIC_KNC, MIC_KNC),
        (CPU_SANDY_BRIDGE, GPU_K20X),
    ]
    rng = np.random.default_rng(seed)
    for i in range(synthetic):
        spec = sample_arch(rng, name=f"synthetic-{i}")
        pairs.append((spec, spec))
    return pairs


def train_default_predictor(
    config: BenchConfig, *, force: bool = False
) -> SwitchingPointPredictor:
    """Train (or load the cached) default predictor for ``config``."""
    cache_root = config.cache_dir or default_cache_dir()
    key_raw = f"predictor-{config.base_scale}-{config.seeds}-{config.candidate_count}"
    key = hashlib.sha1(key_raw.encode()).hexdigest()[:12]
    cache_dir = Path(cache_root) / f"predictor-{key}"
    if cache_dir.exists() and not force:
        return SwitchingPointPredictor.load(cache_dir)
    graphs = corpus_graphs(config)
    pairs = corpus_arch_pairs()
    corpus = build_training_set(graphs, pairs, seed=config.seeds[0])
    predictor = SwitchingPointPredictor().fit(corpus)
    predictor.save(cache_dir)
    return predictor
