"""Extension — how source-dependent is the best switching point?

The paper trains one sample per graph, implicitly assuming the best
(M, N) is a property of the graph.  But the level profile depends on
the BFS root (a hub source explodes one level earlier than a leaf), and
the Fig. 7 features contain nothing about the root.  This experiment
quantifies the exposure: for one paper-scale graph, the best M and the
cost of using *another root's* best point, across many roots.

Measured outcome (see the result notes): the best point is materially
root-dependent — hub roots explode a level earlier than leaf roots and
want different thresholds, and borrowing across roots can cost several
×.  The paper's single-root-per-graph evaluation cannot observe this;
it is the clearest limitation this reproduction found in the feature
design.
"""

from __future__ import annotations

import numpy as np

from repro.arch.calibration import scale_profile
from repro.arch.costmodel import CostModel
from repro.arch.specs import CPU_SANDY_BRIDGE
from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bench.workloads import WorkloadSpec, get_graph
from repro.bfs.profiler import pick_sources, profile_bfs
from repro.tuning.search import candidate_mn_grid, evaluate_single

__all__ = ["run"]

NUM_ROOTS = 8


def run(config: BenchConfig = BenchConfig()) -> ExperimentResult:
    """Measure cross-root switching-point transfer."""
    spec = WorkloadSpec(
        scale=config.base_scale, edgefactor=16, seed=config.seeds[0]
    )
    graph = get_graph(spec)
    roots = pick_sources(graph, NUM_ROOTS, seed=config.seeds[0] + 1)
    factor = 2 ** (22 - spec.scale)
    model = CostModel(CPU_SANDY_BRIDGE)
    cands = candidate_mn_grid(config.candidate_count, seed=config.seeds[0])

    profiles = []
    for root in roots:
        profile, _ = profile_bfs(graph, int(root))
        profiles.append(scale_profile(profile, factor))
    all_secs = [evaluate_single(p, model, cands) for p in profiles]
    best_idx = [int(np.argmin(s)) for s in all_secs]

    rows: list[dict] = []
    for i, root in enumerate(roots):
        own_best = float(all_secs[i][best_idx[i]])
        # Regret of borrowing every other root's best candidate.
        borrowed = [
            float(all_secs[i][best_idx[j]])
            for j in range(NUM_ROOTS)
            if j != i
        ]
        rows.append(
            {
                "root": int(root),
                "degree": graph.degree(int(root)),
                "levels": len(profiles[i]),
                "best_m": float(cands[best_idx[i], 0]),
                "best_n": float(cands[best_idx[i], 1]),
                "own_best_s": own_best,
                "max_cross_root_regret": max(borrowed) / own_best,
            }
        )
    result = ExperimentResult(
        name="ext_sources",
        title="Extension — source dependence of the best switching point "
        f"({spec.label()} scaled to SCALE 22, {NUM_ROOTS} roots)",
        rows=rows,
    )
    m_values = [r["best_m"] for r in rows]
    regrets = [r["max_cross_root_regret"] for r in rows]
    result.notes.append(
        f"best M varies {min(m_values):.0f}-{max(m_values):.0f} across "
        f"roots of the same graph; borrowing another root's best point "
        f"costs up to {max(regrets):.2f}x (median worst-case "
        f"{float(np.median(regrets)):.2f}x)"
    )
    if max(regrets) > 1.5:
        result.notes.append(
            "finding: the switching point is materially root-dependent, "
            "yet the Fig. 7 sample carries no root information — a "
            "limitation of the paper's feature design that its single-"
            "root-per-graph evaluation cannot see; adding root degree / "
            "first-level frontier features is the obvious fix"
        )
    else:
        result.notes.append(
            "the optimal plateaus overlap across roots, so root-free "
            "features suffice on this workload"
        )
    return result
