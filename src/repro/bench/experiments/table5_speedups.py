"""Table V — CPUTD+GPUCB speedup over GPUTD across seven graphs.

Paper values: 44×, 75×, 155×, 37×, 35×, 67×, 36× for (|V|, |E|) of
(2M, 32M) … (8M, 128M) — large everywhere, larger at higher edgefactor
(more of the traversal concentrated in GPU-hostile top-down levels).
"""

from __future__ import annotations

from repro.arch.machine import SimulatedMachine
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X
from repro.bench.metrics import geometric_mean
from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bench.workloads import TABLE5_GRAPHS, WorkloadSpec, paper_scale_profile
from repro.bench.experiments.table4_step_by_step import build_approaches

__all__ = ["run", "PAPER_TABLE5"]

#: (target_scale, edgefactor) -> the paper's speedup.
PAPER_TABLE5: dict[tuple[int, int], int] = {
    (21, 16): 44, (21, 32): 75, (21, 64): 155,
    (22, 16): 37, (22, 32): 35, (22, 64): 67,
    (23, 16): 36,
}


def run(config: BenchConfig = BenchConfig()) -> ExperimentResult:
    """Regenerate Table V."""
    machine = SimulatedMachine({"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X})
    rows: list[dict] = []
    for target_scale, ef in TABLE5_GRAPHS:
        spec = WorkloadSpec(
            scale=config.base_scale,
            edgefactor=ef,
            seed=config.seeds[0] + target_scale * 100 + ef,
        )
        profile = paper_scale_profile(
            spec, target_scale, cache_dir=config.cache_dir
        )
        plans = build_approaches(machine, profile)
        gputd = machine.run(profile, plans["GPUTD"]).total_seconds
        cross = machine.run(profile, plans["CPUTD+GPUCB"]).total_seconds
        rows.append(
            {
                "vertices_M": 2 ** (target_scale - 20),
                "edges_M": ef * 2 ** (target_scale - 20),
                "speedup": gputd / cross,
                "paper_speedup": PAPER_TABLE5[(target_scale, ef)],
            }
        )
    result = ExperimentResult(
        name="table5_speedups",
        title="Table V — CPUTD+GPUCB speedup over GPUTD",
        rows=rows,
        meta={"measured_scale": config.base_scale},
    )
    gm = geometric_mean(r["speedup"] for r in rows)
    result.notes.append(
        f"paper: 35-155x (average 64x); measured geomean: {gm:.0f}x, "
        f"range {min(r['speedup'] for r in rows):.0f}-"
        f"{max(r['speedup'] for r in rows):.0f}x"
    )
    return result
