"""Ablation — which Fig. 7 feature blocks matter.

Section III-C argues the best switching point depends on *both* the
graph information and the platform information.  This ablation retrains
the SVR with (a) the full 12 features, (b) graph block only, (c)
architecture blocks only, and (d) a constant predictor (corpus-mean M,
N), then measures achieved traversal time as a fraction of exhaustive
on held-out (graph, architecture) combinations that vary in *both*
coordinates — so dropping either block must cost accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.arch.costmodel import CostModel
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X, MIC_KNC
from repro.bench.experiments._shared import corpus_arch_pairs, corpus_graphs
from repro.bench.metrics import geometric_mean
from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bench.workloads import WorkloadSpec, get_graph, paper_scale_profile
from repro.graph.stats import graph_features
from repro.ml.dataset import sample_from_features
from repro.ml.scaler import StandardScaler
from repro.ml.svr import SVR
from repro.tuning.search import candidate_mn_grid, evaluate_single
from repro.tuning.training import build_training_set

__all__ = ["run"]

BLOCKS = {
    "full": np.arange(12),
    "graph_only": np.arange(6),
    "arch_only": np.arange(6, 12),
}


def run(config: BenchConfig = BenchConfig()) -> ExperimentResult:
    """Run the feature-block ablation."""
    graphs = corpus_graphs(config)
    pairs = corpus_arch_pairs()
    corpus = build_training_set(graphs, pairs, seed=config.seeds[0])
    X, log_m, log_n = corpus.as_arrays()

    # Held-out evaluations: 3 graphs x 3 single-device architectures.
    archs = {"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X, "mic": MIC_KNC}
    evals = []
    for ef, target in ((8, 21), (16, 22), (32, 23)):
        spec = WorkloadSpec(config.base_scale, ef, seed=800 + ef)
        profile = paper_scale_profile(
            spec, target, cache_dir=config.cache_dir
        )
        gfeat = graph_features(get_graph(spec))
        cands = candidate_mn_grid(config.candidate_count, seed=spec.seed)
        for arch in archs.values():
            model = CostModel(arch)
            secs = evaluate_single(profile, model, cands)
            feats = sample_from_features(gfeat, arch, arch)
            evals.append((profile, model, feats, float(secs.min())))

    rows: list[dict] = []
    for name, cols in BLOCKS.items():
        scaler = StandardScaler()
        Xs = scaler.fit_transform(X[:, cols])
        reg_m = SVR(c=30.0, epsilon=0.05).fit(Xs, log_m)
        reg_n = SVR(c=30.0, epsilon=0.05).fit(Xs, log_n)
        fracs = []
        for profile, model, feats, best in evals:
            fs = scaler.transform(feats[None, cols])
            m = float(np.clip(np.exp2(reg_m.predict(fs)[0]), 1, 1000))
            n = float(np.clip(np.exp2(reg_n.predict(fs)[0]), 1, 1000))
            achieved = float(
                evaluate_single(profile, model, np.array([[m, n]]))[0]
            )
            fracs.append(best / achieved)
        rows.append(
            {"features": name, "frac_of_exhaustive": geometric_mean(fracs)}
        )
    # Constant predictor: geometric-mean (M, N) of the corpus.
    const_m = float(np.exp2(log_m.mean()))
    const_n = float(np.exp2(log_n.mean()))
    fracs = []
    for profile, model, _, best in evals:
        achieved = float(
            evaluate_single(profile, model, np.array([[const_m, const_n]]))[0]
        )
        fracs.append(best / achieved)
    rows.append(
        {"features": "constant_mn", "frac_of_exhaustive": geometric_mean(fracs)}
    )
    result = ExperimentResult(
        name="ablation_features",
        title="Ablation — Fig. 7 feature blocks (fraction of exhaustive "
        "achieved on held-out graph x arch combinations)",
        rows=rows,
    )
    by = {r["features"]: r["frac_of_exhaustive"] for r in rows}
    result.notes.append(
        "Section III-C claims the best point depends on both graph and "
        f"platform; measured: full={by['full']:.0%}, "
        f"graph_only={by['graph_only']:.0%}, arch_only={by['arch_only']:.0%}, "
        f"constant={by['constant_mn']:.0%}"
    )
    result.notes.append(
        "finding: on a corpus where every graph shares the Graph 500 "
        "(A, B, C, D), the architecture block carries most of the signal "
        "— the graph block's V/E add little beyond the plateau width; "
        "the paper's claim would need construction-parameter diversity "
        "to test fully"
    )
    return result
