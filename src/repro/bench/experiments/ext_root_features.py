"""Extension — do root features fix the source-dependence gap?

``ext-sources`` found the best switching point materially depends on
the BFS root, which the paper's Fig. 7 features cannot express.  This
experiment trains the root-free predictor and the root-aware variant
(two extra features: the root's degree, absolutely and relative to the
mean) on the *same* multi-root corpus, then evaluates both on held-out
roots of a held-out graph: achieved traversal time as a fraction of
that root's exhaustive best.
"""

from __future__ import annotations

import numpy as np

from repro.arch.costmodel import CostModel
from repro.arch.specs import CPU_SANDY_BRIDGE
from repro.bench.metrics import geometric_mean
from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bfs.profiler import pick_sources, profile_bfs
from repro.graph.generators import rmat
from repro.graph.stats import graph_features
from repro.ml.dataset import TrainingSet, sample_from_features
from repro.tuning.predictor import SwitchingPointPredictor
from repro.tuning.rootaware import (
    RootAwarePredictor,
    build_root_training_set,
    make_root_sample,
    root_features,
)
from repro.tuning.search import candidate_mn_grid, evaluate_single
from repro.tuning.training import ProfiledGraph, _plateau_center

__all__ = ["run"]

ROOTS_PER_GRAPH = 6


def _multi_root_rows(config: BenchConfig, scales, seeds):
    """(ProfiledGraph, source, root_block) rows over several roots."""
    rows = []
    factor_target = 22
    from repro.arch.calibration import scale_profile

    for scale in scales:
        for seed in seeds:
            graph = rmat(scale, 16, seed=7000 + 100 * scale + seed)
            gfeat = graph_features(graph)
            factor = 2.0 ** (factor_target - scale)
            # Stratified roots: uniform picks plus the hub and a
            # low-degree vertex — uniform sampling almost never draws a
            # hub, yet hub roots are where the switching point moves.
            uniform = pick_sources(graph, ROOTS_PER_GRAPH - 2, seed=seed)
            hub = int(np.argmax(graph.degrees))
            low = int(
                np.nonzero(graph.degrees == graph.degrees[graph.degrees > 0].min())[0][0]
            )
            roots = np.unique(
                np.concatenate([uniform, [hub, low]])
            )
            for i, root in enumerate(roots):
                profile, _ = profile_bfs(graph, int(root))
                pg = ProfiledGraph(
                    graph=graph,
                    profile=scale_profile(profile, factor),
                    features=np.concatenate(
                        [gfeat[:2] * factor, gfeat[2:]]
                    ),
                    tag=f"s{scale}r{i}",
                )
                rows.append((pg, int(root), root_features(graph, int(root))))
    return rows


def run(config: BenchConfig = BenchConfig()) -> ExperimentResult:
    """Head-to-head: root-free vs root-aware prediction."""
    pairs = [(CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE)]
    model = CostModel(CPU_SANDY_BRIDGE)
    cands = candidate_mn_grid(config.candidate_count, seed=config.seeds[0])

    train_rows = _multi_root_rows(
        config, scales=(config.base_scale - 1, config.base_scale), seeds=(0, 1)
    )
    # Root-aware corpus.
    aware_corpus = build_root_training_set(
        train_rows, pairs, candidates=cands
    )
    aware = RootAwarePredictor().fit(aware_corpus)
    # Root-free corpus over the same rows (duplicate features per root —
    # exactly the degeneracy the root block resolves).
    free_corpus = TrainingSet()
    for (pg, _, _), lm, ln in zip(
        train_rows, aware_corpus.log_m, aware_corpus.log_n
    ):
        free_corpus.add(
            sample_from_features(pg.features, *pairs[0]),
            float(np.exp2(lm)),
            float(np.exp2(ln)),
        )
    free = SwitchingPointPredictor().fit(free_corpus)

    # Held-out graphs, held-out roots (two graphs widen root diversity —
    # the interesting cases are atypical hub/leaf roots).
    eval_rows = _multi_root_rows(
        config, scales=(config.base_scale,), seeds=(8, 9)
    )
    rows: list[dict] = []
    for pg, root, rblock in eval_rows:
        secs = evaluate_single(pg.profile, model, cands)
        best = float(secs.min())
        mf, nf = free.predict_sample(
            sample_from_features(pg.features, *pairs[0])
        )
        ma, na = aware.predict_sample(
            np.concatenate(
                [sample_from_features(pg.features, *pairs[0]), rblock]
            )
        )
        t_free = float(
            evaluate_single(pg.profile, model, np.array([[mf, nf]]))[0]
        )
        t_aware = float(
            evaluate_single(pg.profile, model, np.array([[ma, na]]))[0]
        )
        rows.append(
            {
                "root": root,
                "root_degree": pg.graph.degree(root),
                "frac_root_free": best / t_free,
                "frac_root_aware": best / t_aware,
            }
        )
    result = ExperimentResult(
        name="ext_root_features",
        title="Extension — root-free vs root-aware switching-point "
        "prediction (fraction of per-root exhaustive best)",
        rows=rows,
    )
    gm_free = geometric_mean(r["frac_root_free"] for r in rows)
    gm_aware = geometric_mean(r["frac_root_aware"] for r in rows)
    worst_free = min(r["frac_root_free"] for r in rows)
    worst_aware = min(r["frac_root_aware"] for r in rows)
    result.notes.append(
        f"root-free: geomean {gm_free:.0%} / worst root {worst_free:.0%} "
        f"of the per-root exhaustive best; root-aware: {gm_aware:.0%} / "
        f"{worst_aware:.0%}"
    )
    if gm_aware > gm_free + 0.02 and worst_aware >= worst_free:
        verdict = (
            "root features help on this corpus, concentrated on atypical "
            "roots — two extra features, one CSR lookup at runtime"
        )
    elif gm_aware < gm_free - 0.02:
        verdict = (
            "root features HURT here: with only tens of corpus rows the "
            "extra dimensions add variance faster than signal"
        )
    else:
        verdict = (
            "no consistent effect at this corpus size — the cross-root "
            "regret tail (ext-sources) is real but rare, and root degree "
            "alone does not explain it; a profile-derived feature "
            "(measured level-1 frontier) is the next candidate"
        )
    result.notes.append(
        "verdict (honest, seed-sensitive at these corpus sizes): " + verdict
    )
    return result
