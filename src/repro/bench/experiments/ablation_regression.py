"""Ablation — regression model choice for switching-point prediction.

The paper picks SVM regression "over other regression approaches"
(Section II-C) for parallelizability and small-sample accuracy.  This
ablation trains SVR-RBF, SVR-linear, kernel ridge and ordinary least
squares on the same corpus and compares (a) log-space prediction error
and (b) achieved traversal time as a fraction of the exhaustive best on
held-out graphs — (b) is what actually matters.
"""

from __future__ import annotations

import numpy as np

from repro.arch.costmodel import CostModel
from repro.arch.specs import CPU_SANDY_BRIDGE
from repro.bench.experiments._shared import corpus_arch_pairs, corpus_graphs
from repro.bench.metrics import geometric_mean
from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bench.workloads import WorkloadSpec, get_graph, paper_scale_profile
from repro.graph.stats import graph_features
from repro.ml.dataset import sample_from_features
from repro.ml.ridge import KernelRidge, LinearRegression
from repro.ml.scaler import StandardScaler
from repro.ml.svr import SVR
from repro.tuning.search import candidate_mn_grid, evaluate_single
from repro.tuning.training import build_training_set

__all__ = ["run"]


def _models() -> dict[str, object]:
    return {
        "svr_rbf": SVR(c=30.0, epsilon=0.05, kernel="rbf", gamma="scale"),
        # A low-rank linear Gram keeps SMO cycling at high C; the linear
        # baseline therefore runs gently regularized.
        "svr_linear": SVR(c=1.0, epsilon=0.05, kernel="linear", max_iter=50_000),
        "kernel_ridge": KernelRidge(alpha=0.5, gamma=0.2),
        "linear_lsq": LinearRegression(),
    }


def run(config: BenchConfig = BenchConfig()) -> ExperimentResult:
    """Run the regression-model ablation."""
    graphs = corpus_graphs(config)
    pairs = corpus_arch_pairs()
    corpus = build_training_set(graphs, pairs, seed=config.seeds[0])
    X, log_m, log_n = corpus.as_arrays()
    scaler = StandardScaler()
    Xs = scaler.fit_transform(X)

    cpu = CPU_SANDY_BRIDGE
    model = CostModel(cpu)
    eval_specs = [
        (WorkloadSpec(config.base_scale, ef, seed=700 + ef), target)
        for ef, target in ((8, 21), (16, 22), (32, 23))
    ]
    evals = []
    for spec, target_scale in eval_specs:
        profile = paper_scale_profile(
            spec, target_scale, cache_dir=config.cache_dir
        )
        cands = candidate_mn_grid(config.candidate_count, seed=spec.seed)
        secs = evaluate_single(profile, model, cands)
        feats = sample_from_features(
            graph_features(get_graph(spec)), cpu, cpu
        )
        evals.append((profile, feats, float(secs.min())))

    rows: list[dict] = []
    for name, template in _models().items():
        reg_m = type(template)(**_params(template))
        reg_n = type(template)(**_params(template))
        reg_m.fit(Xs, log_m)  # type: ignore[attr-defined]
        reg_n.fit(Xs, log_n)  # type: ignore[attr-defined]
        train_rmse = float(
            np.sqrt(np.mean((reg_m.predict(Xs) - log_m) ** 2))  # type: ignore[attr-defined]
        )
        fracs = []
        for profile, feats, best in evals:
            fs = scaler.transform(feats[None, :])
            m = float(np.clip(np.exp2(reg_m.predict(fs)[0]), 1, 1000))  # type: ignore[attr-defined]
            n = float(np.clip(np.exp2(reg_n.predict(fs)[0]), 1, 1000))  # type: ignore[attr-defined]
            achieved = float(
                evaluate_single(profile, model, np.array([[m, n]]))[0]
            )
            fracs.append(best / achieved)
        rows.append(
            {
                "model": name,
                "train_rmse_log2": train_rmse,
                "frac_of_exhaustive": geometric_mean(fracs),
            }
        )
    result = ExperimentResult(
        name="ablation_regression",
        title="Ablation — regression model for switching-point prediction",
        rows=rows,
    )
    best_row = max(rows, key=lambda r: r["frac_of_exhaustive"])
    result.notes.append(
        f"paper: SVR reaches 95% of exhaustive; best here: "
        f"{best_row['model']} at {best_row['frac_of_exhaustive']:.0%}"
    )
    return result


def _params(template: object) -> dict:
    """Constructor kwargs to clone a template model."""
    if isinstance(template, SVR):
        return {
            "c": template.c,
            "epsilon": template.epsilon,
            "kernel": template.kernel,
            "gamma": template.gamma,
        }
    if isinstance(template, KernelRidge):
        return {
            "alpha": template.alpha,
            "kernel": template.kernel,
            "gamma": template.gamma,
        }
    return {}
