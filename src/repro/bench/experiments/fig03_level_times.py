"""Fig. 3 — per-level top-down vs bottom-up times.

Paper claim: "In the beginning bottom-up takes more time than top-down.
In the middle bottom-up is faster than top-down.  Finally bottom-up
becomes slower than top-down" — i.e. the two curves cross twice.

Reproduced by pricing a paper-scale profile on the CPU model (the
figure in the paper is a CPU measurement).
"""

from __future__ import annotations

from repro.arch.costmodel import CostModel
from repro.arch.specs import CPU_SANDY_BRIDGE
from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bench.workloads import WorkloadSpec, paper_scale_profile

__all__ = ["run"]


def run(config: BenchConfig = BenchConfig()) -> ExperimentResult:
    """Regenerate the Fig. 3 series (CPU per-level TD/BU seconds)."""
    spec = WorkloadSpec(
        scale=config.base_scale, edgefactor=16, seed=config.seeds[0]
    )
    profile = paper_scale_profile(spec, 22, cache_dir=config.cache_dir)
    times = CostModel(CPU_SANDY_BRIDGE).time_matrix(profile)
    rows: list[dict] = []
    for i in range(len(profile)):
        rows.append(
            {
                "level": i + 1,
                "top_down_s": float(times[i, 0]),
                "bottom_up_s": float(times[i, 1]),
                "faster": "td" if times[i, 0] <= times[i, 1] else "bu",
            }
        )
    winners = [r["faster"] for r in rows]
    crossings = sum(
        1 for a, b in zip(winners, winners[1:]) if a != b
    )
    result = ExperimentResult(
        name="fig03_level_times",
        title="Fig. 3 — per-level TD vs BU seconds (CPU model, SCALE 22)",
        rows=rows,
        meta={"measured_scale": spec.scale, "target_scale": 22},
    )
    result.notes.append(
        f"paper: bottom-up slower early, faster in the middle, slower at "
        f"the end (two crossings); measured: winners={winners}, "
        f"{crossings} crossing(s)"
    )
    return result
