"""Fig. 8 — switching-point selection quality, cross-architecture.

For each evaluation graph the switching point is chosen four ways over
1,000 candidates (Random / Average / Regression / Exhaustive), and each
choice's traversal time is compared against the worst candidate.

Paper claims: Regression ≈ 95% of Exhaustive performance on average;
~6× speedup over Random; ~7× over Average; ~695× over the worst
switching point; prediction overhead < 0.1% of BFS time.
"""

from __future__ import annotations

from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X
from repro.arch.machine import SimulatedMachine
from repro.bench.experiments._shared import (
    scaled_graph_features,
    train_default_predictor,
)
from repro.bench.metrics import geometric_mean
from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bench.workloads import WorkloadSpec, paper_scale_profile
from repro.hetero.cross import run_cross_architecture
from repro.ml.dataset import sample_from_features
from repro.obs.clock import now
from repro.tuning.search import (
    candidate_cross_grid,
    evaluate_cross,
    summarize_search,
)

__all__ = ["run"]


def run(config: BenchConfig = BenchConfig()) -> ExperimentResult:
    """Regenerate the Fig. 8 bars."""
    predictor = train_default_predictor(config)
    machine = SimulatedMachine({"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X})
    rows: list[dict] = []
    eval_specs = [
        (WorkloadSpec(config.base_scale, ef, seed=900 + ef), target)
        for ef, target in ((8, 21), (16, 22), (32, 23))
    ]
    for spec, target_scale in eval_specs:
        profile = paper_scale_profile(
            spec, target_scale, cache_dir=config.cache_dir
        )
        gfeat = scaled_graph_features(config, spec, target_scale)
        cands = candidate_cross_grid(
            config.candidate_count, seed=spec.seed
        )
        secs = evaluate_cross(profile, machine, cands)
        outcome = summarize_search(cands, secs, seed=spec.seed + 1)

        cross_sample = sample_from_features(
            gfeat, CPU_SANDY_BRIDGE, GPU_K20X
        )
        gpu_sample = sample_from_features(gfeat, GPU_K20X, GPU_K20X)
        # Steady-state prediction cost (the runtime path runs warm).
        predict_seconds = float("inf")
        for _ in range(5):
            t0 = now()
            m1, n1 = predictor.predict_sample(cross_sample)
            m2, n2 = predictor.predict_sample(gpu_sample)
            predict_seconds = min(predict_seconds, now() - t0)
        reg_seconds = run_cross_architecture(
            machine, profile, m1, n1, m2, n2
        ).total_seconds

        rows.append(
            {
                "graph": f"scale={target_scale} ef={spec.edgefactor}",
                "worst_s": outcome.worst_seconds,
                "average_s": outcome.average_seconds,
                "random_s": outcome.random_seconds,
                "regression_s": reg_seconds,
                "exhaustive_s": outcome.best_seconds,
                "reg_vs_exhaustive": outcome.best_seconds / reg_seconds,
                "reg_over_random": outcome.random_seconds / reg_seconds,
                "reg_over_average": outcome.average_seconds / reg_seconds,
                "reg_over_worst": outcome.worst_seconds / reg_seconds,
                "predict_overhead_frac": predict_seconds / reg_seconds,
            }
        )
    result = ExperimentResult(
        name="fig08_regression_quality",
        title="Fig. 8 — switching-point selection quality (CPU+GPU cross)",
        rows=rows,
        meta={"candidates": config.candidate_count},
    )
    eff = geometric_mean(r["reg_vs_exhaustive"] for r in rows)
    over_worst = geometric_mean(r["reg_over_worst"] for r in rows)
    over_random = geometric_mean(r["reg_over_random"] for r in rows)
    over_avg = geometric_mean(r["reg_over_average"] for r in rows)
    result.notes.append(
        f"paper: regression = 95% of exhaustive, 6x over random, 7x over "
        f"average, 695x over worst; measured (geomean): "
        f"{100 * eff:.0f}% of exhaustive, {over_random:.1f}x over random, "
        f"{over_avg:.1f}x over average, {over_worst:.0f}x over worst"
    )
    result.notes.append(
        "paper: prediction overhead < 0.1% of BFS time; measured max "
        f"fraction: {max(r['predict_overhead_frac'] for r in rows):.2%} "
        "(wall-clock prediction vs simulated traversal time)"
    )
    return result
