"""Table IV — step-by-step optimization on the 8M-vertex/128M-edge graph.

Reproduces the full eight-approach level-by-level time matrix:
GPUTD, GPUBU, GPUCB, CPUTD, CPUBU, CPUCB, CPUTD+GPUBU, CPUTD+GPUCB —
with each combination choosing directions by the oracle per-level rule
(as the paper's tuned combinations effectively do) and the cross rows
built from Algorithm-3-shaped plans.

Paper headline speedups over GPUTD: 1.1 (GPUBU), 16.5 (GPUCB), 3.8
(CPUTD), 4.6 (CPUBU), 13.0 (CPUCB), 32.8 (CPUTD+GPUBU), 36.1
(CPUTD+GPUCB).
"""

from __future__ import annotations

import numpy as np

from repro.arch.calibration import TABLE_IV_SPEEDUPS
from repro.arch.machine import PlanStep, SimulatedMachine
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X
from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bench.workloads import WorkloadSpec, paper_scale_profile
from repro.bfs.result import Direction
from repro.bfs.trace import LevelProfile

__all__ = ["run", "build_approaches"]

TD, BU = Direction.TOP_DOWN, Direction.BOTTOM_UP


def build_approaches(
    machine: SimulatedMachine, profile: LevelProfile
) -> dict[str, list[PlanStep]]:
    """The eight Table IV plans over ``profile``."""
    depth = len(profile)
    mats = machine.time_matrices(profile)
    gpu_t, cpu_t = mats["gpu"], mats["cpu"]

    def cb(dev: str, t: np.ndarray) -> list[PlanStep]:
        """Per-level argmin combination plan on one device."""
        return [
            PlanStep(dev, TD if t[i, 0] <= t[i, 1] else BU)
            for i in range(depth)
        ]

    gpu_cb = cb("gpu", gpu_t)
    cpu_cb = cb("cpu", cpu_t)

    def best_handoff(tail_cost: np.ndarray) -> int:
        """Handoff level minimizing CPU-TD prefix + GPU tail — what a
        correctly tuned (M1, N1) achieves (h = 0 means all-GPU)."""
        prefix = np.concatenate([[0.0], np.cumsum(cpu_t[:, 0])])
        suffix = np.concatenate([np.cumsum(tail_cost[::-1])[::-1], [0.0]])
        totals = prefix + suffix
        return int(np.argmin(totals))

    # CPUTD+GPUBU: optimally placed handoff, then GPU bottom-up to the
    # end (the paper's first cross variant).
    h_bu = best_handoff(gpu_t[:, 1])
    cpu_gpubu = [
        PlanStep("cpu", TD) if i < h_bu else PlanStep("gpu", BU)
        for i in range(depth)
    ]
    # CPUTD+GPUCB: optimally placed handoff, then the GPU combination
    # (its tail switches back to GPU top-down).
    gpu_cb_cost = np.minimum(gpu_t[:, 0], gpu_t[:, 1])
    h_cb = best_handoff(gpu_cb_cost)
    cpu_gpucb = [
        PlanStep("cpu", TD) if i < h_cb else gpu_cb[i]
        for i in range(depth)
    ]
    return {
        "GPUTD": [PlanStep("gpu", TD)] * depth,
        "GPUBU": [PlanStep("gpu", BU)] * depth,
        "GPUCB": gpu_cb,
        "CPUTD": [PlanStep("cpu", TD)] * depth,
        "CPUBU": [PlanStep("cpu", BU)] * depth,
        "CPUCB": cpu_cb,
        "CPUTD+GPUBU": cpu_gpubu,
        "CPUTD+GPUCB": cpu_gpucb,
    }


def run(config: BenchConfig = BenchConfig()) -> ExperimentResult:
    """Regenerate Table IV."""
    spec = WorkloadSpec(
        scale=config.base_scale, edgefactor=16, seed=config.seeds[0]
    )
    profile = paper_scale_profile(spec, 23, cache_dir=config.cache_dir)
    machine = SimulatedMachine({"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X})
    approaches = build_approaches(machine, profile)
    reports = {
        name: machine.run(profile, plan) for name, plan in approaches.items()
    }
    baseline = reports["GPUTD"].total_seconds
    rows: list[dict] = []
    for level in range(len(profile)):
        row: dict = {"level": level + 1}
        for name, rep in reports.items():
            row[name] = float(
                rep.level_seconds[level] + rep.transfer_seconds[level]
            )
        rows.append(row)
    totals: dict = {"level": "total"}
    speedups: dict = {"level": "speedup"}
    for name, rep in reports.items():
        totals[name] = rep.total_seconds
        speedups[name] = baseline / rep.total_seconds
    rows.append(totals)
    rows.append(speedups)

    result = ExperimentResult(
        name="table4_step_by_step",
        title="Table IV — per-level seconds, 8M vertices / 128M edges "
        "(measured counters scaled to SCALE 23)",
        rows=rows,
        meta={
            "measured_scale": spec.scale,
            "paper_speedups": TABLE_IV_SPEEDUPS,
        },
    )
    measured = {k: float(v) for k, v in speedups.items() if k != "level"}
    result.notes.append(
        "paper speedups over GPUTD: "
        + ", ".join(f"{k}={v}" for k, v in TABLE_IV_SPEEDUPS.items())
    )
    result.notes.append(
        "measured speedups over GPUTD: "
        + ", ".join(f"{k}={v:.1f}" for k, v in measured.items())
    )
    best = max(measured, key=measured.get)  # type: ignore[arg-type]
    result.notes.append(
        f"best approach measured: {best} (paper: CPUTD+GPUCB)"
    )
    return result
