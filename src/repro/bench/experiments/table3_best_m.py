"""Table III — best switching point M across graphs on the CPU.

Paper claim: after extending the search range to [1, 300], the best M
varies widely across graphs (their values: 54–275 over SCALE 21–23 ×
edgefactor 8/16/32) — the motivation for predicting M instead of fixing
it.  Reproduced with the CPU cost model over paper-scale profiles and a
[1, ~1000] quarter-octave M grid.
"""

from __future__ import annotations

from repro.arch.costmodel import CostModel
from repro.arch.specs import CPU_SANDY_BRIDGE
from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bench.workloads import PAPER_SUITE, WorkloadSpec, paper_scale_profile
from repro.tuning.search import best_m_scan

__all__ = ["run", "PAPER_BEST_M"]

#: The paper's Table III row (SCALE, edgefactor) -> best M.
PAPER_BEST_M: dict[tuple[int, int], int] = {
    (21, 8): 60, (21, 16): 114, (21, 32): 73,
    (22, 8): 275, (22, 16): 258, (22, 32): 54,
    (23, 8): 258, (23, 16): 97, (23, 32): 56,
}


def run(config: BenchConfig = BenchConfig()) -> ExperimentResult:
    """Regenerate Table III."""
    model = CostModel(CPU_SANDY_BRIDGE)
    rows: list[dict] = []
    best_values: list[float] = []
    for target_scale, ef in PAPER_SUITE:
        spec = WorkloadSpec(
            scale=config.base_scale,
            edgefactor=ef,
            seed=config.seeds[0] + 10 * target_scale + ef,
        )
        profile = paper_scale_profile(
            spec, target_scale, cache_dir=config.cache_dir
        )
        best_m, secs = best_m_scan(profile, model)
        best_values.append(best_m)
        rows.append(
            {
                "scale": target_scale,
                "edgefactor": ef,
                "best_m": round(best_m, 1),
                "paper_best_m": PAPER_BEST_M.get((target_scale, ef)),
                "worst_over_best": float(secs.max() / secs.min()),
            }
        )
    spread = max(best_values) / min(best_values)
    result = ExperimentResult(
        name="table3_best_m",
        title="Table III — best M per graph (CPU)",
        rows=rows,
        meta={"measured_scale": config.base_scale},
    )
    result.notes.append(
        f"paper: best M spans 54-275 across graphs (5.1x spread); "
        f"measured spread: {spread:.1f}x — the point is that no single M "
        "is right, which both reproduce"
    )
    return result
