"""Ablation — what each threshold of the switching rule contributes.

Compares, on the CPU model over paper-scale profiles:

* pure top-down / pure bottom-up (no switching at all);
* M-only rule (N disabled at 10⁶ — vertex test never fires);
* N-only rule (M disabled);
* the full (M, N) rule (each at its exhaustive best);
* Beamer's hysteresis heuristic with its stock α=14, β=24;
* the per-level oracle plan (upper bound).

The paper takes the two-threshold rule from Beamer; this quantifies how
much of the oracle each variant captures.
"""

from __future__ import annotations

import numpy as np

from repro.arch.costmodel import CostModel
from repro.arch.specs import CPU_SANDY_BRIDGE
from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bench.workloads import WorkloadSpec, paper_scale_profile
from repro.tuning.policy import HeuristicBeamerPolicy
from repro.bfs.hybrid import LevelState
from repro.tuning.search import candidate_mn_grid, evaluate_single

__all__ = ["run"]


def _beamer_directions(profile, alpha: float, beta: float) -> list[str]:
    policy = HeuristicBeamerPolicy(alpha=alpha, beta=beta)
    dirs = []
    for rec in profile:
        dirs.append(
            policy.direction(
                LevelState(
                    depth=rec.level,
                    frontier_vertices=rec.frontier_vertices,
                    frontier_edges=rec.frontier_edges,
                    num_vertices=profile.num_vertices,
                    num_edges=profile.num_edges,
                    unvisited_vertices=rec.unvisited_vertices,
                )
            )
        )
    return dirs


def run(config: BenchConfig = BenchConfig()) -> ExperimentResult:
    """Run the policy ablation."""
    model = CostModel(CPU_SANDY_BRIDGE)
    rows: list[dict] = []
    for target_scale, ef in ((22, 16), (23, 16), (22, 32)):
        spec = WorkloadSpec(
            scale=config.base_scale,
            edgefactor=ef,
            seed=config.seeds[0] + target_scale * 100 + ef,
        )
        profile = paper_scale_profile(
            spec, target_scale, cache_dir=config.cache_dir
        )
        times = model.time_matrix(profile)
        oracle = float(np.minimum(times[:, 0], times[:, 1]).sum())
        pure_td = float(times[:, 0].sum())
        pure_bu = float(times[:, 1].sum())

        grid = candidate_mn_grid(config.candidate_count, seed=spec.seed)
        m_only = grid.copy()
        m_only[:, 1] = 1e-6  # N test never true -> M decides alone
        n_only = grid.copy()
        n_only[:, 0] = 1e-6
        best_m_only = float(evaluate_single(profile, model, m_only).min())
        best_n_only = float(evaluate_single(profile, model, n_only).min())
        best_mn = float(evaluate_single(profile, model, grid).min())
        beamer = model.traversal_seconds(
            profile, _beamer_directions(profile, 14.0, 24.0)
        )
        rows.append(
            {
                "graph": f"scale={target_scale} ef={ef}",
                "pure_td_s": pure_td,
                "pure_bu_s": pure_bu,
                "m_only_s": best_m_only,
                "n_only_s": best_n_only,
                "mn_s": best_mn,
                "beamer_default_s": beamer,
                "oracle_s": oracle,
                "mn_of_oracle": oracle / best_mn,
                "m_only_of_oracle": oracle / best_m_only,
            }
        )
    result = ExperimentResult(
        name="ablation_policy",
        title="Ablation — switching-rule variants vs the per-level oracle "
        "(CPU model)",
        rows=rows,
    )
    result.notes.append(
        "the tuned (M, N) rule should recover nearly all of the oracle; "
        "single-threshold variants may match it on these unimodal "
        "frontiers (both counters peak together), which is itself a "
        "finding — N guards the non-R-MAT cases"
    )
    return result
