"""Extension — architecture design-space sweep.

The paper evaluates one CPU and one GPU.  This experiment asks the
forward-looking question its Section VII gestures at: *for which
accelerators is the cross-architecture combination worth it?*  The GPU
preset's memory bandwidth and the CPU preset's core count are swept;
for every pair the best single-device combination is compared against
the Algorithm-3 cross plan.

Expected structure: the cross advantage shrinks as either device
becomes strong enough to win every level alone, and peaks when the two
devices have *complementary* level profiles — the regime the paper's
actual hardware sat in.
"""

from __future__ import annotations

import dataclasses

from repro.arch.machine import SimulatedMachine
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X
from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bench.workloads import WorkloadSpec, paper_scale_profile
from repro.bench.experiments.table4_step_by_step import build_approaches

__all__ = ["run"]

BW_FACTORS = (0.25, 0.5, 1.0, 2.0, 4.0)
CPU_CORES = (4, 8, 16, 32)


def run(config: BenchConfig = BenchConfig()) -> ExperimentResult:
    """Sweep the design space."""
    spec = WorkloadSpec(
        scale=config.base_scale, edgefactor=16, seed=config.seeds[0]
    )
    profile = paper_scale_profile(spec, 23, cache_dir=config.cache_dir)
    rows: list[dict] = []
    for bw in BW_FACTORS:
        gpu = dataclasses.replace(
            GPU_K20X,
            name=f"gpu-{bw}x",
            measured_bw_gbs=GPU_K20X.measured_bw_gbs * bw,
            theoretical_bw_gbs=GPU_K20X.theoretical_bw_gbs * bw,
            bu_win_ns=GPU_K20X.bu_win_ns / bw,
            bu_fail_ns=GPU_K20X.bu_fail_ns / bw,
        )
        for cores in CPU_CORES:
            cpu = CPU_SANDY_BRIDGE.with_cores(cores)
            machine = SimulatedMachine({"cpu": cpu, "gpu": gpu})
            plans = build_approaches(machine, profile)
            cross = machine.run(profile, plans["CPUTD+GPUCB"]).total_seconds
            cpu_cb = machine.run(profile, plans["CPUCB"]).total_seconds
            gpu_cb = machine.run(profile, plans["GPUCB"]).total_seconds
            best_single = min(cpu_cb, gpu_cb)
            rows.append(
                {
                    "gpu_bw_factor": bw,
                    "cpu_cores": cores,
                    "cross_s": cross,
                    "cpu_cb_s": cpu_cb,
                    "gpu_cb_s": gpu_cb,
                    "cross_advantage": best_single / cross,
                    "cross_wins": cross < best_single * 0.999,
                }
            )
    result = ExperimentResult(
        name="ext_arch_sweep",
        title="Extension — cross-architecture advantage across the "
        "(GPU bandwidth, CPU cores) design space",
        rows=rows,
        meta={"measured_scale": config.base_scale},
    )
    wins = sum(r["cross_wins"] for r in rows)
    peak = max(rows, key=lambda r: r["cross_advantage"])
    result.notes.append(
        f"cross-architecture wins on {wins}/{len(rows)} design points; "
        f"peak advantage {peak['cross_advantage']:.2f}x at GPU bandwidth "
        f"{peak['gpu_bw_factor']}x / {peak['cpu_cores']} CPU cores"
    )
    baseline = next(
        r
        for r in rows
        if r["gpu_bw_factor"] == 1.0 and r["cpu_cores"] == 8
    )
    result.notes.append(
        "the paper's actual configuration (1.0x bandwidth, 8 cores) "
        f"shows {baseline['cross_advantage']:.2f}x — inside the winning "
        "region, as its measurements found"
    )
    return result
