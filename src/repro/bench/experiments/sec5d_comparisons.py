"""Section V-D — comparisons against other implementations.

The paper's comparators, mapped onto this reproduction:

* **Graph 500 reference code** — a plain top-down BFS on the CPU
  (that is what the reference OpenMP implementation does).  Paper: the
  tuned CPU implementation wins 4.96–21.0× (average 11.0×); the
  cross-architecture combination wins 16.4–63.2× (average 29.3×).
* **Beamer et al.** — the hybrid with trial-and-error oracle switching
  on the CPU (their own hybrid-oracle).  Paper: 1.12× — i.e. parity;
  the point is that the regression-chosen point matches exhaustive
  tuning, not that it beats it.
* **Gao et al. (MIC)** — reported 0.14 GTEPS on a 64M-vertex graph;
  their implementation is a MIC top-down.  Paper: 13× with the MIC
  combination.
"""

from __future__ import annotations

import numpy as np

from repro.arch.costmodel import CostModel
from repro.arch.machine import SimulatedMachine
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X, MIC_KNC
from repro.bench.metrics import geometric_mean
from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bench.workloads import PAPER_SUITE, WorkloadSpec, paper_scale_profile
from repro.bench.experiments.table4_step_by_step import build_approaches
from repro.bench.experiments.fig08_regression_quality import (
    train_default_predictor,
)
from repro.hetero.planner import single_device_plan

__all__ = ["run"]


def run(config: BenchConfig = BenchConfig()) -> ExperimentResult:
    """Regenerate the Section V-D comparison set."""
    machine = SimulatedMachine(
        {"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X, "mic": MIC_KNC}
    )
    predictor = train_default_predictor(config)
    rows: list[dict] = []
    for target_scale, ef in PAPER_SUITE[:6]:
        spec = WorkloadSpec(
            scale=config.base_scale,
            edgefactor=ef,
            seed=config.seeds[0] + target_scale * 100 + ef,
        )
        profile = paper_scale_profile(
            spec, target_scale, cache_dir=config.cache_dir
        )
        plans = build_approaches(machine, profile)
        graph500_ref = machine.run(profile, plans["CPUTD"]).total_seconds
        beamer_oracle = machine.run(profile, plans["CPUCB"]).total_seconds
        cross = machine.run(profile, plans["CPUTD+GPUCB"]).total_seconds
        # Ours on CPU: the regression-predicted (M, N) combination.
        from repro.bench.experiments._shared import scaled_graph_features
        from repro.ml.dataset import sample_from_features

        gfeat = scaled_graph_features(config, spec, target_scale)
        m, n = predictor.predict_sample(
            sample_from_features(gfeat, CPU_SANDY_BRIDGE, CPU_SANDY_BRIDGE)
        )
        ours_cpu = machine.run(
            profile, single_device_plan(profile, "cpu", m, n)
        ).total_seconds
        # Gao et al.: MIC top-down; ours on MIC: oracle MIC combination.
        mic_t = CostModel(MIC_KNC).time_matrix(profile)
        gao_mic = float(mic_t[:, 0].sum())
        ours_mic = float(np.minimum(mic_t[:, 0], mic_t[:, 1]).sum())
        rows.append(
            {
                "graph": f"scale={target_scale} ef={ef}",
                "ours_cpu_over_graph500": graph500_ref / ours_cpu,
                "cross_over_graph500": graph500_ref / cross,
                "ours_cpu_vs_beamer": beamer_oracle / ours_cpu,
                "ours_mic_over_gao": gao_mic / ours_mic,
            }
        )
    result = ExperimentResult(
        name="sec5d_comparisons",
        title="Section V-D — speedups over other implementations",
        rows=rows,
        meta={"measured_scale": config.base_scale},
    )
    gm = {
        k: geometric_mean(r[k] for r in rows)
        for k in (
            "ours_cpu_over_graph500",
            "cross_over_graph500",
            "ours_cpu_vs_beamer",
            "ours_mic_over_gao",
        )
    }
    result.notes.append(
        f"paper: CPU 11.0x over Graph 500 ref; measured geomean "
        f"{gm['ours_cpu_over_graph500']:.1f}x"
    )
    result.notes.append(
        f"paper: cross-arch 29.3x over Graph 500 ref; measured geomean "
        f"{gm['cross_over_graph500']:.1f}x"
    )
    result.notes.append(
        f"paper: 1.12x vs Beamer (parity); measured geomean "
        f"{gm['ours_cpu_vs_beamer']:.2f}x (<= 1 means oracle slightly "
        "ahead of regression, as expected)"
    )
    result.notes.append(
        f"paper: 13x over Gao et al. on MIC; measured geomean "
        f"{gm['ours_mic_over_gao']:.1f}x"
    )
    return result
