"""Fig. 2 — frontier edge counts (``|E|cq``) per level across scales.

Same workloads and claim shape as Fig. 1, for the edge counter that
actually drives the ``|E|cq < |E| / M`` switching rule.
"""

from __future__ import annotations

import numpy as np

from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bench.workloads import WorkloadSpec, get_profile

__all__ = ["run"]


def run(config: BenchConfig = BenchConfig()) -> ExperimentResult:
    """Regenerate the Fig. 2 series."""
    scales = range(config.base_scale - 3, config.base_scale + 2)
    rows: list[dict] = []
    for scale in scales:
        spec = WorkloadSpec(scale=scale, edgefactor=16, seed=config.seeds[0])
        profile = get_profile(spec, cache_dir=config.cache_dir)
        fe = profile.frontier_edges()
        peak = int(np.argmax(fe))
        rows.append(
            {
                "scale": scale,
                "levels": len(fe),
                "peak_level": peak + 1,
                "peak_edges": int(fe[peak]),
                "peak_share_of_E": float(fe[peak] / (2 * profile.num_edges)),
                "series": fe.tolist(),
                "peak_in_middle": 0 < peak < len(fe) - 1,
            }
        )
    result = ExperimentResult(
        name="fig02_frontier_edges",
        title="Fig. 2 — |E|cq per level (R-MAT, edgefactor 16)",
        rows=rows,
        columns=[
            "scale",
            "levels",
            "peak_level",
            "peak_edges",
            "peak_share_of_E",
            "peak_in_middle",
        ],
        meta={"edgefactor": 16},
    )
    result.notes.append(
        "paper: |E|cq small at first, peaks in the middle; the peak level "
        "concentrates most of the graph's directed edges, which is why "
        "top-down collapses there"
    )
    return result
