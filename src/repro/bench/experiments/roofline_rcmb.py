"""Section III-B / Table II — RCMA vs RCMB placement.

Paper numbers (Table II): SP RCMB of 7.52 (CPU), 12.70 (MIC), 21.01
(GPU); DP RCMB 3.76 / 6.35 / 7.02; BFS-as-SpMV RCMA ≈ 0.5.  The claim:
BFS is memory-bound on every platform, with the largest mismatch on the
architectures with the most compute per byte.
"""

from __future__ import annotations

from repro.arch.roofline import analyze, rcma_spmv
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X, MIC_KNC
from repro.bench.runner import BenchConfig, ExperimentResult

__all__ = ["run", "PAPER_RCMB"]

#: Table II's bottom rows: arch -> (SP RCMB, DP RCMB).
PAPER_RCMB: dict[str, tuple[float, float]] = {
    "cpu-snb": (7.52, 3.76),
    "mic-knc": (12.70, 6.35),
    "gpu-k20x": (21.01, 7.02),
}


def run(config: BenchConfig = BenchConfig()) -> ExperimentResult:
    """Regenerate the RCMA/RCMB comparison."""
    rows: list[dict] = []
    for spec in (CPU_SANDY_BRIDGE, MIC_KNC, GPU_K20X):
        point = analyze(spec)
        paper_sp, paper_dp = PAPER_RCMB[spec.name]
        rows.append(
            {
                "arch": spec.name,
                "rcmb_sp": point.rcmb_sp,
                "paper_rcmb_sp": paper_sp,
                "rcmb_dp": point.rcmb_dp,
                "paper_rcmb_dp": paper_dp,
                "memory_bound": point.memory_bound,
                "bandwidth_gap": point.bandwidth_gap,
            }
        )
    result = ExperimentResult(
        name="roofline_rcmb",
        title="Table II / Section III-B — RCMB per architecture vs "
        f"RCMA(SpMV) = {rcma_spmv(1 << 20):.3f}",
        rows=rows,
    )
    result.notes.append(
        "paper: RCMA 0.5 << RCMB everywhere -> BFS memory-bound on all "
        "three platforms; measured: memory_bound true on "
        f"{sum(r['memory_bound'] for r in rows)}/3"
    )
    return result
