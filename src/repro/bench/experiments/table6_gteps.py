"""Table VI — average combination GTEPS by data size and architecture.

Paper values (GTEPS)::

    architecture   2M vertices   4M vertices   8M vertices
    CPU            3.06          6.14          5.66
    GPU            6.32          6.23          5.00
    MIC            1.64          1.55          1.33

Claims to hold: the MIC is the slowest everywhere; the GPU leads at the
small end; the CPU catches up (and overtakes the GPU) as the working
set outgrows the GPU's cache/occupancy advantages — the paper's
Conclusion: "CPUs achieve better performance for graphs with large
data sizes" because of the better-matched memory bandwidth.
"""

from __future__ import annotations

import numpy as np

from repro.arch.costmodel import CostModel
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X, MIC_KNC
from repro.bench.metrics import harmonic_mean
from repro.bench.runner import BenchConfig, ExperimentResult
from repro.bench.workloads import WorkloadSpec, paper_scale_profile

__all__ = ["run", "PAPER_TABLE6"]

#: arch -> (2M, 4M, 8M) GTEPS from the paper.
PAPER_TABLE6: dict[str, tuple[float, float, float]] = {
    "cpu": (3.06, 6.14, 5.66),
    "gpu": (6.32, 6.23, 5.00),
    "mic": (1.64, 1.55, 1.33),
}


def run(config: BenchConfig = BenchConfig()) -> ExperimentResult:
    """Regenerate Table VI."""
    archs = {"cpu": CPU_SANDY_BRIDGE, "gpu": GPU_K20X, "mic": MIC_KNC}
    sizes = {21: "2M", 22: "4M", 23: "8M"}
    gteps: dict[str, dict[int, list[float]]] = {
        a: {s: [] for s in sizes} for a in archs
    }
    for target_scale in sizes:
        for ef in (8, 16, 32):
            spec = WorkloadSpec(
                scale=config.base_scale,
                edgefactor=ef,
                seed=config.seeds[0] + target_scale * 100 + ef,
            )
            profile = paper_scale_profile(
                spec, target_scale, cache_dir=config.cache_dir
            )
            for name, arch in archs.items():
                t = CostModel(arch).time_matrix(profile)
                secs = float(np.minimum(t[:, 0], t[:, 1]).sum())
                gteps[name][target_scale].append(
                    profile.num_edges / secs / 1e9
                )
    rows: list[dict] = []
    for name in archs:
        row: dict = {"arch": name}
        for target_scale, label in sizes.items():
            row[f"gteps_{label}"] = harmonic_mean(gteps[name][target_scale])
            row[f"paper_{label}"] = PAPER_TABLE6[name][
                list(sizes).index(target_scale)
            ]
        rows.append(row)
    result = ExperimentResult(
        name="table6_gteps",
        title="Table VI — average combination GTEPS by size and architecture",
        rows=rows,
        meta={"measured_scale": config.base_scale},
    )
    by = {r["arch"]: r for r in rows}
    result.notes.append(
        "orderings: MIC slowest everywhere: "
        + str(
            all(
                by["mic"][f"gteps_{label}"]
                < min(by["cpu"][f"gteps_{label}"], by["gpu"][f"gteps_{label}"])
                for label in sizes.values()
            )
        )
    )
    result.notes.append(
        "CPU catches GPU at the large end (paper: CPU 5.66 vs GPU 5.00 at "
        "8M): measured CPU/GPU at 8M = "
        f"{by['cpu']['gteps_8M'] / by['gpu']['gteps_8M']:.2f}"
    )
    return result
