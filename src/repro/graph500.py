"""The Graph 500 benchmark flow (the paper's evaluation protocol).

Implements the specification's structure end to end on this library:

* **kernel 1** — build the graph from the Kronecker edge list (timed);
* **kernel 2** — BFS from ``num_roots`` random search keys (the
  official run uses 64), each *validated* with the five specification
  checks;
* **output** — the statistics block the benchmark reports: min /
  firstquartile / median / thirdquartile / max / mean / stddev /
  harmonic mean for both times and TEPS.

Engines are pluggable: any callable ``(graph, source) -> BFSResult``
works, so the same driver measures top-down, bottom-up, the hybrid, or
the thread-parallel engine — which is how the Section V-D comparisons
against the reference code are framed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.bfs.hybrid import bfs_hybrid
from repro.bfs.profiler import pick_sources
from repro.bfs.result import BFSResult
from repro.bfs.workspace import BFSWorkspace
from repro.errors import BenchError
from repro.graph.csr import CSRGraph
from repro.graph.generators import GRAPH500_PARAMS, RMATParams, rmat_edges
from repro.obs.clock import now
from repro.obs.tracer import Tracer, get_tracer

__all__ = [
    "Stats",
    "Graph500Result",
    "HybridEngine",
    "run_graph500",
    "default_engine",
]

Engine = Callable[[CSRGraph, int], BFSResult]


@dataclass(frozen=True)
class Stats:
    """The Graph 500 statistics block for one series of measurements."""

    minimum: float
    firstquartile: float
    median: float
    thirdquartile: float
    maximum: float
    mean: float
    stddev: float
    harmonic_mean: float

    @classmethod
    def of(cls, values: np.ndarray) -> "Stats":
        """Compute the block for ``values`` (must be positive)."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise BenchError("no measurements")
        if (values <= 0).any():
            raise BenchError("measurements must be positive")
        q1, med, q3 = np.percentile(values, [25, 50, 75])
        return cls(
            minimum=float(values.min()),
            firstquartile=float(q1),
            median=float(med),
            thirdquartile=float(q3),
            maximum=float(values.max()),
            mean=float(values.mean()),
            stddev=float(values.std(ddof=1)) if values.size > 1 else 0.0,
            harmonic_mean=float(values.size / (1.0 / values).sum()),
        )

    def as_dict(self) -> dict:
        """Plain-dict view (for reporting)."""
        return {
            "min": self.minimum,
            "q1": self.firstquartile,
            "median": self.median,
            "q3": self.thirdquartile,
            "max": self.maximum,
            "mean": self.mean,
            "stddev": self.stddev,
            "harmonic_mean": self.harmonic_mean,
        }


@dataclass
class Graph500Result:
    """Everything one benchmark run produces."""

    scale: int
    edgefactor: int
    num_roots: int
    construction_seconds: float
    bfs_seconds: np.ndarray
    teps: np.ndarray
    roots: np.ndarray
    validated: bool
    time_stats: Stats = field(init=False)
    teps_stats: Stats = field(init=False)

    def __post_init__(self) -> None:
        self.time_stats = Stats.of(self.bfs_seconds)
        self.teps_stats = Stats.of(self.teps)

    @property
    def harmonic_mean_teps(self) -> float:
        """The benchmark's headline number."""
        return self.teps_stats.harmonic_mean

    def summary(self) -> str:
        """The reference-output-style text block."""
        lines = [
            f"SCALE: {self.scale}",
            f"edgefactor: {self.edgefactor}",
            f"NBFS: {self.num_roots}",
            f"construction_time: {self.construction_seconds:.4f}",
            f"validated: {self.validated}",
        ]
        for prefix, stats in (
            ("time", self.time_stats),
            ("TEPS", self.teps_stats),
        ):
            for key, value in stats.as_dict().items():
                lines.append(f"{prefix}_{key}: {value:.6g}")
        return "\n".join(lines)


def default_engine(graph: CSRGraph, source: int) -> BFSResult:
    """The library's recommended engine: the hybrid with the moderate
    (M, N) defaults used across the examples."""
    return bfs_hybrid(graph, source, m=20.0, n=100.0)


class HybridEngine:
    """A workspace-caching hybrid engine for repeated traversals.

    The benchmark's 64-root loop is exactly the workload
    :class:`~repro.bfs.workspace.BFSWorkspace` exists for: one instance
    of this engine keeps a warm workspace and reuses it across roots,
    so only the first traversal pays the graph-sized allocations.  The
    workspace is rebuilt automatically when the graph size changes.

    Results alias the workspace arrays; the driver consumes each result
    (validation + TEPS) before the next traversal, which is the
    intended usage.  Call ``result.detach()`` to keep one longer.
    """

    def __init__(self, m: float = 20.0, n: float = 100.0) -> None:
        self.m = float(m)
        self.n = float(n)
        self._workspace: BFSWorkspace | None = None

    def __call__(self, graph: CSRGraph, source: int) -> BFSResult:
        ws = self._workspace
        if ws is None or ws.num_vertices != graph.num_vertices:
            ws = BFSWorkspace.for_graph(graph)
            self._workspace = ws
        return bfs_hybrid(graph, source, m=self.m, n=self.n, workspace=ws)


def run_graph500(
    scale: int,
    edgefactor: int = 16,
    *,
    num_roots: int = 64,
    engine: Engine = default_engine,
    params: RMATParams = GRAPH500_PARAMS,
    seed: int = 0,
    validate: bool = True,
    tracer: Tracer | None = None,
    history: str | Path | None = None,
    recorder=None,
) -> Graph500Result:
    """Execute the full benchmark flow.

    Returns the timed, validated result; raises
    :class:`~repro.errors.ValidationError` if any traversal fails the
    specification checks (when ``validate`` is on).

    ``tracer`` overrides the process-global tracer: kernel 1
    (construction) and every per-root kernel-2 traversal become spans,
    and each root's time and TEPS feed the ``graph500.bfs_seconds`` /
    ``teps`` histograms.  ``history`` names a JSONL run-history store
    (:mod:`repro.obs.history`); when set, the finished run — metrics
    snapshot, span aggregates, harmonic-mean TEPS — is appended to it.
    ``recorder`` accepts an attached
    :class:`~repro.obs.profile.FlightRecorder`: the benchmark stamps
    the constructed graph's fingerprint and the workload into its
    snapshot context (the graph only exists inside this function, so
    the caller cannot).
    """
    if num_roots < 1:
        raise BenchError(f"num_roots must be >= 1, got {num_roots}")
    tr = tracer if tracer is not None else get_tracer()
    # A child process runs this under an installed TraceContext; its
    # baggage (workload identity the spawner attached) is stamped onto
    # kernel 1's span so the stitched trace is self-describing.
    baggage = tr.current_context().baggage
    construction_attrs: dict = {"scale": scale}
    if baggage:
        construction_attrs["baggage"] = dict(baggage)
    src, dst = rmat_edges(scale, edgefactor, params, seed=seed)
    with tr.span("graph500.construction", **construction_attrs):
        t0 = now()
        graph = CSRGraph.from_edges(src, dst, 1 << scale, symmetrize=True)
        construction = now() - t0
    if recorder is not None:
        from repro.obs.profile import graph_fingerprint

        recorder.context.setdefault(
            "workload", f"rmat-s{scale}-ef{edgefactor}-r{num_roots}"
        )
        recorder.context["graph"] = graph_fingerprint(graph)

    roots = pick_sources(graph, num_roots, seed=seed + 1)
    times = np.empty(num_roots, dtype=np.float64)
    teps = np.empty(num_roots, dtype=np.float64)
    for i, root in enumerate(roots):
        with tr.span("graph500.bfs", root=int(root), index=i) as sp:
            t0 = now()
            result = engine(graph, int(root))
            times[i] = now() - t0
            if validate:
                result.validate(graph)
            teps[i] = result.traversed_edges(graph) / times[i]
            sp.set("seconds", float(times[i]))
            sp.set("teps", float(teps[i]))
        tr.observe("graph500.bfs_seconds", float(times[i]))
        tr.observe("teps", float(teps[i]))
    run = Graph500Result(
        scale=scale,
        edgefactor=edgefactor,
        num_roots=num_roots,
        construction_seconds=construction,
        bfs_seconds=times,
        teps=teps,
        roots=roots,
        validated=validate,
    )
    if history is not None:
        from repro.obs.history import HistoryStore, snapshot_run

        HistoryStore(history).append(
            snapshot_run(
                "graph500",
                f"rmat-s{scale}-ef{edgefactor}-r{num_roots}",
                tracer=tr,
                teps=run.harmonic_mean_teps,
                seed=seed,
            )
        )
    return run
