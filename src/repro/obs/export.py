"""Trace exporters: JSONL event streams and Chrome trace-event format.

Two on-disk shapes for one recording:

* **JSONL** (:func:`write_jsonl` / :func:`read_jsonl`) — one JSON object
  per line, first line a meta header (``{"kind": "meta", "format":
  "repro.obs/1", ...}``), then every span and instant event in recorded
  order.  Lossless: :func:`read_jsonl` reconstructs the records exactly,
  so telemetry can be post-processed offline.
* **Chrome trace-event JSON** (:func:`chrome_trace` /
  :func:`write_chrome_trace`) — the ``{"traceEvents": [...]}`` container
  understood by Perfetto and ``chrome://tracing``.  Spans become
  complete events (``ph: "X"``, microsecond ``ts``/``dur``), instant
  events ``ph: "i"``, and each *track* gets a metadata ``thread_name``
  event so the viewer shows one named row per device/worker.

Tracks: a record's ``track`` attribute wins (that is how per-device and
per-worker rows are made, including synthetic ``sim:<device>`` rows laid
out on the simulator's clock); otherwise the recording thread's name is
used.

:func:`validate_chrome_trace` is the schema gate used by the tests and
the CI trace-smoke step; it raises :class:`~repro.errors.ExportError`
with the first offending event.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ExportError
from repro.obs.tracer import EventRecord, SpanRecord, Tracer

__all__ = [
    "JSONL_FORMAT",
    "write_jsonl",
    "read_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]

#: Format tag written into the JSONL meta header.
JSONL_FORMAT = "repro.obs/1"


def write_jsonl(tracer: Tracer, path: str | Path, **meta) -> int:
    """Write the recording as JSONL; returns the number of lines.

    Extra keyword arguments land in the meta header (experiment name,
    graph scale, …).
    """
    spans = tracer.spans()
    events = tracer.events()
    header = {
        "kind": "meta",
        "format": JSONL_FORMAT,
        "trace_id": tracer.trace_id,
        "spans": len(spans),
        "events": len(events),
        "metrics": tracer.metrics.snapshot(),
    }
    header.update(meta)
    lines = [json.dumps(header)]
    lines.extend(json.dumps(r.as_dict()) for r in spans)
    lines.extend(json.dumps(r.as_dict()) for r in events)
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(lines)


def read_jsonl(
    path: str | Path,
) -> tuple[dict, list[SpanRecord], list[EventRecord]]:
    """Read a :func:`write_jsonl` file back into records.

    Returns ``(meta_header, spans, events)``.  Raises
    :class:`~repro.errors.ExportError` on malformed input.
    """
    text = Path(path).read_text(encoding="utf-8")
    rows = []
    for i, line in enumerate(text.splitlines()):
        if not line.strip():
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ExportError(f"{path}:{i + 1}: not JSON: {exc}") from exc
    if not rows or rows[0].get("kind") != "meta":
        raise ExportError(f"{path}: missing meta header line")
    meta = rows[0]
    if meta.get("format") != JSONL_FORMAT:
        raise ExportError(
            f"{path}: unsupported format {meta.get('format')!r}, "
            f"expected {JSONL_FORMAT!r}"
        )
    spans: list[SpanRecord] = []
    events: list[EventRecord] = []
    for i, row in enumerate(rows[1:], start=2):
        kind = row.get("kind")
        if kind == "span":
            spans.append(
                SpanRecord(
                    name=row["name"],
                    start=row["start"],
                    end=row["end"],
                    span_id=row["span_id"],
                    parent_id=row["parent_id"],
                    thread_id=row["thread_id"],
                    thread_name=row["thread_name"],
                    track=row.get("track"),
                    attrs=row.get("attrs", {}),
                )
            )
        elif kind == "event":
            events.append(
                EventRecord(
                    name=row["name"],
                    timestamp=row["timestamp"],
                    thread_id=row["thread_id"],
                    thread_name=row["thread_name"],
                    track=row.get("track"),
                    attrs=row.get("attrs", {}),
                )
            )
        else:
            raise ExportError(f"{path}:{i}: unknown record kind {kind!r}")
    return meta, spans, events


def _json_safe(value):
    """Coerce attrs to JSON-serializable (numpy scalars, tuples)."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _tracks(tracer: Tracer) -> dict[str, int]:
    """Stable track name → tid assignment (sorted for determinism)."""
    names = set()
    for rec in tracer.spans():
        names.add(rec.track or rec.thread_name)
    for rec in tracer.events():
        names.add(rec.track or rec.thread_name)
    return {name: tid for tid, name in enumerate(sorted(names), start=1)}


def chrome_trace(tracer: Tracer, *, pid: int = 1, **meta) -> dict:
    """The recording as a Chrome trace-event ``dict``.

    Timestamps are shifted so the earliest record sits at ``ts=0`` and
    converted to microseconds (the format's unit).  One thread row per
    track; extra keyword arguments land in the container's
    ``otherData``.
    """
    spans = tracer.spans()
    events = tracer.events()
    tracks = _tracks(tracer)
    starts = [r.start for r in spans] + [r.timestamp for r in events]
    t0 = min(starts) if starts else 0.0
    trace_events: list[dict] = []
    for name, tid in tracks.items():
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    for rec in spans:
        trace_events.append(
            {
                "ph": "X",
                "name": rec.name,
                "pid": pid,
                "tid": tracks[rec.track or rec.thread_name],
                "ts": 1e6 * (rec.start - t0),
                "dur": 1e6 * rec.duration,
                "args": _json_safe(rec.attrs),
            }
        )
    for rec in events:
        trace_events.append(
            {
                "ph": "i",
                "name": rec.name,
                "pid": pid,
                "tid": tracks[rec.track or rec.thread_name],
                "ts": 1e6 * (rec.timestamp - t0),
                "s": "t",
                "args": _json_safe(rec.attrs),
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": JSONL_FORMAT,
            "trace_id": tracer.trace_id,
            "metrics": tracer.metrics.snapshot(),
            **{str(k): _json_safe(v) for k, v in meta.items()},
        },
    }


def write_chrome_trace(tracer: Tracer, path: str | Path, **meta) -> dict:
    """Write :func:`chrome_trace` output to ``path`` (returns the dict)."""
    trace = chrome_trace(tracer, **meta)
    Path(path).write_text(json.dumps(trace, indent=1), encoding="utf-8")
    return trace


_PHASES = {"X", "i", "M", "P"}


def validate_chrome_trace(trace: dict | str | Path) -> int:
    """Check a Chrome trace against the subset of the format we emit.

    Accepts the trace dict or a path to the ``.trace.json`` file.
    Returns the number of trace events; raises
    :class:`~repro.errors.ExportError` describing the first violation.
    ``ph: "P"`` sample events (the profiler's flamegraph track) must
    carry a timestamp and, when they reference a stack frame via
    ``sf``, the id must resolve in the trace's ``stackFrames`` map.
    """
    if not isinstance(trace, dict):
        try:
            trace = json.loads(Path(trace).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ExportError(f"cannot read trace: {exc}") from exc
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ExportError("trace must be a dict with a 'traceEvents' list")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ExportError("'traceEvents' must be a list")
    frames = trace.get("stackFrames", {})
    if not isinstance(frames, dict):
        raise ExportError("'stackFrames' must be an object")
    for frame_id, frame in frames.items():
        if not isinstance(frame, dict) or "name" not in frame:
            raise ExportError(f"stackFrames[{frame_id}]: needs a 'name'")
        parent = frame.get("parent")
        if parent is not None and str(parent) not in frames:
            raise ExportError(
                f"stackFrames[{frame_id}]: parent {parent!r} not in map"
            )
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise ExportError(f"{where}: not an object")
        ph = ev.get("ph")
        if ph not in _PHASES:
            raise ExportError(f"{where}: bad phase {ph!r} (want one of {sorted(_PHASES)})")
        for key in ("name", "pid", "tid"):
            if key not in ev:
                raise ExportError(f"{where}: missing {key!r}")
        if ph in ("X", "i", "P"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ExportError(f"{where}: ts must be a number >= 0, got {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ExportError(f"{where}: dur must be a number >= 0, got {dur!r}")
        if ph == "P" and ev.get("sf") is not None:
            if str(ev["sf"]) not in frames:
                raise ExportError(
                    f"{where}: sf {ev['sf']!r} not in stackFrames"
                )
        if ph == "M" and ev.get("name") == "thread_name":
            if "name" not in ev.get("args", {}):
                raise ExportError(f"{where}: thread_name metadata needs args.name")
    return len(events)
