"""SLO policies and multi-window burn-rate alerting.

An :class:`SLOPolicy` states an objective over a telemetry stream:
"at least ``objective`` of observations of ``metric`` must satisfy
``op threshold``" — e.g. ``graph500.bfs<0.5@0.9`` reads *90% of
``graph500.bfs`` span durations stay under 0.5 s*.  The remaining
``1 - objective`` is the error budget, and the **burn rate** is how
fast a window is spending it::

    burn = bad_fraction(window) / (1 - objective)

``burn == 1`` consumes the budget exactly on schedule; ``burn == 10``
spends it ten times too fast.  :class:`BurnRateEvaluator` applies the
standard multi-window rule: alert only when *both* a fast window (last
``fast_windows`` buckets — catches it quickly) and a slow window (last
``slow_windows`` — proves it is not a blip) burn at or above
``burn_threshold``.

The evaluator counts exact per-window ``(count, bad)`` pairs rather
than consulting a sketch, which buys a clean monotonicity property the
property suite verifies: pointwise-worse observations can only raise
both burn rates, so a worse stream never clears an alert a better
stream would have raised.

Alerts are delivered by the collector as ``slo.alert`` instant events
— the same channel ``tuning.drift_alert`` uses — so an attached
:class:`~repro.obs.profile.FlightRecorder` dumps a snapshot the moment
one fires (``slo.alert`` is in its default alert-event set).
"""

from __future__ import annotations

import math
import re
from collections import deque
from dataclasses import dataclass, field

from repro.errors import LiveError

__all__ = [
    "SLOPolicy",
    "SLOAlert",
    "BurnRateEvaluator",
]

_SPEC_RE = re.compile(
    r"^(?P<metric>[a-z0-9_.]+)(?P<op>[<>])(?P<threshold>[0-9.eE+-]+)"
    r"@(?P<objective>[0-9.]+)$"
)


@dataclass(frozen=True)
class SLOPolicy:
    """One objective over one metric stream.

    ``op`` is the *good* direction: ``"<"`` means an observation is
    good when it is strictly below ``threshold`` (latencies), ``">"``
    when strictly above (throughput floors).
    """

    metric: str
    op: str
    threshold: float
    objective: float = 0.99
    window_seconds: float = 1.0
    fast_windows: int = 5
    slow_windows: int = 60
    burn_threshold: float = 2.0

    def __post_init__(self) -> None:
        if self.op not in ("<", ">"):
            raise LiveError(f"SLO op must be '<' or '>', got {self.op!r}")
        if not 0.0 < self.objective < 1.0:
            raise LiveError(
                f"SLO objective must be in (0, 1), got {self.objective}"
            )
        if self.window_seconds <= 0:
            raise LiveError(
                f"window_seconds must be > 0, got {self.window_seconds}"
            )
        if not 1 <= self.fast_windows <= self.slow_windows:
            raise LiveError(
                f"need 1 <= fast_windows <= slow_windows, got "
                f"{self.fast_windows}/{self.slow_windows}"
            )
        if self.burn_threshold <= 0:
            raise LiveError(
                f"burn_threshold must be > 0, got {self.burn_threshold}"
            )

    @classmethod
    def parse(cls, spec: str, **overrides) -> "SLOPolicy":
        """Build a policy from a ``metric<threshold@objective`` spec.

        Examples: ``graph500.bfs<0.5@0.9`` (90% of traversals under
        half a second), ``teps>1e6@0.95`` (95% of roots above a TEPS
        floor).  Window geometry comes from keyword overrides.
        """
        m = _SPEC_RE.match(spec.strip())
        if m is None:
            raise LiveError(
                f"malformed SLO spec {spec!r} "
                "(want metric<threshold@objective)"
            )
        try:
            threshold = float(m.group("threshold"))
            objective = float(m.group("objective"))
        except ValueError as exc:
            raise LiveError(f"malformed SLO spec {spec!r}: {exc}") from exc
        return cls(
            metric=m.group("metric"),
            op=m.group("op"),
            threshold=threshold,
            objective=objective,
            **overrides,
        )

    def spec(self) -> str:
        """The canonical spec string (round-trips through :meth:`parse`)."""
        return f"{self.metric}{self.op}{self.threshold:g}@{self.objective:g}"

    def is_bad(self, value: float) -> bool:
        """Whether one observation spends error budget."""
        if self.op == "<":
            return not value < self.threshold
        return not value > self.threshold


@dataclass(frozen=True)
class SLOAlert:
    """One burn-rate violation (both windows over threshold)."""

    policy: str
    metric: str
    timestamp: float
    fast_burn: float
    slow_burn: float
    fast_bad: int
    fast_count: int
    slow_bad: int
    slow_count: int
    baggage: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready payload (the ``slo.alert`` event attrs)."""
        return {
            "policy": self.policy,
            "metric": self.metric,
            "timestamp": self.timestamp,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "fast_bad": self.fast_bad,
            "fast_count": self.fast_count,
            "slow_bad": self.slow_bad,
            "slow_count": self.slow_count,
            **({"baggage": dict(self.baggage)} if self.baggage else {}),
        }

    def describe(self) -> str:
        """One human-readable line."""
        return (
            f"SLO {self.policy}: fast burn {self.fast_burn:.1f}x "
            f"({self.fast_bad}/{self.fast_count} bad), "
            f"slow burn {self.slow_burn:.1f}x "
            f"({self.slow_bad}/{self.slow_count} bad)"
        )


class BurnRateEvaluator:
    """Exact multi-window burn-rate state for one policy.

    Feed observations with :meth:`record`; ask :meth:`evaluate` for the
    current verdict.  ``firing`` latches between evaluations so the
    collector can emit alerts on the rising edge only.
    """

    def __init__(self, policy: SLOPolicy) -> None:
        if not isinstance(policy, SLOPolicy):
            raise LiveError(
                f"evaluator needs an SLOPolicy, got {type(policy).__name__}"
            )
        self.policy = policy
        # (window_index, count, bad) triples, ascending, bounded by the
        # slow window span.
        self._windows: deque[list[int]] = deque()
        self.firing = False
        self.dropped = 0

    def _index(self, t: float) -> int:
        return int(math.floor(t / self.policy.window_seconds))

    def record(self, t: float, value: float) -> None:
        """Count one observation into its window."""
        idx = self._index(t)
        bad = 1 if self.policy.is_bad(value) else 0
        if self._windows and idx < self._windows[0][0]:
            self.dropped += 1  # older than anything retained
            return
        for entry in self._windows:
            if entry[0] == idx:
                entry[1] += 1
                entry[2] += bad
                break
        else:
            self._windows.append([idx, 1, bad])
            if len(self._windows) > 1 and self._windows[-2][0] > idx:
                # rare out-of-order arrival: indices are unique, so a
                # plain sort restores ascending order
                self._windows = deque(sorted(self._windows))
        horizon = self._windows[-1][0] - self.policy.slow_windows
        while self._windows and self._windows[0][0] <= horizon:
            self._windows.popleft()

    def _burn(self, t: float, span: int) -> tuple[float, int, int]:
        end = self._index(t)
        lo = end - span + 1
        count = bad = 0
        for idx, c, b in self._windows:
            if lo <= idx <= end:
                count += c
                bad += b
        if count == 0:
            return 0.0, 0, 0
        budget = 1.0 - self.policy.objective
        return (bad / count) / budget, bad, count

    def burn_rates(self, t: float) -> tuple[float, float]:
        """Current ``(fast, slow)`` burn rates as of time ``t``."""
        fast, _, _ = self._burn(t, self.policy.fast_windows)
        slow, _, _ = self._burn(t, self.policy.slow_windows)
        return fast, slow

    def evaluate(self, t: float, **baggage) -> SLOAlert | None:
        """Update ``firing`` and return an alert if both windows burn.

        Returns the alert on *every* evaluation while the condition
        holds (the collector keeps rising-edge bookkeeping); ``None``
        otherwise.
        """
        fast, fast_bad, fast_count = self._burn(
            t, self.policy.fast_windows
        )
        slow, slow_bad, slow_count = self._burn(
            t, self.policy.slow_windows
        )
        threshold = self.policy.burn_threshold
        self.firing = fast >= threshold and slow >= threshold
        if not self.firing:
            return None
        return SLOAlert(
            policy=self.policy.spec(),
            metric=self.policy.metric,
            timestamp=float(t),
            fast_burn=fast,
            slow_burn=slow,
            fast_bad=fast_bad,
            fast_count=fast_count,
            slow_bad=slow_bad,
            slow_count=slow_count,
            baggage=dict(baggage),
        )
