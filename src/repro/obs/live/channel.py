"""The cross-process telemetry channel: frames, exporter, spawn helper.

A child process cannot append to the parent's tracer, so it *exports*:
a :class:`ChannelExporter` rides the child tracer as a
:class:`~repro.obs.tracer.TraceListener` and serializes everything into
schema-versioned JSON **frames** (:data:`FRAME_SCHEMA`), sent over any
sink with a ``send_bytes`` method — a ``multiprocessing`` pipe
connection live, or a length-prefixed :class:`CaptureFile` on disk.

Frame kinds (:data:`FRAME_KINDS`):

``hello``
    Opens the stream: schema tag, source label, pid, trace id.
``span_open`` / ``span`` / ``event``
    The tracer callbacks, verbatim.  ``span`` carries the full
    :class:`~repro.obs.tracer.SpanRecord` payload so the collector can
    adopt it into the parent recording with ids intact.
``metrics``
    A cumulative :meth:`~repro.obs.metrics.MetricsRegistry.flat` view,
    flushed whenever a local *root* span closes — live visibility,
    intentionally lossy.
``metrics_final``
    The exact :meth:`~repro.obs.metrics.MetricsRegistry.to_payload`
    dump, sent once at close — what actually merges into the parent
    registry (counters add, histogram observations concatenate).
``bye``
    Closes the stream with totals, the explicit half of the close
    handshake (EOF alone also ends a channel, just less informatively).

:func:`spawn_traced` ties it together: it captures the parent tracer's
:class:`~repro.obs.tracer.TraceContext`, starts a ``multiprocessing``
child that installs the context on a fresh tracer (span ids drawn from
the disjoint ``(child_index + 1) << 32`` range), attaches an exporter,
and runs the target — so the child's spans stitch under the parent's
current span in one Perfetto-loadable trace.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import struct
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

from repro.errors import LiveError
from repro.obs.export import _json_safe
from repro.obs.tracer import (
    Span,
    SpanRecord,
    EventRecord,
    TraceContext,
    TraceListener,
    Tracer,
    get_tracer,
    use_tracer,
)

__all__ = [
    "FRAME_SCHEMA",
    "FRAME_KINDS",
    "encode_frame",
    "decode_frame",
    "CaptureFile",
    "read_capture",
    "ChannelExporter",
    "TracedChild",
    "spawn_traced",
]

#: Schema tag every ``hello`` frame carries; bump on breaking changes.
FRAME_SCHEMA = "repro.obs.live/1"

#: Every frame kind the protocol defines, in lifecycle order.
FRAME_KINDS = (
    "hello",
    "span_open",
    "span",
    "event",
    "metrics",
    "metrics_final",
    "bye",
)

_LENGTH = struct.Struct(">I")

#: Refuse absurd frame lengths when reading captures — a corrupt length
#: prefix must not allocate gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024


def encode_frame(frame: dict) -> bytes:
    """Serialize one frame dict (validates the ``kind``)."""
    if not isinstance(frame, dict) or frame.get("kind") not in FRAME_KINDS:
        raise LiveError(
            f"frame must be a dict with kind in {FRAME_KINDS}, "
            f"got {frame!r}"
        )
    return json.dumps(_json_safe(frame), separators=(",", ":")).encode("utf-8")


def decode_frame(data: bytes) -> dict:
    """Parse one frame back (raises :class:`~repro.errors.LiveError`)."""
    try:
        frame = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise LiveError(f"undecodable frame: {exc}") from exc
    if not isinstance(frame, dict) or frame.get("kind") not in FRAME_KINDS:
        raise LiveError(f"unknown frame kind: {frame!r}")
    return frame


class CaptureFile:
    """A ``send_bytes`` sink writing length-prefixed frames to disk.

    The on-disk shape is ``>I`` big-endian length + UTF-8 JSON payload,
    repeated; :func:`read_capture` reads it back.  Usable anywhere a
    pipe connection is (the exporter only calls ``send_bytes``), which
    is how ``repro-bfs live record`` persists a session for later
    ``live check`` replay.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "wb")
        self.frames = 0

    def send_bytes(self, data: bytes) -> None:
        """Append one frame."""
        if self._fh is None:
            raise LiveError(f"capture {self.path} is closed")
        self._fh.write(_LENGTH.pack(len(data)))
        self._fh.write(data)
        self.frames += 1

    def close(self) -> None:
        """Flush and close (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CaptureFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_capture(
    path: str | Path, *, strict: bool = False, conformance: str | None = None
) -> Iterator[dict]:
    """Yield frames from a :class:`CaptureFile` recording.

    Tolerant by default — a truncated trailing frame (the writer died
    mid-write) ends iteration silently and an undecodable frame is
    skipped; ``strict=True`` raises :class:`~repro.errors.LiveError`
    for either, which is what the CI schema gate wants.

    ``conformance="strict"`` additionally replays every frame through
    the live-channel protocol machine (one per frame source): an
    out-of-order frame — or a stream that ends without completing the
    hello→…→metrics_final→bye handshake — raises
    :class:`~repro.errors.ProtocolError`.  This is the dynamic twin of
    lint rule RPR022.
    """
    checker = None
    if conformance is not None:
        if conformance != "strict":
            raise LiveError(
                f"unknown conformance mode {conformance!r} "
                "(expected 'strict' or None)"
            )
        from repro.obs.live.protocol import FrameConformance

        checker = FrameConformance(strict=True)
    with open(Path(path), "rb") as fh:
        while True:
            prefix = fh.read(_LENGTH.size)
            if not prefix:
                break
            if len(prefix) < _LENGTH.size:
                if strict:
                    raise LiveError(f"{path}: truncated length prefix")
                break
            (length,) = _LENGTH.unpack(prefix)
            if length > MAX_FRAME_BYTES:
                raise LiveError(
                    f"{path}: frame length {length} exceeds "
                    f"{MAX_FRAME_BYTES} (corrupt capture?)"
                )
            data = fh.read(length)
            if len(data) < length:
                if strict:
                    raise LiveError(f"{path}: truncated frame payload")
                break
            try:
                frame = decode_frame(data)
            except LiveError:
                if strict:
                    raise
                continue
            if checker is not None:
                checker.feed(frame)
            yield frame
    if checker is not None:
        checker.finish()


class ChannelExporter(TraceListener):
    """Serializes one tracer's telemetry into channel frames.

    Attach with ``tracer.add_listener(exporter)`` after calling
    :meth:`hello`.  Sends are serialized under a lock (the parallel
    engine's workers close spans concurrently) and a broken sink (the
    reader went away) flips the exporter into a counting no-op instead
    of poisoning the traced workload.
    """

    def __init__(
        self,
        sink,
        tracer: Tracer,
        *,
        source: str,
        root_parent: int | None = None,
    ) -> None:
        if not hasattr(sink, "send_bytes"):
            raise LiveError(
                f"exporter sink needs a send_bytes method, "
                f"got {type(sink).__name__}"
            )
        self.sink = sink
        self.tracer = tracer
        self.source = str(source)
        #: Parent id local *root* spans carry — ``None`` for a fresh
        #: trace, the installed context's parent span id in a child.
        #: A span closing with this parent triggers a metrics flush.
        self.root_parent = root_parent
        self.sent = 0
        self.dropped = 0
        self._lock = threading.Lock()
        self._broken = False
        self._closed = False

    def _send(self, frame: dict) -> None:
        frame["source"] = self.source
        try:
            data = encode_frame(frame)
        except LiveError:
            self.dropped += 1
            return
        with self._lock:
            if self._broken or self._closed:
                self.dropped += 1
                return
            try:
                self.sink.send_bytes(data)
                self.sent += 1
            except (OSError, ValueError, BrokenPipeError):
                self._broken = True
                self.dropped += 1

    def hello(self) -> None:
        """Open the stream (send before attaching as a listener)."""
        self._send(
            {
                "kind": "hello",
                "schema": FRAME_SCHEMA,
                "trace_id": self.tracer.trace_id,
                "pid": os.getpid(),
            }
        )

    # -- listener callbacks --------------------------------------------------

    def on_span_open(self, span: Span) -> None:
        """Announce a live span (the dashboard's active-span rows)."""
        self._send(
            {
                "kind": "span_open",
                "name": span.name,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "thread_name": threading.current_thread().name,
                "start": span.start,
            }
        )

    def on_span_close(self, record: SpanRecord) -> None:
        """Ship the finished span; flush metrics at local roots."""
        self._send({"kind": "span", "record": record.as_dict()})
        # A root span closing means one unit of work finished — the
        # natural moment for a cumulative metrics flush.  With a
        # context installed the local roots carry its parent id.
        if record.parent_id == self.root_parent:
            self.flush()

    def on_event(self, record: EventRecord) -> None:
        """Ship the instant event."""
        self._send({"kind": "event", "record": record.as_dict()})

    # -- flush / close handshake ---------------------------------------------

    def flush(self) -> None:
        """Send a cumulative ``metrics`` frame now."""
        self._send({"kind": "metrics", "flat": self.tracer.metrics.flat()})

    def close(self) -> None:
        """Send ``metrics_final`` + ``bye`` and stop (idempotent)."""
        if self._closed:
            return
        self._send(
            {
                "kind": "metrics_final",
                "payload": self.tracer.metrics.to_payload(),
            }
        )
        self._send(
            {
                "kind": "bye",
                "spans": len(self.tracer.spans()),
                "events": len(self.tracer.events()),
                "frames": self.sent + 1,
                "dropped": self.dropped,
            }
        )
        self._closed = True
        self.tracer.remove_listener(self)


@dataclass
class TracedChild:
    """Handle for one :func:`spawn_traced` child."""

    process: multiprocessing.Process
    connection: "multiprocessing.connection.Connection"
    source: str

    def join(self, timeout: float | None = None) -> int | None:
        """Join the process; returns its exit code (``None`` if alive)."""
        self.process.join(timeout)
        return self.process.exitcode


def _traced_child_main(
    target: Callable,
    args: tuple,
    kwargs: dict,
    context_payload: dict,
    child_index: int,
    source: str,
    conn,
) -> None:
    """Child-process entry: fresh tracer, inherited context, exporter."""
    context = TraceContext.from_dict(context_payload)
    tracer = Tracer(span_id_start=(child_index + 1) << 32)
    exporter = ChannelExporter(
        conn, tracer, source=source, root_parent=context.parent_span_id
    )
    try:
        with tracer.use_context(context), use_tracer(tracer):
            exporter.hello()
            try:
                tracer.add_listener(exporter)
                target(*args, **kwargs)
            finally:
                # close() still sends the metrics_final/bye handshake
                # even when add_listener or the target raised, so the
                # parent-side reader always sees a conformant stream.
                exporter.close()
    finally:
        conn.close()


def spawn_traced(
    target: Callable,
    args: tuple = (),
    kwargs: dict | None = None,
    *,
    tracer: Tracer | None = None,
    child_index: int = 0,
    name: str | None = None,
    baggage: dict | None = None,
    collector=None,
) -> TracedChild:
    """Start ``target(*args, **kwargs)`` in a traced child process.

    The child runs under the calling tracer's current
    :class:`~repro.obs.tracer.TraceContext` (plus ``baggage``), with a
    fresh process-global tracer whose span ids come from the disjoint
    range ``(child_index + 1) << 32`` — give each concurrent child its
    own index.  ``target`` must be picklable (a module-level function).

    Returns a :class:`TracedChild`; read its frames from
    ``handle.connection``, or pass ``collector=`` to register the
    channel with a :class:`~repro.obs.live.Collector` directly.
    """
    if child_index < 0:
        raise LiveError(f"child_index must be >= 0, got {child_index}")
    tr = tracer if tracer is not None else get_tracer()
    context = tr.current_context(**(baggage or {}))
    source = name or f"child-{child_index}"
    recv_conn, send_conn = multiprocessing.Pipe(duplex=False)
    process = multiprocessing.Process(
        target=_traced_child_main,
        args=(
            target,
            tuple(args),
            dict(kwargs or {}),
            context.as_dict(),
            child_index,
            source,
            send_conn,
        ),
        name=source,
    )
    process.start()
    # The parent's copy of the write end must close so the reader sees
    # EOF when the child exits.
    send_conn.close()
    handle = TracedChild(
        process=process, connection=recv_conn, source=source
    )
    if collector is not None:
        collector.watch(handle)
    return handle
