"""Streaming window aggregation: mergeable sketches and window rings.

The live tier cannot afford the registry's retain-everything histograms
for an unbounded stream, so it aggregates into a ring of fixed-duration
:class:`Window` buckets per metric: exact ``count/sum/min/max`` plus a
mergeable :class:`QuantileSketch` for the dashboard's percentile
columns.  Windows merge associatively and commutatively (the property
suite checks this), which is what makes the multi-window burn-rate
views — "the last 5 windows" vs "the last 60" — cheap recombinations
of the same ring rather than separate accounting.

The sketch is a deterministic KLL-style compactor: level ``k`` holds
items of weight ``2**k``; an overfull level is sorted and every other
item promoted, alternating the starting offset between compactions so
rank errors cancel rather than accumulate in one direction.  Each
compaction of level ``k`` can move any rank estimate by at most
``2**k``, and the sketch *self-certifies*: it sums those worst cases
into :attr:`QuantileSketch.rank_error`, so the guarantee

``|true_rank(quantile(q)) - q * n| <= error_bound()``

is checkable against exact quantiles (the property suite does, on
adversarial streams).  No randomness anywhere — replays reproduce.
"""

from __future__ import annotations

import bisect
import math
import threading
from collections import deque
from typing import Iterable

from repro.errors import LiveError

__all__ = [
    "QuantileSketch",
    "Window",
    "WindowRing",
    "LiveAggregator",
]


class QuantileSketch:
    """A deterministic mergeable quantile sketch with a certified bound.

    ``k`` is the per-level buffer capacity: memory is ``O(k log(n/k))``
    and the relative rank error roughly ``O(log(n/k) / k)``.  Streams
    shorter than ``k`` are exact.
    """

    __slots__ = ("k", "_levels", "_offsets", "n", "rank_error")

    def __init__(self, k: int = 64) -> None:
        if k < 2:
            raise LiveError(f"sketch capacity k must be >= 2, got {k}")
        self.k = int(k)
        self._levels: list[list[float]] = [[]]
        self._offsets: list[int] = [0]
        #: Total weight (number of values added, across merges).
        self.n = 0
        #: Certified worst-case absolute rank error accumulated so far.
        self.rank_error = 0

    def add(self, value: float) -> None:
        """Insert one value (weight 1)."""
        self._levels[0].append(float(value))
        self.n += 1
        self._compact_from(0)

    def extend(self, values: Iterable[float]) -> None:
        """Insert many values."""
        for value in values:
            self.add(value)

    def _compact_from(self, level: int) -> None:
        while level < len(self._levels) and len(self._levels[level]) > self.k:
            buf = sorted(self._levels[level])
            offset = self._offsets[level]
            self._offsets[level] ^= 1  # alternate so errors cancel
            promoted = buf[offset::2]
            self._levels[level] = []
            if level + 1 == len(self._levels):
                self._levels.append([])
                self._offsets.append(0)
            self._levels[level + 1].extend(promoted)
            # Halving a weight-2**level buffer moves any rank estimate
            # by at most its item weight.
            self.rank_error += 1 << level
            level += 1

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` in (returns ``self``).  Errors add."""
        if not isinstance(other, QuantileSketch):
            raise LiveError(
                f"cannot merge {type(other).__name__} into a QuantileSketch"
            )
        for level, buf in enumerate(other._levels):
            while level >= len(self._levels):
                self._levels.append([])
                self._offsets.append(0)
            self._levels[level].extend(buf)
        self.n += other.n
        self.rank_error += other.rank_error
        for level in range(len(self._levels)):
            self._compact_from(level)
        return self

    def error_bound(self) -> int:
        """Certified absolute rank error of any quantile answer.

        The accumulated compaction error plus one heaviest-item weight
        (the answer's granularity: a query can never resolve ranks
        finer than the weight of the item it lands on).
        """
        heaviest = 1
        for level, buf in enumerate(self._levels):
            if buf:
                heaviest = 1 << level
        return self.rank_error + heaviest

    def _weighted(self) -> list[tuple[float, int]]:
        pairs = [
            (value, 1 << level)
            for level, buf in enumerate(self._levels)
            for value in buf
        ]
        pairs.sort(key=lambda p: p[0])
        return pairs

    def quantile(self, q: float) -> float:
        """Estimated quantile ``q`` in [0, 1] (``nan`` when empty)."""
        if not 0.0 <= q <= 1.0:
            raise LiveError(f"quantile must be in [0, 1], got {q}")
        pairs = self._weighted()
        if not pairs:
            return float("nan")
        target = q * self.n
        cum = 0
        for value, weight in pairs:
            cum += weight
            if cum >= target:
                return value
        return pairs[-1][0]

    def rank(self, value: float) -> int:
        """Estimated number of inserted values ``<= value``."""
        return sum(w for v, w in self._weighted() if v <= value)

    def snapshot(self) -> dict:
        """JSON-ready summary (n, certified error, p50/p90/p99)."""
        return {
            "n": self.n,
            "error_bound": self.error_bound() if self.n else 0,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
        }


class Window:
    """One fixed-duration aggregation bucket for one metric."""

    __slots__ = ("count", "total", "minimum", "maximum", "sketch")

    def __init__(self, sketch_k: int = 64) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.sketch = QuantileSketch(sketch_k)

    def observe(self, value: float) -> None:
        """Fold one observation in."""
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        self.sketch.add(value)

    def merge(self, other: "Window") -> "Window":
        """Fold another window in (returns ``self``).

        Associative, and commutative on every exact field; the sketch's
        certified bound is preserved under any merge order.
        """
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self.sketch.merge(other.sketch)
        return self

    @property
    def mean(self) -> float:
        """Mean of the window's observations (``nan`` when empty)."""
        return self.total / self.count if self.count else float("nan")

    def snapshot(self) -> dict:
        """JSON-ready summary."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.sketch.quantile(0.5),
            "p99": self.sketch.quantile(0.99),
        }


class WindowRing:
    """A bounded ring of consecutive :class:`Window` buckets.

    Observations are bucketed by ``floor(t / window_seconds)``; the ring
    keeps the most recent ``capacity`` *non-empty* window indices.  An
    observation older than the oldest retained window is dropped (and
    counted), so memory stays flat no matter how long the stream runs.
    """

    def __init__(
        self,
        window_seconds: float = 1.0,
        capacity: int = 120,
        sketch_k: int = 64,
    ) -> None:
        if window_seconds <= 0:
            raise LiveError(
                f"window_seconds must be > 0, got {window_seconds}"
            )
        if capacity < 1:
            raise LiveError(f"ring capacity must be >= 1, got {capacity}")
        self.window_seconds = float(window_seconds)
        self.capacity = int(capacity)
        self.sketch_k = int(sketch_k)
        self._ring: deque[tuple[int, Window]] = deque()
        self.dropped = 0

    def index_of(self, t: float) -> int:
        """The window index timestamp ``t`` falls into."""
        return int(math.floor(t / self.window_seconds))

    def observe(self, value: float, t: float) -> bool:
        """Bucket one observation; ``False`` if it was too old to keep."""
        idx = self.index_of(t)
        if self._ring and idx < self._ring[0][0]:
            self.dropped += 1
            return False
        keys = [entry[0] for entry in self._ring]
        pos = bisect.bisect_left(keys, idx)
        if pos < len(keys) and keys[pos] == idx:
            self._ring[pos][1].observe(value)
            return True
        window = Window(self.sketch_k)
        window.observe(value)
        self._ring.insert(pos, (idx, window))
        while len(self._ring) > self.capacity:
            self._ring.popleft()
            self.dropped += 1
        return True

    def windows(self, last: int | None = None) -> list[tuple[int, Window]]:
        """The retained ``(index, window)`` pairs, oldest first."""
        items = list(self._ring)
        if last is not None:
            items = items[-last:]
        return items

    def merged(self, last_windows: int, *, end_index: int | None = None) -> Window:
        """Merge of the ``last_windows`` consecutive indices ending at
        ``end_index`` (the newest retained index by default).

        Empty indices in the range contribute nothing, but the range is
        positional in *time*, not in retained entries — a silent metric
        really does age out of its fast window.
        """
        if last_windows < 1:
            raise LiveError(f"need last_windows >= 1, got {last_windows}")
        merged = Window(self.sketch_k)
        if not self._ring:
            return merged
        if end_index is None:
            end_index = self._ring[-1][0]
        lo = end_index - last_windows + 1
        for idx, window in self._ring:
            if lo <= idx <= end_index:
                merged.merge(window)
        return merged

    def series(self, last: int = 32) -> list[float]:
        """Per-window means of the newest ``last`` retained windows
        (sparkline feed), oldest first."""
        return [w.mean for _, w in self.windows(last)]


class LiveAggregator:
    """Per-metric :class:`WindowRing` table — the collector's sink.

    Every telemetry point the collector sees (span durations under the
    span's name, metric observations under the metric's name) lands
    here via :meth:`observe`.  Thread-safe: the dashboard reads while
    listener callbacks write.
    """

    def __init__(
        self,
        window_seconds: float = 1.0,
        capacity: int = 120,
        sketch_k: int = 64,
    ) -> None:
        self.window_seconds = float(window_seconds)
        self.capacity = int(capacity)
        self.sketch_k = int(sketch_k)
        self._lock = threading.Lock()
        self._rings: dict[str, WindowRing] = {}

    def observe(self, name: str, value: float, t: float) -> None:
        """Route one point into its metric's ring."""
        with self._lock:
            ring = self._rings.get(name)
            if ring is None:
                ring = self._rings[name] = WindowRing(
                    self.window_seconds, self.capacity, self.sketch_k
                )
            ring.observe(value, t)

    def names(self) -> list[str]:
        """Metric names seen so far, sorted."""
        with self._lock:
            return sorted(self._rings)

    def ring(self, name: str) -> WindowRing | None:
        """The ring for ``name`` (``None`` before its first point)."""
        with self._lock:
            return self._rings.get(name)

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready per-metric summary over the whole retained ring."""
        with self._lock:
            rings = dict(self._rings)
        out: dict[str, dict] = {}
        for name, ring in sorted(rings.items()):
            merged = ring.merged(ring.capacity)
            out[name] = merged.snapshot()
            out[name]["dropped"] = ring.dropped
        return out
