"""Cross-process live telemetry: channels, collector, SLOs, dashboard.

The live tier extends the observability stack across a process tree
and forward in time:

* :mod:`~repro.obs.live.channel` — the frame protocol
  (:data:`~repro.obs.live.channel.FRAME_SCHEMA`), the child-side
  :class:`ChannelExporter`, capture files and :func:`spawn_traced`;
* :mod:`~repro.obs.live.collector` — the parent-side :class:`Collector`
  that stitches child spans into the parent tracer, merges metrics and
  runs SLO evaluation;
* :mod:`~repro.obs.live.windows` — bounded streaming aggregation
  (deterministic mergeable :class:`QuantileSketch`, window rings);
* :mod:`~repro.obs.live.slo` — :class:`SLOPolicy` /
  :class:`BurnRateEvaluator` multi-window burn-rate alerting;
* :mod:`~repro.obs.live.dashboard` — the ``repro-bfs top`` renderer;
* :mod:`~repro.obs.live.protocol` — runtime protocol conformance
  (:class:`ProtocolMonitor`, strict capture replay): the dynamic twin
  of the ``repro.analysis.typestate`` lint tier.

See ``docs/observability.md`` ("Live telemetry, SLOs & the dashboard")
for the end-to-end walkthrough.
"""

from repro.obs.live.channel import (
    FRAME_KINDS,
    FRAME_SCHEMA,
    CaptureFile,
    ChannelExporter,
    TracedChild,
    decode_frame,
    encode_frame,
    read_capture,
    spawn_traced,
)
from repro.obs.live.collector import Channel, Collector
from repro.obs.live.dashboard import Dashboard, render, sparkline
from repro.obs.live.protocol import (
    FrameConformance,
    ProtocolMonitor,
    ProtocolViolation,
)
from repro.obs.live.slo import BurnRateEvaluator, SLOAlert, SLOPolicy
from repro.obs.live.windows import (
    LiveAggregator,
    QuantileSketch,
    Window,
    WindowRing,
)
from repro.obs.live.workload import child_workload, run_traced_pair

__all__ = [
    "FRAME_SCHEMA",
    "FRAME_KINDS",
    "encode_frame",
    "decode_frame",
    "CaptureFile",
    "read_capture",
    "ChannelExporter",
    "TracedChild",
    "spawn_traced",
    "Channel",
    "Collector",
    "FrameConformance",
    "ProtocolMonitor",
    "ProtocolViolation",
    "QuantileSketch",
    "Window",
    "WindowRing",
    "LiveAggregator",
    "SLOPolicy",
    "SLOAlert",
    "BurnRateEvaluator",
    "Dashboard",
    "render",
    "sparkline",
    "child_workload",
    "run_traced_pair",
]
