"""The ``repro-bfs top`` renderer: a plain-ANSI live telemetry view.

No curses — every refresh paints a complete frame (home + clear, then
the full text), which survives odd terminals, tmux panes and CI logs
alike, and degrades to a single plain-text frame for non-TTY output
(``--once``).  Refresh is capped at 4 Hz; the work between frames is a
:meth:`~repro.obs.live.collector.Collector.poll` +
:meth:`~repro.obs.live.collector.Collector.evaluate`, so watching the
dashboard *is* running the alerting loop.

Sections: a header (trace id, uptime, frame/drop/alert totals), one
row per policed or observed metric (count, mean, p50, p99 over the
fast window, plus a sparkline of per-window means), the live span
stack per process/thread, per-channel state, and the firing alerts.
"""

from __future__ import annotations

import math
import time

from repro.obs.clock import now
from repro.obs.live.collector import Collector

__all__ = ["sparkline", "render", "Dashboard"]

_BLOCKS = "▁▂▃▄▅▆▇█"
_CLEAR = "\x1b[H\x1b[2J"

#: Hard refresh-rate cap (seconds between frames): 4 Hz.
MIN_INTERVAL = 0.25


def sparkline(values, width: int = 24) -> str:
    """Render the last ``width`` values as unicode block bars.

    ``nan`` values (empty windows) render as spaces; a flat non-empty
    series renders mid-height so it is visibly present.
    """
    values = [v for v in list(values)[-width:]]
    if not values:
        return ""
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return " " * len(values)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars = []
    for v in values:
        if math.isnan(v):
            chars.append(" ")
        elif span <= 0:
            chars.append(_BLOCKS[3])
        else:
            idx = int((v - lo) / span * (len(_BLOCKS) - 1))
            chars.append(_BLOCKS[idx])
    return "".join(chars)


def _fmt(value: float) -> str:
    """Compact numeric cell (handles nan and wide ranges)."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    if value == 0:
        return "0"
    if abs(value) >= 1e5 or abs(value) < 1e-3:
        return f"{value:.2e}"
    return f"{value:.4g}"


def render(collector: Collector, *, width: int = 100) -> str:
    """One complete dashboard frame as plain text (no ANSI)."""
    t = float(collector.clock())
    lines: list[str] = []
    uptime = t - collector.started_at
    lines.append(
        f"repro-bfs top — trace {collector.tracer.trace_id} — "
        f"up {uptime:6.1f}s — frames {collector.frames} "
        f"(dropped {collector.dropped}) — alerts {len(collector.alerts)}"
    )
    lines.append("=" * min(width, 100))

    names = collector.aggregator.names()
    policed = {ev.policy.metric for ev in collector.evaluators}
    if names:
        lines.append(
            f"{'metric':<28} {'n':>6} {'mean':>10} {'p50':>10} "
            f"{'p99':>10}  history"
        )
        fast = max(
            (ev.policy.fast_windows for ev in collector.evaluators),
            default=5,
        )
        for name in names:
            ring = collector.aggregator.ring(name)
            if ring is None:
                continue
            merged = ring.merged(fast)
            snap = merged.snapshot()
            marker = "*" if name in policed else " "
            lines.append(
                f"{marker}{name:<27} {snap.get('count', 0):>6} "
                f"{_fmt(snap.get('mean')):>10} {_fmt(snap.get('p50')):>10} "
                f"{_fmt(snap.get('p99')):>10}  {sparkline(ring.series())}"
            )
    else:
        lines.append("(no telemetry yet)")

    active = collector.active_spans()
    lines.append("")
    lines.append(f"active spans ({len(active)} busy threads)")
    for (source, thread), stack in sorted(active.items()):
        lines.append(f"  {source}/{thread}: {' > '.join(stack)}")
    if not active:
        lines.append("  (idle)")

    channels = collector.describe_channels()
    if channels:
        lines.append("")
        lines.append("channels")
        for row in channels:
            state = "done" if row["done"] else "live"
            lines.append(
                f"  {row['source']:<16} pid {row['pid'] or '-':<8} "
                f"{row['frames']:>6} frames  [{state}]"
            )

    if collector.evaluators:
        lines.append("")
        lines.append("slo")
        for ev in collector.evaluators:
            fast_burn, slow_burn = ev.burn_rates(t)
            state = "FIRING" if ev.firing else "ok"
            lines.append(
                f"  {ev.policy.spec():<36} burn fast {fast_burn:6.2f}x "
                f"slow {slow_burn:6.2f}x  [{state}]"
            )
    for alert in collector.alerts[-4:]:
        lines.append(f"  ! {alert.describe()}")
    return "\n".join(lines) + "\n"


class Dashboard:
    """Drives poll → evaluate → render at a bounded refresh rate."""

    def __init__(
        self,
        collector: Collector,
        *,
        out=None,
        interval: float = 0.25,
        ansi: bool = True,
        width: int = 100,
    ) -> None:
        import sys

        self.collector = collector
        self.out = out if out is not None else sys.stdout
        self.interval = max(float(interval), MIN_INTERVAL)
        self.ansi = bool(ansi)
        self.width = int(width)
        self.frames_rendered = 0

    def refresh(self) -> str:
        """One poll/evaluate/render cycle; returns the frame text."""
        self.collector.poll()
        self.collector.evaluate()
        frame = render(self.collector, width=self.width)
        if self.ansi:
            self.out.write(_CLEAR + frame)
        else:
            self.out.write(frame)
        self.out.flush()
        self.frames_rendered += 1
        return frame

    def run(self, done, *, max_seconds: float | None = None) -> int:
        """Refresh until ``done()`` is true (plus one final frame).

        ``max_seconds`` bounds the loop regardless; returns the number
        of frames rendered.
        """
        deadline = None if max_seconds is None else now() + max_seconds
        while not done():
            if deadline is not None and now() >= deadline:
                break
            self.refresh()
            time.sleep(self.interval)
        self.refresh()  # final state, after the workload finished
        return self.frames_rendered
