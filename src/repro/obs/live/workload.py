"""A two-process demo workload for the live-telemetry tier.

``repro-bfs top`` / ``live record`` need something real to watch:
:func:`run_traced_pair` runs a Graph 500 benchmark in the parent while
``children`` traced child processes (:func:`~repro.obs.live.channel.
spawn_traced`) run their own — the child traversals stitch under the
parent's ``live.workload`` span in the exported trace, and their
metrics merge back at close.

``child_delay`` injects a per-root slowdown (a plain sleep inside the
engine), the knob the acceptance run uses to trip an SLO like
``graph500.bfs<0.25@0.9`` and prove the burn-rate → flight-recorder
path end to end.
"""

from __future__ import annotations

import time

from repro.graph500 import HybridEngine, run_graph500
from repro.obs.live.channel import TracedChild, spawn_traced
from repro.obs.tracer import Tracer, get_tracer

__all__ = ["child_workload", "run_traced_pair"]


def child_workload(
    scale: int,
    edgefactor: int = 8,
    num_roots: int = 8,
    delay: float = 0.0,
    seed: int = 1,
) -> None:
    """One child's work: a Graph 500 run on the child's own tracer.

    Module-level (picklable) on purpose — this is the
    :func:`~repro.obs.live.channel.spawn_traced` target.  ``delay``
    seconds of sleep per root simulate a degraded engine.
    """
    engine = HybridEngine()

    def degraded(graph, source):
        if delay:
            time.sleep(delay)
        return engine(graph, source)

    run_graph500(
        scale,
        edgefactor,
        num_roots=num_roots,
        engine=degraded if delay else engine,
        seed=seed,
    )


def run_traced_pair(
    scale: int = 8,
    *,
    edgefactor: int = 8,
    num_roots: int = 8,
    children: int = 1,
    child_delay: float = 0.0,
    collector=None,
    tracer: Tracer | None = None,
    seed: int = 0,
) -> list[TracedChild]:
    """Run the parent benchmark and ``children`` traced child runs.

    Spawns the children under the parent's ``live.workload`` span (so
    their telemetry parents there), runs the parent's own benchmark
    while they work, then joins them.  Returns the child handles; the
    caller drains their channels (pass ``collector=`` to have
    :func:`spawn_traced` register each one automatically).
    """
    tr = tracer if tracer is not None else get_tracer()
    handles: list[TracedChild] = []
    with tr.span("live.workload", scale=scale, children=children):
        for index in range(children):
            handles.append(
                spawn_traced(
                    child_workload,
                    (scale, edgefactor, num_roots, child_delay, seed + index + 1),
                    tracer=tr,
                    child_index=index,
                    baggage={"workload": f"rmat-s{scale}", "child": index},
                    collector=collector,
                )
            )
        run_graph500(
            scale,
            edgefactor,
            num_roots=num_roots,
            engine=HybridEngine(),
            tracer=tr,
            seed=seed,
        )
        for handle in handles:
            if collector is not None:
                # keep draining while waiting, so a chatty child never
                # blocks on a full pipe
                while handle.process.is_alive():
                    collector.poll(timeout=0.05)
                handle.join()
            else:
                handle.join()
    return handles
