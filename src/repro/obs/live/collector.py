"""The telemetry collector: one sink for a whole process tree.

A :class:`Collector` rides the parent tracer as a
:class:`~repro.obs.tracer.TraceListener` (local telemetry arrives as
callbacks) and watches any number of child channels (telemetry arrives
as :mod:`~repro.obs.live.channel` frames).  Everything converges:

* child **span**/**event** frames are rebuilt into records and adopted
  into the parent tracer (:meth:`~repro.obs.tracer.Tracer.adopt_record`
  preserves ids, so the exported Chrome trace shows one stitched tree)
  — and because adoption notifies listeners, the same spans also flow
  back into this collector's aggregation, exactly like local ones;
* every span duration and metric observation lands in a
  :class:`~repro.obs.live.windows.LiveAggregator` ring (span durations
  under the span's name) and feeds each matching
  :class:`~repro.obs.live.slo.BurnRateEvaluator`;
* **metrics_final** payloads merge exactly into the parent registry;
  periodic **metrics** frames just refresh the per-channel cumulative
  view the dashboard shows;
* malformed frames are counted (``live.frames_dropped``), not fatal —
  a dying child must not take the run's telemetry down with it.

:meth:`evaluate` runs the burn-rate evaluators and, on a rising edge,
emits an ``slo.alert`` instant event into the tracer — the channel an
attached :class:`~repro.obs.profile.FlightRecorder` snapshots on — and
bumps the ``slo.alerts`` counter.
"""

from __future__ import annotations

import threading
from multiprocessing.connection import Connection, wait

from repro.errors import LiveError, ObsError
from repro.obs.clock import now
from repro.obs.live.channel import (
    FRAME_SCHEMA,
    TracedChild,
    decode_frame,
    read_capture,
)
from repro.obs.live.slo import BurnRateEvaluator, SLOAlert, SLOPolicy
from repro.obs.live.windows import LiveAggregator
from repro.obs.tracer import (
    EventRecord,
    Span,
    SpanRecord,
    TraceListener,
    Tracer,
)

__all__ = ["Channel", "Collector"]


class Channel:
    """Collector-side state for one child telemetry stream."""

    __slots__ = (
        "connection", "source", "process", "trace_id", "pid",
        "frames", "last_flat", "done", "bye",
    )

    def __init__(self, connection, source: str, process=None) -> None:
        self.connection = connection
        self.source = source
        self.process = process
        self.trace_id: str | None = None
        self.pid: int | None = None
        self.frames = 0
        self.last_flat: dict[str, float] = {}
        self.done = False
        self.bye: dict | None = None

    def describe(self) -> dict:
        """JSON-ready row for the dashboard's channels table."""
        return {
            "source": self.source,
            "pid": self.pid,
            "frames": self.frames,
            "done": self.done,
        }


class Collector(TraceListener):
    """Cross-process telemetry fan-in with streaming SLO evaluation.

    Use as a context manager to attach/detach from the tracer::

        policies = [SLOPolicy.parse("graph500.bfs<0.5@0.9")]
        with Collector(tracer, policies=policies) as collector:
            child = spawn_traced(work, (arg,), collector=collector)
            run_graph500(...)          # parent-side work, traced
            collector.close(timeout=10.0)   # drain the channel
        assert not collector.alerts
    """

    def __init__(
        self,
        tracer: Tracer,
        *,
        policies: tuple[SLOPolicy, ...] | list[SLOPolicy] = (),
        window_seconds: float = 1.0,
        capacity: int = 120,
        clock=now,
    ) -> None:
        self.tracer = tracer
        self.clock = clock
        self.aggregator = LiveAggregator(
            window_seconds=window_seconds, capacity=capacity
        )
        self.evaluators = [BurnRateEvaluator(p) for p in policies]
        self.alerts: list[SLOAlert] = []
        self.channels: list[Channel] = []
        self.frames = 0
        self.dropped = 0
        self.started_at = float(clock())
        self._lock = threading.Lock()
        # Serializes whole poll passes: pipe reads are not thread-safe,
        # and both the dashboard loop and the workload thread drain.
        self._poll_lock = threading.Lock()
        # (source, thread_name) -> [(span name, span id), ...] open now
        self._active: dict[tuple[str, str], list[tuple[str, int]]] = {}
        self._events: list[EventRecord] = []

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "Collector":
        self.tracer.add_listener(self)
        return self

    def __exit__(self, *exc: object) -> None:
        self.tracer.remove_listener(self)

    def watch(self, child) -> Channel:
        """Register a child channel (a :class:`TracedChild` handle or a
        readable pipe connection)."""
        if isinstance(child, TracedChild):
            channel = Channel(
                child.connection, child.source, process=child.process
            )
        elif isinstance(child, Connection):
            channel = Channel(child, f"conn-{len(self.channels)}")
        else:
            raise LiveError(
                f"watch needs a TracedChild or Connection, "
                f"got {type(child).__name__}"
            )
        with self._lock:
            self.channels.append(channel)
        return channel

    # -- local telemetry (listener callbacks) --------------------------------

    def on_span_open(self, span: Span) -> None:
        """Track the parent process's live spans."""
        key = ("main", threading.current_thread().name)
        with self._lock:
            self._active.setdefault(key, []).append(
                (span.name, span.span_id)
            )

    def on_span_close(self, record: SpanRecord) -> None:
        """Aggregate the duration; retire the active-span entry."""
        with self._lock:
            for stack in self._active.values():
                for i, (_, span_id) in enumerate(stack):
                    if span_id == record.span_id:
                        del stack[i]
                        break
                else:
                    continue
                break
        self._ingest(record.name, record.duration, record.end)

    def on_event(self, record: EventRecord) -> None:
        """Keep a short tail of events for the dashboard."""
        with self._lock:
            self._events.append(record)
            del self._events[:-64]

    def on_metric(self, name: str, kind: str, value: float) -> None:
        """Stream parent-side metric updates into the windows."""
        self._ingest(name, value, float(self.clock()))

    def _ingest(self, name: str, value: float, t: float) -> None:
        self.aggregator.observe(name, value, t)
        for evaluator in self.evaluators:
            if evaluator.policy.metric == name:
                evaluator.record(t, value)

    # -- channel draining ----------------------------------------------------

    def poll(self, timeout: float = 0.0) -> int:
        """Drain every readable frame; returns how many were processed.

        Blocks at most ``timeout`` seconds waiting for the *first*
        readable channel, then consumes without blocking.
        """
        with self._poll_lock:
            return self._poll_locked(timeout)

    def _poll_locked(self, timeout: float) -> int:
        processed = 0
        while True:
            with self._lock:
                open_conns = [
                    ch.connection for ch in self.channels if not ch.done
                ]
            if not open_conns:
                break
            ready = wait(open_conns, timeout if processed == 0 else 0)
            if not ready:
                break
            for conn in ready:
                channel = self._channel_for(conn)
                if channel is None:
                    continue
                try:
                    data = conn.recv_bytes()
                except (EOFError, OSError):
                    channel.done = True
                    continue
                processed += 1
                self._dispatch(channel, data)
        if processed:
            self.frames += processed
            self.tracer.count("live.frames", processed)
        return processed

    def _channel_for(self, conn) -> Channel | None:
        with self._lock:
            for channel in self.channels:
                if channel.connection is conn:
                    return channel
        return None

    def _dispatch(self, channel: Channel, data: bytes) -> None:
        try:
            frame = decode_frame(data)
        except LiveError:
            self._drop(channel)
            return
        self.dispatch_frame(channel, frame)

    def dispatch_frame(self, channel: Channel, frame: dict) -> None:
        """Apply one decoded frame to collector state.

        Tolerant: a frame with a bad payload is counted as dropped and
        skipped, never raised out of the polling loop.
        """
        kind = frame.get("kind")
        try:
            if kind == "hello":
                if frame.get("schema") != FRAME_SCHEMA:
                    raise LiveError(
                        f"channel {channel.source}: unsupported frame "
                        f"schema {frame.get('schema')!r}"
                    )
                channel.trace_id = frame.get("trace_id")
                channel.pid = frame.get("pid")
            elif kind == "span_open":
                key = (channel.source, str(frame.get("thread_name")))
                with self._lock:
                    self._active.setdefault(key, []).append(
                        (str(frame.get("name")), int(frame.get("span_id")))
                    )
            elif kind == "span":
                record = frame["record"]
                self.tracer.adopt_record(
                    SpanRecord(
                        name=record["name"],
                        start=record["start"],
                        end=record["end"],
                        span_id=record["span_id"],
                        parent_id=record["parent_id"],
                        thread_id=record["thread_id"],
                        thread_name=record["thread_name"],
                        track=record.get("track")
                        or f"{channel.source}:{record['thread_name']}",
                        attrs=record.get("attrs", {}),
                    )
                )
            elif kind == "event":
                record = frame["record"]
                self.tracer.adopt_record(
                    EventRecord(
                        name=record["name"],
                        timestamp=record["timestamp"],
                        thread_id=record["thread_id"],
                        thread_name=record["thread_name"],
                        track=record.get("track")
                        or f"{channel.source}:{record['thread_name']}",
                        attrs=record.get("attrs", {}),
                    )
                )
            elif kind == "metrics":
                flat = frame.get("flat", {})
                if not isinstance(flat, dict):
                    raise LiveError("metrics frame 'flat' must be a dict")
                channel.last_flat = {
                    str(k): float(v) for k, v in flat.items()
                }
            elif kind == "metrics_final":
                self.tracer.metrics.merge_payload(frame["payload"])
            elif kind == "bye":
                channel.bye = frame
                channel.done = True
            channel.frames += 1
        except (ObsError, KeyError, TypeError, ValueError):
            # LiveError subclasses ObsError; adoption errors (a span
            # ending before it starts) land here too.
            self._drop(channel)
            return
        # Adopted spans already re-entered through on_span_close (the
        # tracer notifies its listeners, this collector included), so
        # no direct aggregation happens here.
        if kind == "span":
            with self._lock:
                key = (channel.source, str(frame["record"]["thread_name"]))
                stack = self._active.get(key, [])
                span_id = frame["record"]["span_id"]
                self._active[key] = [
                    entry for entry in stack if entry[1] != span_id
                ]

    def _drop(self, channel: Channel) -> None:
        self.dropped += 1
        channel.frames += 1
        self.tracer.count("live.frames_dropped")

    def close(self, timeout: float = 10.0) -> None:
        """Drain until every channel said ``bye`` (or hit EOF, or the
        deadline passes).  Safe to call with no channels."""
        deadline = float(self.clock()) + timeout
        while any(not ch.done for ch in self.channels):
            remaining = deadline - float(self.clock())
            if remaining <= 0:
                break
            self.poll(timeout=min(remaining, 0.1))

    # -- SLO evaluation ------------------------------------------------------

    def evaluate(self, t: float | None = None) -> list[SLOAlert]:
        """Run every evaluator; returns alerts that fired *this* call.

        Rising-edge semantics: an evaluator that was already firing
        does not re-alert, so the flight recorder dumps one snapshot
        per violation episode, not one per dashboard refresh.
        """
        if t is None:
            t = float(self.clock())
        fired: list[SLOAlert] = []
        for evaluator in self.evaluators:
            was_firing = evaluator.firing
            alert = evaluator.evaluate(t)
            if alert is not None and not was_firing:
                fired.append(alert)
        for alert in fired:
            self.alerts.append(alert)
            self.tracer.count("slo.alerts")
            self.tracer.instant("slo.alert", **alert.as_dict())
        return fired

    # -- replay --------------------------------------------------------------

    def replay(
        self, path, *, strict: bool = True, conformance: str | None = None
    ) -> list[SLOAlert]:
        """Feed a :class:`~repro.obs.live.channel.CaptureFile` recording
        through the collector, evaluating SLOs on the recorded clock.

        Deterministic: window bucketing uses the capture's own span
        timestamps, so a capture replays to the same verdict every
        time.  Returns the full alert list (``repro-bfs live check``
        exits nonzero when it is non-empty).

        ``conformance="strict"`` additionally replays the stream
        through the live-channel protocol machines (see
        :func:`~repro.obs.live.channel.read_capture`), raising
        :class:`~repro.errors.ProtocolError` on a non-conformant
        handshake.
        """
        channel = Channel(None, "replay")
        with self._lock:
            self.channels.append(channel)
        channel.done = True  # never polled, only fed
        last_t: float | None = None
        for frame in read_capture(path, strict=strict, conformance=conformance):
            self.frames += 1
            self.dispatch_frame(channel, frame)
            if frame.get("kind") == "span":
                last_t = float(frame["record"]["end"])
                self.evaluate(last_t)
        if last_t is not None:
            self.evaluate(last_t)
        return list(self.alerts)

    # -- dashboard views -----------------------------------------------------

    def active_spans(self) -> dict[tuple[str, str], list[str]]:
        """Live span names per ``(source, thread)``, innermost last."""
        with self._lock:
            return {
                key: [name for name, _ in stack]
                for key, stack in self._active.items()
                if stack
            }

    def recent_events(self, last: int = 8) -> list[EventRecord]:
        """The newest ``last`` instant events seen."""
        with self._lock:
            return list(self._events[-last:])

    def describe_channels(self) -> list[dict]:
        """JSON-ready channel rows."""
        with self._lock:
            return [ch.describe() for ch in self.channels]
