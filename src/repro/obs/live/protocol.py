"""Runtime protocol conformance: the dynamic twin of the static tier.

The same :class:`~repro.analysis.typestate.spec.ProtocolSpec` machines
that power lint rules RPR022–RPR026 are replayed here against *live*
objects and recorded captures:

* :class:`ProtocolMonitor` — step machines as a program runs.  Attach
  it to a handle (:meth:`ProtocolMonitor.attach` wraps the instance's
  lifecycle methods), feed it events explicitly, or add it as a
  :class:`~repro.obs.tracer.TraceListener` so ``protocol.transition``
  instants emitted in other processes adopt into the same machines.
* :class:`FrameConformance` — drive one live-channel machine per frame
  source; :func:`~repro.obs.live.channel.read_capture` uses it for
  ``conformance="strict"`` replay and ``repro-bfs live check
  --strict-protocol`` rides on top.

Every violation is a :class:`ProtocolViolation`; in strict mode the
first one raises :class:`~repro.errors.ProtocolError` (a
:class:`~repro.errors.LiveError`, so existing live gates fail closed).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.analysis.typestate.spec import (
    LIVE_CHANNEL,
    ProtocolSpec,
    get_protocol,
    protocol_for_type,
)
from repro.errors import ProtocolError
from repro.obs.tracer import EventRecord, TraceListener

__all__ = [
    "FrameConformance",
    "ProtocolMonitor",
    "ProtocolViolation",
    "TRANSITION_EVENT",
]

#: Instant-event name carrying cross-process machine transitions.
TRANSITION_EVENT = "protocol.transition"


@dataclass(frozen=True)
class ProtocolViolation:
    """One runtime conformance failure."""

    machine: str
    subject: str
    state: str
    event: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.message


class _Subject:
    __slots__ = ("spec", "name", "state")

    def __init__(self, spec: ProtocolSpec, name: str) -> None:
        self.spec = spec
        self.name = name
        self.state = spec.initial


class ProtocolMonitor(TraceListener):
    """Steps protocol machines against a running program.

    The monitor is the runtime counterpart of the typestate abstract
    interpreter: where the static tier proves conformance over *all*
    paths, the monitor witnesses the one path actually taken — the
    twin tests in ``tests/analysis`` drive both against the same
    scenario.  With ``strict=True`` the first violation raises
    :class:`~repro.errors.ProtocolError`; otherwise violations
    accumulate on :attr:`violations`.
    """

    def __init__(self, *, strict: bool = False, tracer=None) -> None:
        self.strict = strict
        self.tracer = tracer
        self.violations: list[ProtocolViolation] = []
        self._subjects: dict[str, _Subject] = {}

    # -- core stepping -------------------------------------------------------

    def begin(
        self, machine: str | ProtocolSpec, subject: str
    ) -> None:
        """Start tracking ``subject`` under ``machine`` (fresh state)."""
        spec = (
            machine
            if isinstance(machine, ProtocolSpec)
            else get_protocol(machine)
        )
        self._subjects[subject] = _Subject(spec, subject)

    def state_of(self, subject: str) -> str | None:
        """Current machine state of ``subject`` (``None`` if unknown)."""
        sub = self._subjects.get(subject)
        return sub.state if sub is not None else None

    def observe(self, subject: str, event: str) -> None:
        """Step ``subject``'s machine on ``event``."""
        sub = self._subjects.get(subject)
        if sub is None:
            return
        nxt = sub.spec.step(sub.state, event)
        if nxt is None:
            self._violate(
                sub, event,
                f"{sub.spec.name} protocol violation on "
                f"{subject!r}: event {event!r} is illegal in state "
                f"{sub.state!r} (allowed: "
                f"{', '.join(sub.spec.allowed(sub.state)) or 'none'})",
            )
            return
        sub.state = nxt
        if self.tracer is not None:
            self.tracer.instant(
                TRANSITION_EVENT,
                machine=sub.spec.name,
                subject=subject,
                event=event,
                state=nxt,
            )

    def finish(self) -> list[ProtocolViolation]:
        """End of scenario: every subject must rest in an accepting
        state.  Returns all accumulated violations."""
        for sub in self._subjects.values():
            if not sub.spec.is_accepting(sub.state):
                self._violate(
                    sub, "<end>",
                    f"{sub.spec.name} protocol incomplete on "
                    f"{sub.name!r}: ended in state {sub.state!r}, "
                    "which is not an accepting state (accepting: "
                    f"{', '.join(sorted(sub.spec.accepting))})",
                )
        return self.violations

    def _violate(
        self, sub: _Subject, event: str, message: str
    ) -> None:
        violation = ProtocolViolation(
            machine=sub.spec.name,
            subject=sub.name,
            state=sub.state,
            event=event,
            message=message,
        )
        self.violations.append(violation)
        if self.strict:
            raise ProtocolError(message)

    # -- instrumenting live objects ------------------------------------------

    def attach(
        self,
        obj,
        *,
        machine: str | ProtocolSpec | None = None,
        subject: str | None = None,
    ):
        """Instrument ``obj``: wrap its protocol methods so every call
        steps the machine *before* delegating.  The machine is
        auto-detected from the object's type when not given.  Returns
        ``obj`` for chaining."""
        if machine is None:
            spec = protocol_for_type(type(obj).__name__)
            if spec is None:
                raise ProtocolError(
                    f"no protocol machine registered for "
                    f"{type(obj).__name__}"
                )
        else:
            spec = (
                machine
                if isinstance(machine, ProtocolSpec)
                else get_protocol(machine)
            )
        name = subject or f"{type(obj).__name__}@{id(obj):#x}"
        self.begin(spec, name)
        for method, event in spec.method_events:
            original = getattr(obj, method, None)
            if original is None:
                continue

            def wrapper(
                *args,
                _original=original,
                _event=event,
                _name=name,
                **kwargs,
            ):
                self.observe(_name, _event)
                return _original(*args, **kwargs)

            functools.update_wrapper(wrapper, original)
            setattr(obj, method, wrapper)
        return obj

    def lend(self, workspace_subject: str, result) -> None:
        """Record that a traversal lent ``workspace_subject``'s arrays
        to ``result``; wraps ``result.detach`` so detaching returns
        the workspace to its reusable state.

        The workspace machine has no transition *into* ``lent`` — only
        this call moves a subject there, so a second lend without an
        intervening detach observes ``traverse`` from ``lent``, which
        is exactly the illegal event RPR024 proves statically."""
        self.observe(workspace_subject, "traverse")
        sub = self._subjects.get(workspace_subject)
        if sub is not None and sub.state in ("idle", "active"):
            sub.state = "lent"
        original = getattr(result, "detach", None)
        if original is None:
            return

        def wrapper(*args, _original=original, **kwargs):
            self.observe(workspace_subject, "detach")
            return _original(*args, **kwargs)

        functools.update_wrapper(wrapper, original)
        try:
            object.__setattr__(result, "detach", wrapper)
        except (AttributeError, TypeError):
            pass  # frozen results: caller observes "detach" directly

    # -- cross-process adoption ----------------------------------------------

    def on_event(self, record: EventRecord) -> None:
        """Adopt ``protocol.transition`` instants (e.g. re-exported
        from a child process) into the local machines."""
        if record.name != TRANSITION_EVENT:
            return
        attrs = record.attrs or {}
        machine = attrs.get("machine")
        subject = attrs.get("subject")
        event = attrs.get("event")
        if not (machine and subject and event):
            return
        if subject not in self._subjects:
            try:
                self.begin(machine, subject)
            except Exception:  # unknown machine name: ignore
                return
        self.observe(subject, event)


class FrameConformance:
    """Replays a ``repro.obs.live/1`` frame stream through the
    live-channel machine — one machine per frame source, strict by
    default (the :func:`~repro.obs.live.channel.read_capture`
    ``conformance="strict"`` engine)."""

    def __init__(self, *, strict: bool = True) -> None:
        self._monitor = ProtocolMonitor(strict=strict)

    @property
    def violations(self) -> list[ProtocolViolation]:
        return self._monitor.violations

    def feed(self, frame: dict) -> None:
        """Step the frame's source-stream machine on its kind."""
        kind = frame.get("kind")
        if kind is None:
            return
        subject = str(frame.get("source") or "<main>")
        if self._monitor.state_of(subject) is None:
            self._monitor.begin(LIVE_CHANNEL, subject)
        self._monitor.observe(subject, str(kind))

    def finish(self) -> list[ProtocolViolation]:
        """EOF: every stream must have completed hello→…→bye."""
        return self._monitor.finish()
