"""Standard-library ``logging`` integration for the tracer.

The repository's library code never configures logging itself — the
``repro`` logger ships with a :class:`logging.NullHandler` (the library
convention), so importing :mod:`repro` stays silent until an application
attaches its own handlers.

A :class:`~repro.obs.tracer.Tracer` built with ``logger=True`` mirrors
every finished span and instant event as a DEBUG record on
``repro.obs.trace`` with the structured payload under
``record.repro_event`` (passed via ``extra=``), so log aggregators can
consume the same event stream the exporters write.
:func:`basic_config` is a convenience for scripts/CLI use that attaches
a stderr handler exactly once.
"""

from __future__ import annotations

import logging

__all__ = ["ROOT_LOGGER_NAME", "get_logger", "basic_config"]

#: The package's root logger name; all obs loggers are children of it.
ROOT_LOGGER_NAME = "repro"

logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro.obs`` namespace.

    ``get_logger("trace")`` → ``repro.obs.trace``; no argument returns
    ``repro.obs`` itself.  Handlers are never attached here — that is
    the application's (or :func:`basic_config`'s) job.
    """
    base = f"{ROOT_LOGGER_NAME}.obs"
    return logging.getLogger(f"{base}.{name}" if name else base)


def basic_config(level: int = logging.DEBUG) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` logger (idempotent).

    For scripts and the CLI; libraries embedding :mod:`repro` should
    configure logging themselves instead.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    has_stream = any(
        isinstance(h, logging.StreamHandler)
        and not isinstance(h, logging.NullHandler)
        for h in root.handlers
    )
    if not has_stream:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(level)
    return root
