"""OpenMetrics v1 text exposition of the metrics registry.

:func:`render` turns a :class:`~repro.obs.metrics.MetricsRegistry` (or a
snapshot dict from one) into the OpenMetrics text format — the lingua
franca of Prometheus-style scrapers — and :func:`serve` exposes it over
a stdlib-only HTTP endpoint (``repro-bfs serve-metrics``).  No external
client library is involved; the format is simple enough to emit and
:func:`validate` checks the invariants scrapers rely on.

Mapping choices:

* dotted repro metric names become underscore-separated OpenMetrics
  names (``bfs.edges_examined`` → ``bfs_edges_examined``);
* counters gain the mandatory ``_total`` sample suffix;
* histograms are exposed as **real histograms**: cumulative
  ``_bucket{le="..."}`` series over data-derived bounds (the registry
  retains raw observations, so
  :meth:`~repro.obs.metrics.Histogram.buckets` derives log- or
  linear-spaced bounds from the data itself), always terminated by the
  mandatory ``le="+Inf"`` bucket whose value equals ``_count``, plus
  ``_sum``/``_count``; :func:`validate` checks le-monotonicity and
  cumulative non-decreasing counts;
* the exposition always ends with the required ``# EOF`` line.
"""

from __future__ import annotations

import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ExportError
from repro.obs.metrics import MetricsRegistry

__all__ = ["CONTENT_TYPE", "render", "validate", "serve"]

#: The HTTP ``Content-Type`` negotiated by OpenMetrics v1 scrapers.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LE_RE = re.compile(r'le="([^"]*)"')


def _openmetrics_name(name: str) -> str:
    candidate = name.replace(".", "_")
    if not _NAME_RE.match(candidate):
        raise ExportError(
            f"metric name {name!r} does not map to a valid OpenMetrics "
            f"name ({candidate!r})"
        )
    return candidate


def _format_value(value: float) -> str:
    # repr() keeps full precision; integers render without a trailing .0
    # (both forms are valid OpenMetrics floats).
    f = float(value)
    return str(int(f)) if f.is_integer() and abs(f) < 1e15 else repr(f)


def render(metrics) -> str:
    """The OpenMetrics v1 text exposition of ``metrics``.

    ``metrics`` is a :class:`~repro.obs.metrics.MetricsRegistry` or a
    ``snapshot()``-shaped dict.  Unset gauges and empty histograms are
    exposed as metric families with no samples beyond ``_count = 0``
    (histograms) or skipped entirely (gauges) — a scraper must not see
    an invented zero.
    """
    if isinstance(metrics, MetricsRegistry):
        snapshot = metrics.snapshot()
    elif isinstance(metrics, dict):
        snapshot = metrics
    else:
        raise ExportError(
            "render needs a MetricsRegistry or a snapshot dict, got "
            f"{type(metrics).__name__}"
        )
    lines: list[str] = []
    for name in sorted(snapshot):
        snap = snapshot[name]
        if not isinstance(snap, dict) or "type" not in snap:
            raise ExportError(f"metric {name!r} has a malformed snapshot")
        om_name = _openmetrics_name(name)
        kind = snap["type"]
        if kind == "counter":
            lines.append(f"# TYPE {om_name} counter")
            lines.append(f"{om_name}_total {_format_value(snap['value'])}")
        elif kind == "gauge":
            if snap.get("value") is None:
                continue
            lines.append(f"# TYPE {om_name} gauge")
            lines.append(f"{om_name} {_format_value(snap['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {om_name} histogram")
            count = int(snap.get("count", 0))
            for bound, cum in snap.get("buckets", []):
                lines.append(
                    f'{om_name}_bucket{{le="{_format_value(bound)}"}} '
                    f"{int(cum)}"
                )
            lines.append(f'{om_name}_bucket{{le="+Inf"}} {count}')
            lines.append(
                f"{om_name}_sum {_format_value(snap.get('sum', 0.0))}"
            )
            lines.append(f"{om_name}_count {count}")
        else:
            raise ExportError(
                f"metric {name!r} has unknown instrument type {kind!r}"
            )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def validate(text: str) -> int:
    """Check ``text`` against the OpenMetrics v1 invariants this module
    relies on; returns the number of samples.

    Raises :class:`~repro.errors.ExportError` on: missing/misplaced
    ``# EOF`` terminator, samples without a preceding ``# TYPE`` for
    their family, invalid sample names, counter samples missing the
    ``_total`` suffix, unparsable sample values, or — for histogram
    families — ``_bucket`` series whose ``le`` labels are unparsable or
    not strictly increasing, cumulative counts that decrease, a missing
    terminal ``le="+Inf"`` bucket, or an ``+Inf`` bucket that disagrees
    with ``_count``.
    """
    if not text.endswith("\n"):
        raise ExportError("exposition must end with a newline")
    lines = text.split("\n")[:-1]
    if not lines or lines[-1] != "# EOF":
        raise ExportError("exposition must terminate with '# EOF'")
    types: dict[str, str] = {}
    buckets: dict[str, list[tuple[float, float]]] = {}
    hist_counts: dict[str, float] = {}
    samples = 0
    for lineno, line in enumerate(lines[:-1], 1):
        if line == "# EOF":
            raise ExportError(f"line {lineno}: '# EOF' before end of exposition")
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "summary",
                "histogram",
                "unknown",
            ):
                raise ExportError(f"line {lineno}: malformed TYPE line {line!r}")
            if not _NAME_RE.match(parts[2]):
                raise ExportError(
                    f"line {lineno}: invalid family name {parts[2]!r}"
                )
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP/UNIT lines — not emitted here, but legal
        match = re.match(
            r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)( \S+)?$", line
        )
        if match is None:
            raise ExportError(f"line {lineno}: unparsable sample {line!r}")
        sample_name = match.group(1)
        family = sample_name
        for suffix in ("_total", "_count", "_sum", "_bucket", "_created"):
            if sample_name.endswith(suffix):
                family = sample_name[: -len(suffix)]
                break
        if family not in types and sample_name not in types:
            raise ExportError(
                f"line {lineno}: sample {sample_name!r} has no TYPE metadata"
            )
        kind = types.get(family, types.get(sample_name))
        if kind == "counter" and not (
            sample_name.endswith("_total") or sample_name.endswith("_created")
        ):
            raise ExportError(
                f"line {lineno}: counter sample {sample_name!r} must end "
                "in _total"
            )
        try:
            value = float(match.group(3))
        except ValueError as exc:
            raise ExportError(
                f"line {lineno}: unparsable value {match.group(3)!r}"
            ) from exc
        if kind == "histogram":
            if sample_name.endswith("_bucket"):
                le_match = _LE_RE.search(match.group(2) or "")
                if le_match is None:
                    raise ExportError(
                        f"line {lineno}: histogram bucket sample "
                        f"{sample_name!r} has no le label"
                    )
                le_text = le_match.group(1)
                try:
                    le = float(le_text)
                except ValueError as exc:
                    raise ExportError(
                        f"line {lineno}: unparsable le label {le_text!r}"
                    ) from exc
                series = buckets.setdefault(family, [])
                if series:
                    prev_le, prev_cum = series[-1]
                    if not le > prev_le:
                        raise ExportError(
                            f"line {lineno}: bucket le labels for "
                            f"{family!r} must be strictly increasing "
                            f"({prev_le!r} then {le_text!r})"
                        )
                    if value < prev_cum:
                        raise ExportError(
                            f"line {lineno}: cumulative bucket count for "
                            f"{family!r} decreased ({prev_cum} -> {value})"
                        )
                series.append((le, value))
            elif sample_name.endswith("_count"):
                hist_counts[family] = value
        samples += 1
    for family, series in buckets.items():
        if series[-1][0] != float("inf"):
            raise ExportError(
                f"histogram {family!r} is missing the terminal "
                'le="+Inf" bucket'
            )
        if family in hist_counts and series[-1][1] != hist_counts[family]:
            raise ExportError(
                f"histogram {family!r}: +Inf bucket ({series[-1][1]}) "
                f"disagrees with _count ({hist_counts[family]})"
            )
    for family, kind in types.items():
        if kind == "histogram" and family not in buckets:
            raise ExportError(
                f"histogram {family!r} exposes no _bucket series"
            )
    return samples


class _MetricsHandler(BaseHTTPRequestHandler):
    """Serves ``/metrics`` (and ``/``) from the bound registry."""

    registry: MetricsRegistry  # set on the subclass by serve()

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Answer a scrape."""
        if self.path.split("?", 1)[0] not in ("/", "/metrics"):
            self.send_error(404, "try /metrics")
            return
        body = render(self.registry).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr chatter (the CLI reports the URL)."""


class _MetricsServer(ThreadingHTTPServer):
    """Joins in-flight scrapes on close.

    ``ThreadingHTTPServer`` uses daemon threads, so ``handle_request()``
    returns once the handler is *dispatched* — a ``server_close()`` +
    process exit right after (the CLI's ``--once`` mode) would kill the
    response mid-write.  Non-daemon threads make ``server_close()``
    block until every in-flight request has been answered.
    """

    daemon_threads = False


def serve(
    metrics: MetricsRegistry, *, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A started-but-not-serving HTTP server exposing ``metrics``.

    The caller owns the lifecycle: call ``serve_forever()`` (blocking)
    or drive ``handle_request()``; ``server_address`` reports the bound
    ``(host, port)`` (useful with ``port=0``).  Stdlib only — no
    prometheus client involved.
    """
    if not isinstance(metrics, MetricsRegistry):
        raise ExportError(
            f"serve needs a MetricsRegistry, got {type(metrics).__name__}"
        )
    handler = type("BoundMetricsHandler", (_MetricsHandler,), {"registry": metrics})
    try:
        return _MetricsServer((host, port), handler)
    except OSError as exc:
        raise ExportError(f"cannot bind {host}:{port}: {exc}") from exc
