"""Span-based tracing with a guaranteed near-zero-overhead off switch.

A :class:`Tracer` records three kinds of things:

* **spans** — named intervals (`bfs.level`, `graph500.bfs`, …) opened
  with :meth:`Tracer.span` as a context manager.  Spans nest: each
  thread keeps its own stack, so the parallel engine's workers produce
  correctly-parented spans without locking on the hot path (the only
  lock is the append of the finished record).
* **instant events** — point-in-time facts (:meth:`Tracer.instant`),
  used for the decision-audit channel (direction choices, predicted
  switching points).
* **metrics** — each tracer owns a
  :class:`~repro.obs.metrics.MetricsRegistry`, reachable through the
  :meth:`count` / :meth:`gauge_set` / :meth:`observe` shorthands.

The library's engines all resolve their tracer as ``tracer if tracer is
not None else get_tracer()``, and the process-global default is
:data:`NULL_TRACER` — a :class:`NullTracer` whose ``span()`` returns a
shared singleton no-op span and whose metric shorthands return
immediately.  The disabled cost per BFS *level* is therefore a few
no-op method calls, unmeasurable next to a vectorized level kernel
(``benchmarks/bench_kernels.py`` enforces the <3% whole-traversal
bound).

Synthetic spans (:meth:`Tracer.add_span`) carry externally computed
start/end times — that is how the heterogeneous executor lays the
*simulated* device schedule onto its own trace tracks.

Cross-process propagation: every tracer owns a ``trace_id`` and can
describe its current position as a :class:`TraceContext`
(:meth:`Tracer.current_context`) — trace id, innermost open span id,
and caller-attached baggage.  Installing that context in another
tracer (:meth:`Tracer.use_context`, typically in a child process via
:func:`repro.obs.live.spawn_traced`) makes the child's *root* spans
parent under the recorded span id and adopt the parent's trace id, so
the stitched recording reads as one tree.
"""

from __future__ import annotations

import collections
import contextlib
import itertools
import logging
import os
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import ObsError
from repro.obs.clock import now
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "TraceContext",
    "SpanRecord",
    "EventRecord",
    "Span",
    "TraceListener",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


@dataclass(frozen=True)
class TraceContext:
    """A tracer's position, portable across threads and processes.

    ``trace_id`` identifies the recording, ``parent_span_id`` is the
    span new root spans should parent under (``None`` for a fresh
    trace), and ``baggage`` carries caller-attached JSON-ready facts
    (graph fingerprint, traversal root, …) that travel with the
    context rather than with any single span.
    """

    trace_id: str
    parent_span_id: int | None = None
    baggage: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready representation (what crosses the process pipe)."""
        return {
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
            "baggage": dict(self.baggage),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceContext":
        """Rebuild a context from :meth:`as_dict` output."""
        if not isinstance(payload, dict) or "trace_id" not in payload:
            raise ObsError(f"malformed trace-context payload: {payload!r}")
        parent = payload.get("parent_span_id")
        if parent is not None:
            parent = int(parent)
        return cls(
            trace_id=str(payload["trace_id"]),
            parent_span_id=parent,
            baggage=dict(payload.get("baggage") or {}),
        )


@dataclass(frozen=True)
class SpanRecord:
    """One finished (or synthetic) span."""

    name: str
    start: float
    end: float
    span_id: int
    parent_id: int | None
    thread_id: int
    thread_name: str
    track: str | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed seconds."""
        return self.end - self.start

    def as_dict(self) -> dict:
        """JSON-ready representation (the JSONL line payload)."""
        return {
            "kind": "span",
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "track": self.track,
            "attrs": self.attrs,
        }


@dataclass(frozen=True)
class EventRecord:
    """One instant event (a point on the timeline, no duration)."""

    name: str
    timestamp: float
    thread_id: int
    thread_name: str
    track: str | None = None
    attrs: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready representation (the JSONL line payload)."""
        return {
            "kind": "event",
            "name": self.name,
            "timestamp": self.timestamp,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "track": self.track,
            "attrs": self.attrs,
        }


class Span:
    """A live span; use as a context manager.

    Attributes may be attached at open time (``tracer.span(name,
    depth=3)``) or while running (:meth:`set`); they become the
    record's ``attrs`` and the Chrome trace ``args``.
    """

    __slots__ = (
        "_tracer", "name", "span_id", "parent_id", "track",
        "start", "end", "attrs",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        track: str | None,
        attrs: dict,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.track = track
        self.start: float | None = None
        self.end: float | None = None
        self.attrs = attrs

    def set(self, key: str, value) -> None:
        """Attach one attribute to the span."""
        self.attrs[key] = value

    @property
    def duration(self) -> float:
        """Elapsed seconds (only after the span has closed)."""
        if self.start is None or self.end is None:
            raise ObsError(f"span {self.name!r} has not finished")
        return self.end - self.start

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer._close(self)


class _NullSpan:
    """The shared do-nothing span returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass

    def set(self, key: str, value) -> None:
        """Discard the attribute."""


_NULL_SPAN = _NullSpan()


class TraceListener:
    """No-op base class for tracer observers.

    Listeners ride along the recording path (the flight recorder and
    the allocation profiler are both listeners) and are invoked
    *outside* the tracer lock, after the record has been appended.
    Override only the callbacks you need; the defaults discard
    everything, so a listener pays exactly one truthiness check on an
    un-instrumented tracer (``if self._listeners:``).
    """

    def on_span_open(self, span: "Span") -> None:
        """Called after ``span`` has been opened (start stamped)."""

    def on_span_close(self, record: SpanRecord) -> None:
        """Called after a finished span's record has been appended."""

    def on_event(self, record: EventRecord) -> None:
        """Called after an instant event has been appended."""

    def on_metric(self, name: str, kind: str, value: float) -> None:
        """Called after a metric shorthand updated the registry.

        ``kind`` is ``"count"`` / ``"gauge"`` / ``"observe"`` and
        ``value`` the increment, new gauge value, or observation —
        the streaming-aggregation hook (each observation is visible,
        unlike the registry's aggregated state)."""


class Tracer:
    """Collects spans, instant events and metrics for one recording.

    Parameters
    ----------
    clock:
        Callable returning seconds; :func:`repro.obs.clock.now` by
        default.  Inject a :class:`~repro.obs.clock.ManualClock` for
        deterministic tests or simulated timelines.
    metrics:
        Registry to aggregate into; a private one is created by default.
    logger:
        Optional :class:`logging.Logger` (or ``True`` for the package
        logger, see :mod:`repro.obs.log`): every finished span and every
        instant event is mirrored as a DEBUG record with the structured
        payload under ``extra={"repro_event": ...}``.
    capacity:
        When given, retain only the most recent ``capacity`` finished
        spans and the most recent ``capacity`` events (a bounded deque
        each).  Long-lived service tracers use this so memory stays
        flat; the flight recorder keeps its own independent ring.
    trace_id:
        Identity of the recording (a random 16-hex-char string by
        default).  Child-process tracers adopt the parent's id via
        :meth:`use_context` so stitched recordings share one trace.
    span_id_start:
        First span id handed out.  Cross-process stitching preserves
        child span ids verbatim, so each child tracer must draw from a
        disjoint range (:func:`repro.obs.live.spawn_traced` passes
        ``(child_index + 1) << 32``).
    """

    enabled = True

    def __init__(
        self,
        *,
        clock: Callable[[], float] = now,
        metrics: MetricsRegistry | None = None,
        logger: logging.Logger | bool | None = None,
        capacity: int | None = None,
        trace_id: str | None = None,
        span_id_start: int = 1,
    ) -> None:
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if logger is True:
            from repro.obs.log import get_logger

            logger = get_logger("trace")
        self.logger: logging.Logger | None = logger or None
        if capacity is not None and capacity < 1:
            raise ObsError(f"tracer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        if capacity is None:
            self._spans: list[SpanRecord] | collections.deque = []
            self._events: list[EventRecord] | collections.deque = []
        else:
            self._spans = collections.deque(maxlen=capacity)
            self._events = collections.deque(maxlen=capacity)
        if span_id_start < 1:
            raise ObsError(
                f"span_id_start must be >= 1, got {span_id_start}"
            )
        self.trace_id = trace_id or os.urandom(8).hex()
        self._context: TraceContext | None = None
        self._ids = itertools.count(span_id_start)
        self._local = threading.local()
        # Thread id -> that thread's live span stack.  Stacks are only
        # mutated by their owning thread; the registry lets the sampling
        # profiler *peek* at the innermost open span of another thread
        # (a racy read of the list tail, which is safe in CPython — the
        # worst case is a one-sample-stale tag).
        self._thread_stacks: dict[int, list[Span]] = {}
        self._listeners: list[TraceListener] = []

    # -- span lifecycle -----------------------------------------------------

    def span(
        self,
        name: str,
        *,
        track: str | None = None,
        parent: int | None = None,
        **attrs,
    ) -> Span:
        """Open a new span (enter the returned context manager).

        An explicit ``parent`` span id wins over the thread's stack —
        worker-pool spans pass the coordinating span's id so they
        parent correctly despite running on their own (empty-stack)
        threads.
        """
        return Span(self, name, next(self._ids), parent, track, attrs)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
            ident = threading.get_ident()
            with self._lock:
                self._thread_stacks[ident] = stack
        return stack

    def _open(self, span: Span) -> None:
        stack = self._stack()
        if span.parent_id is None:
            if stack:
                span.parent_id = stack[-1].span_id
            elif self._context is not None:
                # A root span under an installed cross-process context
                # parents under the remote span that spawned this work.
                span.parent_id = self._context.parent_span_id
        stack.append(span)
        span.start = self.clock()
        if self._listeners:
            for listener in self._listeners:
                listener.on_span_open(span)

    def _close(self, span: Span) -> None:
        span.end = self.clock()
        stack = self._stack()
        if not stack or stack[-1] is not span:
            raise ObsError(
                f"span {span.name!r} closed out of order (nesting broken)"
            )
        stack.pop()
        thread = threading.current_thread()
        record = SpanRecord(
            name=span.name,
            start=span.start,
            end=span.end,
            span_id=span.span_id,
            parent_id=span.parent_id,
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            track=span.track,
            attrs=span.attrs,
        )
        with self._lock:
            self._spans.append(record)
        if self._listeners:
            for listener in self._listeners:
                listener.on_span_close(record)
        if self.logger is not None:
            self.logger.debug(
                "span %s %.6fs",
                record.name,
                record.duration,
                extra={"repro_event": record.as_dict()},
            )

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        track: str | None = None,
        **attrs,
    ) -> SpanRecord:
        """Record a synthetic span with externally supplied timestamps.

        Used for simulated-clock annotations: the caller computed
        ``start``/``end`` on some other timeline (e.g. the
        :class:`~repro.arch.machine.SimulatedMachine`'s) and wants it on
        its own track in the exported trace.
        """
        if end < start:
            raise ObsError(
                f"span {name!r} ends before it starts ({start} > {end})"
            )
        thread = threading.current_thread()
        record = SpanRecord(
            name=name,
            start=float(start),
            end=float(end),
            span_id=next(self._ids),
            parent_id=None,
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            track=track,
            attrs=attrs,
        )
        with self._lock:
            self._spans.append(record)
        if self._listeners:
            for listener in self._listeners:
                listener.on_span_close(record)
        return record

    def adopt_record(
        self, record: SpanRecord | EventRecord
    ) -> SpanRecord | EventRecord:
        """Append a record from *another* tracer verbatim.

        The collector stitches child-process telemetry in through
        here: span/parent ids are preserved (children draw ids from a
        disjoint range, see ``span_id_start``), so cross-process
        parent links survive into the export.  Listeners are notified
        exactly as for a locally recorded span/event.
        """
        if isinstance(record, SpanRecord):
            if record.end < record.start:
                raise ObsError(
                    f"adopted span {record.name!r} ends before it starts"
                )
            with self._lock:
                self._spans.append(record)
            if self._listeners:
                for listener in self._listeners:
                    listener.on_span_close(record)
        elif isinstance(record, EventRecord):
            with self._lock:
                self._events.append(record)
            if self._listeners:
                for listener in self._listeners:
                    listener.on_event(record)
        else:
            raise ObsError(
                "adopt_record needs a SpanRecord or EventRecord, got "
                f"{type(record).__name__}"
            )
        return record

    # -- trace-context propagation -------------------------------------------

    def current_context(self, **baggage) -> TraceContext:
        """The calling thread's position as a :class:`TraceContext`.

        The parent span id is the innermost open span on this thread
        (falling back to the installed context's parent when the stack
        is empty, so a context survives re-export from a child).
        Keyword arguments extend the baggage; installed-context baggage
        is inherited.
        """
        stack = getattr(self._local, "stack", None)
        if stack:
            parent: int | None = stack[-1].span_id
        elif self._context is not None:
            parent = self._context.parent_span_id
        else:
            parent = None
        merged: dict = {}
        if self._context is not None:
            merged.update(self._context.baggage)
        merged.update(baggage)
        return TraceContext(
            trace_id=self.trace_id, parent_span_id=parent, baggage=merged
        )

    @contextlib.contextmanager
    def use_context(self, context: TraceContext) -> Iterator[TraceContext]:
        """Temporarily install ``context`` on this tracer.

        While installed, the tracer reports the context's trace id and
        new *root* spans (empty thread stack, no explicit parent)
        parent under ``context.parent_span_id``.  This is how a child
        process stitches into the parent's trace: build a fresh tracer,
        install the shipped context, run the work.
        """
        if not isinstance(context, TraceContext):
            raise ObsError(
                f"use_context needs a TraceContext, got "
                f"{type(context).__name__}"
            )
        previous_context = self._context
        previous_trace_id = self.trace_id
        self._context = context
        self.trace_id = context.trace_id
        try:
            yield context
        finally:
            self._context = previous_context
            self.trace_id = previous_trace_id

    # -- instant events ------------------------------------------------------

    def instant(self, name: str, *, track: str | None = None, **attrs) -> None:
        """Record a point-in-time event (the decision-audit channel)."""
        thread = threading.current_thread()
        record = EventRecord(
            name=name,
            timestamp=self.clock(),
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            track=track,
            attrs=attrs,
        )
        with self._lock:
            self._events.append(record)
        if self._listeners:
            for listener in self._listeners:
                listener.on_event(record)
        if self.logger is not None:
            self.logger.debug(
                "event %s",
                record.name,
                extra={"repro_event": record.as_dict()},
            )

    # -- listeners and cross-thread inspection --------------------------------

    def add_listener(self, listener: TraceListener) -> TraceListener:
        """Attach a :class:`TraceListener`; returns it for chaining."""
        if not isinstance(listener, TraceListener):
            raise ObsError(
                f"add_listener needs a TraceListener, got {type(listener).__name__}"
            )
        with self._lock:
            if listener not in self._listeners:
                # replace, don't mutate: callbacks iterate without the lock
                self._listeners = self._listeners + [listener]
        return listener

    def remove_listener(self, listener: TraceListener) -> None:
        """Detach a previously added listener (no-op if absent)."""
        with self._lock:
            self._listeners = [l for l in self._listeners if l is not listener]

    def open_span_names(self, thread_id: int | None = None) -> tuple[str, ...]:
        """Names of the live (open) spans, outermost first.

        With ``thread_id`` given, the requested thread's stack;
        otherwise the calling thread's.  This is the sampler's tagging
        hook: it reads another thread's stack *racily* (list reads are
        atomic in CPython), so a sample taken during a push/pop may see
        the stack one frame stale — an acceptable error at sampling
        resolution.
        """
        if thread_id is None:
            thread_id = threading.get_ident()
        stack = self._thread_stacks.get(thread_id)
        if not stack:
            return ()
        # snapshot-copy first: the owning thread may pop concurrently
        return tuple(span.name for span in list(stack))

    # -- metric shorthands ---------------------------------------------------

    def count(self, name: str, value: float = 1.0) -> None:
        """Increment the counter ``name``."""
        self.metrics.counter(name).add(value)
        if self._listeners:
            for listener in self._listeners:
                listener.on_metric(name, "count", value)

    def gauge_set(self, name: str, value: float) -> None:
        """Set the gauge ``name``."""
        self.metrics.gauge(name).set(value)
        if self._listeners:
            for listener in self._listeners:
                listener.on_metric(name, "gauge", value)

    def observe(self, name: str, value: float) -> None:
        """Observe ``value`` into the histogram ``name``."""
        self.metrics.histogram(name).observe(value)
        if self._listeners:
            for listener in self._listeners:
                listener.on_metric(name, "observe", value)

    # -- reading the recording ----------------------------------------------

    def spans(self, name: str | None = None) -> tuple[SpanRecord, ...]:
        """Finished spans, in completion order (optionally by name)."""
        with self._lock:
            records = tuple(self._spans)
        if name is None:
            return records
        return tuple(r for r in records if r.name == name)

    def events(self, name: str | None = None) -> tuple[EventRecord, ...]:
        """Instant events, in emission order (optionally by name)."""
        with self._lock:
            records = tuple(self._events)
        if name is None:
            return records
        return tuple(r for r in records if r.name == name)

    def span_seconds(self) -> dict[str, float]:
        """Total recorded seconds per span name."""
        out: dict[str, float] = {}
        for rec in self.spans():
            out[rec.name] = out.get(rec.name, 0.0) + rec.duration
        return out

    def summary_rows(self) -> list[dict]:
        """Per-span-name aggregate rows (for table rendering)."""
        counts: dict[str, int] = {}
        totals: dict[str, float] = {}
        for rec in self.spans():
            counts[rec.name] = counts.get(rec.name, 0) + 1
            totals[rec.name] = totals.get(rec.name, 0.0) + rec.duration
        return [
            {
                "span": name,
                "count": counts[name],
                "total_ms": 1e3 * totals[name],
                "mean_ms": 1e3 * totals[name] / counts[name],
            }
            for name in sorted(totals, key=totals.get, reverse=True)
        ]

    def clear(self) -> None:
        """Drop all recorded spans and events (metrics are untouched;
        use ``tracer.metrics.reset()`` for those)."""
        with self._lock:
            self._spans.clear()
            self._events.clear()


class NullTracer(Tracer):
    """The disabled tracer: records nothing, allocates nothing per call.

    ``span()`` returns a shared no-op span, ``instant()`` and the metric
    shorthands return immediately.  This is the process-global default
    (:data:`NULL_TRACER`), so un-configured production runs pay only a
    handful of no-op calls per BFS level.
    """

    enabled = False

    def span(  # type: ignore[override]
        self,
        name: str,
        *,
        track: str | None = None,
        parent: int | None = None,
        **attrs,
    ) -> _NullSpan:
        """Return the shared no-op span."""
        return _NULL_SPAN

    def add_span(self, name, start, end, *, track=None, **attrs):  # type: ignore[override]
        """Discard the synthetic span."""
        return None

    def adopt_record(self, record):  # type: ignore[override]
        """Discard the adopted record."""
        return record

    def instant(self, name: str, *, track: str | None = None, **attrs) -> None:
        """Discard the event."""

    def count(self, name: str, value: float = 1.0) -> None:
        """Discard the increment."""

    def gauge_set(self, name: str, value: float) -> None:
        """Discard the value."""

    def observe(self, name: str, value: float) -> None:
        """Discard the observation."""


#: The process-wide default: tracing off.
NULL_TRACER = NullTracer()

_global_lock = threading.Lock()
_global_tracer: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The current process-global tracer (default: :data:`NULL_TRACER`)."""
    return _global_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-global tracer; returns the
    previous one."""
    global _global_tracer
    if not isinstance(tracer, Tracer):
        raise ObsError(f"set_tracer needs a Tracer, got {type(tracer).__name__}")
    with _global_lock:
        previous = _global_tracer
        _global_tracer = tracer
    return previous


@contextlib.contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Temporarily install ``tracer`` as the process-global tracer."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
