"""The observability clock — the one place the library reads wall time.

Every measurement in the repository flows through :func:`now` (a
monotonic, high-resolution performance counter).  Lint rule ``RPR008``
enforces this: ad-hoc ``time.perf_counter()`` call sites outside
:mod:`repro.obs` are flagged, so timing semantics (monotonicity, the
units of a span, what "a second" means in an exported trace) are decided
exactly once.

:class:`ManualClock` is a deterministic stand-in with the same call
signature, used by the tracer tests and by simulated-clock annotations
(a trace track laid out in *simulated* seconds uses a manual clock so
span timestamps are the simulator's, not this host's).
"""

from __future__ import annotations

import time

from repro.errors import ObsError

__all__ = ["now", "ManualClock"]


def now() -> float:
    """Seconds on the library's benchmark clock (monotonic)."""
    return time.perf_counter()


class ManualClock:
    """A clock that only moves when told to.

    Callable like :func:`now`; :meth:`advance` moves it forward.  Useful
    for deterministic tracer tests and for emitting spans on a simulated
    timeline.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._t = float(start)

    def __call__(self) -> float:
        """Current manual time in seconds."""
        return self._t

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` (must be >= 0)."""
        if seconds < 0:
            raise ObsError(
                f"a monotonic clock cannot go backwards ({seconds} s)"
            )
        self._t += float(seconds)
        return self._t
