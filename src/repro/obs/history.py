"""Persistent run history: an append-only, schema-versioned JSONL store.

PR 3's instruments (tracer, metrics registry, decision audit) see one
run at a time; this module is the longitudinal half of the monitoring
story.  Every benchmarked or traced run can be folded into a
:class:`RunRecord` — the metrics-registry snapshot, span-summary
aggregates, TEPS, the mistuning-audit verdict, and an environment
fingerprint — and appended to a :class:`HistoryStore` (one JSON object
per line, by default under ``benchmarks/results/history/``).  The
regression detector and drift monitor in :mod:`repro.obs.monitor` read
the same records back.

Design constraints the format encodes:

* **append-only** — a run is one line; concurrent writers never rewrite
  earlier history, and a truncated final line (crashed writer) must not
  poison the file;
* **schema-versioned** — every record carries ``schema_version``;
  reading a record written by a *newer* library refuses loudly instead
  of silently misinterpreting it, while corrupt/truncated lines are
  skipped (and counted) by default;
* **environment-aware** — records fingerprint the git revision,
  interpreter, NumPy, CPU count and (hashed) hostname, so cross-machine
  noise is attributable when a trajectory looks like a regression.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import socket
import subprocess
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.errors import HistoryError

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_HISTORY_PATH",
    "RunRecord",
    "HistoryStore",
    "environment_fingerprint",
    "snapshot_run",
]

#: Version of the on-disk record layout.  Bump when a field changes
#: meaning; readers refuse records from the future.
SCHEMA_VERSION = 1

#: Where the repository keeps its own trajectory (relative to the repo
#: root; the CLI's ``--history`` default).
DEFAULT_HISTORY_PATH = Path("benchmarks/results/history/runs.jsonl")

_RECORD_FIELDS = (
    "schema_version",
    "kind",
    "workload",
    "timestamp",
    "metrics",
    "spans",
    "teps",
    "audit",
    "environment",
    "meta",
)


def _git_revision() -> str | None:
    """Current git commit sha, or ``None`` outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and len(sha) == 40 else None


def environment_fingerprint() -> dict:
    """Where and with what a run executed (JSON-ready).

    The hostname is stored as a truncated SHA-256 so records can be
    shared (CI artifacts, committed trajectories) without leaking
    machine names, while still distinguishing machines.
    """
    return {
        "git_sha": _git_revision(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": sys.platform,
        "cpu_count": os.cpu_count(),
        "hostname_hash": hashlib.sha256(
            socket.gethostname().encode("utf-8", "replace")
        ).hexdigest()[:12],
    }


def _utc_now_iso() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


@dataclass(frozen=True)
class RunRecord:
    """One run's monitoring payload (one JSONL line).

    ``kind`` names the producing flow (``"bfs"``, ``"graph500"``,
    ``"trace"``, ``"bench.experiment"``, ``"bench.kernels"``);
    ``workload`` is the comparability key — records are only compared
    against earlier records with the same ``(kind, workload)``, so a
    scale-10 smoke run never baselines a scale-16 measurement.
    """

    kind: str
    workload: str
    metrics: dict = field(default_factory=dict)
    spans: tuple = ()
    teps: float | None = None
    audit: dict | None = None
    environment: dict = field(default_factory=environment_fingerprint)
    meta: dict = field(default_factory=dict)
    timestamp: str = field(default_factory=_utc_now_iso)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.kind or not isinstance(self.kind, str):
            raise HistoryError(f"kind must be a non-empty str, got {self.kind!r}")
        if not self.workload or not isinstance(self.workload, str):
            raise HistoryError(
                f"workload must be a non-empty str, got {self.workload!r}"
            )
        if self.schema_version != SCHEMA_VERSION:
            raise HistoryError(
                f"cannot build a v{self.schema_version} record with a "
                f"v{SCHEMA_VERSION} library"
            )

    @property
    def series_key(self) -> tuple[str, str]:
        """The ``(kind, workload)`` pair baselines are grouped by."""
        return (self.kind, self.workload)

    def as_dict(self) -> dict:
        """JSON-ready representation (the JSONL line payload)."""
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "workload": self.workload,
            "timestamp": self.timestamp,
            "metrics": self.metrics,
            "spans": list(self.spans),
            "teps": self.teps,
            "audit": self.audit,
            "environment": self.environment,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRecord":
        """Inverse of :meth:`as_dict`.

        Raises :class:`~repro.errors.HistoryError` when the payload is
        from a newer schema (refusal) or structurally malformed
        (treated as corruption by tolerant readers).
        """
        if not isinstance(payload, dict):
            raise HistoryError(f"record must be an object, got {type(payload).__name__}")
        version = payload.get("schema_version")
        if not isinstance(version, int):
            raise HistoryError("record lacks an integer schema_version")
        if version > SCHEMA_VERSION:
            raise HistoryError(
                f"record has schema_version {version}; this library reads "
                f"<= {SCHEMA_VERSION} — refusing to guess at future fields"
            )
        unknown = set(payload) - set(_RECORD_FIELDS)
        if unknown:
            raise HistoryError(f"record has unknown fields {sorted(unknown)}")
        try:
            return cls(
                kind=payload["kind"],
                workload=payload["workload"],
                metrics=dict(payload.get("metrics") or {}),
                spans=tuple(payload.get("spans") or ()),
                teps=payload.get("teps"),
                audit=payload.get("audit"),
                environment=dict(payload.get("environment") or {}),
                meta=dict(payload.get("meta") or {}),
                timestamp=str(payload.get("timestamp", "")),
                schema_version=version,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise HistoryError(f"malformed record: {exc}") from exc


def snapshot_run(
    kind: str,
    workload: str,
    *,
    tracer=None,
    metrics: dict | None = None,
    spans: Iterable[dict] | None = None,
    teps: float | None = None,
    audit=None,
    **meta,
) -> RunRecord:
    """Fold one run's telemetry into a :class:`RunRecord`.

    ``tracer`` (when given and enabled) supplies the metrics-registry
    snapshot and per-span aggregate rows; explicit ``metrics``/``spans``
    override it.  ``audit`` accepts a
    :class:`~repro.obs.audit.MistuningReport`-like object (anything with
    ``as_dict()``) or a plain dict.  Remaining keyword arguments land in
    ``meta`` (seed, thresholds, labels, …).
    """
    if tracer is not None and getattr(tracer, "enabled", False):
        if metrics is None:
            metrics = tracer.metrics.snapshot()
        if spans is None:
            spans = tracer.summary_rows()
    if audit is not None and hasattr(audit, "as_dict"):
        audit = audit.as_dict()
    return RunRecord(
        kind=kind,
        workload=workload,
        metrics=dict(metrics or {}),
        spans=tuple(spans or ()),
        teps=None if teps is None else float(teps),
        audit=audit,
        meta=dict(meta),
    )


class HistoryStore:
    """Append-only JSONL store of :class:`RunRecord` lines.

    ``read()`` is tolerant by default: undecodable or structurally
    malformed lines are skipped and reported via :attr:`last_skipped`
    (a crashed writer must not poison the trajectory), while a record
    carrying a *newer* ``schema_version`` always raises — that is a
    version mismatch, not corruption.  ``strict=True`` upgrades skips
    to errors.
    """

    def __init__(self, path: str | Path = DEFAULT_HISTORY_PATH) -> None:
        self.path = Path(path)
        #: ``(line_number, reason)`` pairs skipped by the last ``read()``.
        self.last_skipped: tuple[tuple[int, str], ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HistoryStore({str(self.path)!r})"

    def append(self, record: RunRecord) -> Path:
        """Append one record; creates the file (and parents) on first use."""
        if not isinstance(record, RunRecord):
            raise HistoryError(
                f"append needs a RunRecord, got {type(record).__name__}"
            )
        try:
            line = json.dumps(record.as_dict(), sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise HistoryError(f"record is not JSON-serializable: {exc}") from exc
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
        return self.path

    def read(self, *, strict: bool = False) -> list[RunRecord]:
        """All readable records, oldest first.

        Sets :attr:`last_skipped`; raises on newer-schema records (see
        class docstring) and, with ``strict=True``, on any skip.
        """
        if not self.path.exists():
            self.last_skipped = ()
            return []
        records: list[RunRecord] = []
        skipped: list[tuple[int, str]] = []
        with self.path.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    if strict:
                        raise HistoryError(
                            f"{self.path}:{lineno}: corrupt line: {exc}"
                        ) from exc
                    skipped.append((lineno, f"undecodable JSON: {exc.msg}"))
                    continue
                try:
                    records.append(RunRecord.from_dict(payload))
                except HistoryError as exc:
                    if _is_schema_refusal(payload):
                        raise HistoryError(
                            f"{self.path}:{lineno}: {exc}"
                        ) from exc
                    if strict:
                        raise HistoryError(
                            f"{self.path}:{lineno}: {exc}"
                        ) from exc
                    skipped.append((lineno, str(exc)))
        self.last_skipped = tuple(skipped)
        return records

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.read())

    def __len__(self) -> int:
        return len(self.read())

    def tail(self, n: int) -> list[RunRecord]:
        """The newest ``n`` records (oldest-first order preserved)."""
        if n < 0:
            raise HistoryError(f"tail needs n >= 0, got {n}")
        return self.read()[-n:] if n else []

    def series(self, kind: str, workload: str) -> list[RunRecord]:
        """Records matching one ``(kind, workload)`` comparability key."""
        return [
            r for r in self.read() if r.series_key == (kind, workload)
        ]


def _is_schema_refusal(payload) -> bool:
    """Whether a failed parse was a newer-schema refusal (never skipped)."""
    return (
        isinstance(payload, dict)
        and isinstance(payload.get("schema_version"), int)
        and payload["schema_version"] > SCHEMA_VERSION
    )
