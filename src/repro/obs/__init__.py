"""Observability for the BFS stack: tracing, metrics, telemetry audit.

Four pieces, designed to be threaded through every engine in the
repository:

* :mod:`repro.obs.tracer` — span-based tracing (nestable, thread-safe,
  near-zero-overhead when disabled) plus instant events for the
  decision-audit channel;
* :mod:`repro.obs.metrics` — counters/gauges/histograms with
  snapshot/reset semantics (``bfs.levels``, ``bfs.edges_examined``,
  ``frontier.claim_ratio``, ``teps``);
* :mod:`repro.obs.export` — JSONL event streams and Chrome trace-event
  JSON (open the ``.trace.json`` in Perfetto; one track per
  device/worker);
* :mod:`repro.obs.audit` — per-run mistuning reports comparing the
  policy's predicted switching point against the post-hoc best one
  priced on the measured :class:`~repro.bfs.trace.LevelProfile`;
* :mod:`repro.obs.profile` — the continuous-profiling tier: sampling
  stack profiler (span-tagged flamegraphs), per-span ``tracemalloc``
  allocation windows, measured-vs-predicted explain reports and the
  anomaly flight recorder;
* :mod:`repro.obs.live` — the cross-process live tier: trace-context
  propagation into child processes (:func:`spawn_traced`), the frame
  channel and :class:`Collector`, streaming window aggregation with
  SLO burn-rate alerting, and the ``repro-bfs top`` dashboard.

Nothing records unless a real :class:`Tracer` is installed
(:func:`set_tracer` / :func:`use_tracer`) or passed explicitly; the
default is :data:`NULL_TRACER`. See ``docs/observability.md``.
"""

from repro.obs.clock import ManualClock, now
from repro.obs.export import (
    JSONL_FORMAT,
    chrome_trace,
    read_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.log import ROOT_LOGGER_NAME, basic_config, get_logger
from repro.obs.metrics import (
    METRIC_CATALOG,
    METRICS_PAYLOAD_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import (
    NULL_TRACER,
    EventRecord,
    NullTracer,
    Span,
    SpanRecord,
    TraceContext,
    TraceListener,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

# The audit and monitor layers consume the tuning/arch stack, which
# itself imports the (tracer-instrumented) BFS engines — importing them
# eagerly here would close an import cycle.  PEP 562 lazy attributes
# break it: engines can `import repro.obs.tracer` freely, and the
# heavier modules load on first use.
_LAZY = {
    "MistuningReport": "audit",
    "CrossMistuningReport": "audit",
    "audit_switching_point": "audit",
    "audit_cross_architecture": "audit",
    "SCHEMA_VERSION": "history",
    "DEFAULT_HISTORY_PATH": "history",
    "RunRecord": "history",
    "HistoryStore": "history",
    "environment_fingerprint": "history",
    "snapshot_run": "history",
    "MetricPolicy": "monitor",
    "DEFAULT_POLICIES": "monitor",
    "flatten_metrics": "monitor",
    "RegressionFinding": "monitor",
    "RegressionReport": "monitor",
    "detect_regressions": "monitor",
    "DriftAlert": "monitor",
    "DriftMonitor": "monitor",
    "PolicyAuditReport": "monitor",
    "price_directions": "monitor",
    "oracle_directions": "monitor",
    "audit_policy_directions": "monitor",
    "OPENMETRICS_CONTENT_TYPE": "openmetrics",
    "render_openmetrics": "openmetrics",
    "validate_openmetrics": "openmetrics",
    "serve_metrics": "openmetrics",
    "StackSampler": "profile",
    "AllocationProfiler": "profile",
    "ExplainReport": "profile",
    "explain_traversal": "profile",
    "FlightRecorder": "profile",
    "graph_fingerprint": "profile",
    "validate_snapshot": "profile",
    "ProfileSession": "profile",
    "FRAME_SCHEMA": "live",
    "ChannelExporter": "live",
    "CaptureFile": "live",
    "read_capture": "live",
    "spawn_traced": "live",
    "Collector": "live",
    "QuantileSketch": "live",
    "LiveAggregator": "live",
    "SLOPolicy": "live",
    "SLOAlert": "live",
    "BurnRateEvaluator": "live",
    "Dashboard": "live",
}

# The openmetrics module names its exports without the namespace prefix;
# map the package-level aliases back to their in-module names.
_LAZY_ALIASES = {
    "OPENMETRICS_CONTENT_TYPE": "CONTENT_TYPE",
    "render_openmetrics": "render",
    "validate_openmetrics": "validate",
    "serve_metrics": "serve",
}


def __getattr__(name: str):
    """Lazily resolve the audit/history/monitor exports (avoids cycles)."""
    modname = _LAZY.get(name)
    if modname is not None:
        import importlib

        module = importlib.import_module(f"repro.obs.{modname}")
        return getattr(module, _LAZY_ALIASES.get(name, name))
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "now",
    "ManualClock",
    "METRIC_CATALOG",
    "METRICS_PAYLOAD_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecord",
    "EventRecord",
    "TraceContext",
    "TraceListener",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "JSONL_FORMAT",
    "write_jsonl",
    "read_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "MistuningReport",
    "CrossMistuningReport",
    "audit_switching_point",
    "audit_cross_architecture",
    "SCHEMA_VERSION",
    "DEFAULT_HISTORY_PATH",
    "RunRecord",
    "HistoryStore",
    "environment_fingerprint",
    "snapshot_run",
    "MetricPolicy",
    "DEFAULT_POLICIES",
    "flatten_metrics",
    "RegressionFinding",
    "RegressionReport",
    "detect_regressions",
    "DriftAlert",
    "DriftMonitor",
    "PolicyAuditReport",
    "price_directions",
    "oracle_directions",
    "audit_policy_directions",
    "OPENMETRICS_CONTENT_TYPE",
    "render_openmetrics",
    "validate_openmetrics",
    "serve_metrics",
    "StackSampler",
    "AllocationProfiler",
    "ExplainReport",
    "explain_traversal",
    "FlightRecorder",
    "graph_fingerprint",
    "validate_snapshot",
    "ProfileSession",
    "FRAME_SCHEMA",
    "ChannelExporter",
    "CaptureFile",
    "read_capture",
    "spawn_traced",
    "Collector",
    "QuantileSketch",
    "LiveAggregator",
    "SLOPolicy",
    "SLOAlert",
    "BurnRateEvaluator",
    "Dashboard",
    "get_logger",
    "basic_config",
    "ROOT_LOGGER_NAME",
]
