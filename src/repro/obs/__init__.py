"""Observability for the BFS stack: tracing, metrics, telemetry audit.

Four pieces, designed to be threaded through every engine in the
repository:

* :mod:`repro.obs.tracer` — span-based tracing (nestable, thread-safe,
  near-zero-overhead when disabled) plus instant events for the
  decision-audit channel;
* :mod:`repro.obs.metrics` — counters/gauges/histograms with
  snapshot/reset semantics (``bfs.levels``, ``bfs.edges_examined``,
  ``frontier.claim_ratio``, ``teps``);
* :mod:`repro.obs.export` — JSONL event streams and Chrome trace-event
  JSON (open the ``.trace.json`` in Perfetto; one track per
  device/worker);
* :mod:`repro.obs.audit` — per-run mistuning reports comparing the
  policy's predicted switching point against the post-hoc best one
  priced on the measured :class:`~repro.bfs.trace.LevelProfile`.

Nothing records unless a real :class:`Tracer` is installed
(:func:`set_tracer` / :func:`use_tracer`) or passed explicitly; the
default is :data:`NULL_TRACER`. See ``docs/observability.md``.
"""

from repro.obs.clock import ManualClock, now
from repro.obs.export import (
    JSONL_FORMAT,
    chrome_trace,
    read_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.log import ROOT_LOGGER_NAME, basic_config, get_logger
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import (
    NULL_TRACER,
    EventRecord,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

# The audit layer consumes the tuning/hetero stack, which itself imports
# the (tracer-instrumented) BFS engines — importing it eagerly here would
# close an import cycle.  PEP 562 lazy attributes break it: engines can
# `import repro.obs.tracer` freely, and audit loads on first use.
_AUDIT_NAMES = (
    "MistuningReport",
    "CrossMistuningReport",
    "audit_switching_point",
    "audit_cross_architecture",
)


def __getattr__(name: str):
    """Lazily resolve the decision-audit exports (avoids an import cycle)."""
    if name in _AUDIT_NAMES:
        from repro.obs import audit

        return getattr(audit, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "now",
    "ManualClock",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecord",
    "EventRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "JSONL_FORMAT",
    "write_jsonl",
    "read_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "MistuningReport",
    "CrossMistuningReport",
    "audit_switching_point",
    "audit_cross_architecture",
    "get_logger",
    "basic_config",
    "ROOT_LOGGER_NAME",
]
