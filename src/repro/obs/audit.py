"""Decision audit: predicted switching points vs post-hoc optimal ones.

The paper's headline failure mode is a mistuned ``(M, N)``: the same
hybrid engine that beats both pure directions by integer factors turns
into a slowdown when its switching point is wrong (Fig. 8's worst case
is ~695× off best).  This module makes that signal *live*: given the
:class:`~repro.bfs.trace.LevelProfile` a traversal just produced and the
policy's chosen parameters, it prices the chosen plan and the post-hoc
best plan on the same cost model and emits a
:class:`MistuningReport` — predicted M vs best M, simulated cost of
each, and the per-level direction choices that differ.

Everything is priced through
:func:`~repro.tuning.search.evaluate_single` /
:func:`~repro.tuning.search.evaluate_cross`, so an audit costs
milliseconds (the offline/online asymmetry of Section III-E) and can run
after every traversal in production.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.costmodel import CostModel
from repro.arch.machine import SimulatedMachine
from repro.bfs.trace import LevelProfile
from repro.errors import ObsError
from repro.hetero.planner import cross_plan, mn_directions, oracle_plan
from repro.obs.tracer import Tracer, get_tracer
from repro.tuning.search import (
    candidate_cross_grid,
    candidate_mn_grid,
    evaluate_cross,
    evaluate_single,
)

__all__ = [
    "MistuningReport",
    "CrossMistuningReport",
    "audit_switching_point",
    "audit_cross_architecture",
]


@dataclass(frozen=True)
class MistuningReport:
    """Predicted vs post-hoc-best switching point for one traversal."""

    source: int
    predicted_m: float
    predicted_n: float
    best_m: float
    best_n: float
    predicted_seconds: float
    best_seconds: float
    predicted_directions: tuple[str, ...]
    best_directions: tuple[str, ...]
    candidates_searched: int
    meta: dict = field(default_factory=dict)

    @property
    def slowdown(self) -> float:
        """Chosen plan's cost relative to the best plan (1.0 = optimal)."""
        if self.best_seconds <= 0:
            raise ObsError("best plan has non-positive simulated cost")
        return self.predicted_seconds / self.best_seconds

    @property
    def levels_mistuned(self) -> int:
        """Levels where the chosen direction differs from the best plan's."""
        return sum(
            1
            for a, b in zip(self.predicted_directions, self.best_directions)
            if a != b
        )

    def is_mistuned(self, tolerance: float = 1.05) -> bool:
        """True when the chosen plan costs more than ``tolerance`` ×
        the best plan's simulated seconds."""
        if tolerance < 1.0:
            raise ObsError(f"tolerance must be >= 1.0, got {tolerance}")
        return self.slowdown > tolerance

    def as_dict(self) -> dict:
        """JSON-ready representation (saved with bench results)."""
        return {
            "source": self.source,
            "predicted_m": self.predicted_m,
            "predicted_n": self.predicted_n,
            "best_m": self.best_m,
            "best_n": self.best_n,
            "predicted_seconds": self.predicted_seconds,
            "best_seconds": self.best_seconds,
            "slowdown": self.slowdown,
            "levels_mistuned": self.levels_mistuned,
            "predicted_directions": list(self.predicted_directions),
            "best_directions": list(self.best_directions),
            "candidates_searched": self.candidates_searched,
            "meta": self.meta,
        }

    def render(self) -> str:
        """Human-readable mistuning report (the CLI summary block)."""
        lines = [
            f"mistuning report (source {self.source}, "
            f"{self.candidates_searched} candidates)",
            f"  predicted (M, N) = ({self.predicted_m:.3g}, "
            f"{self.predicted_n:.3g})  ->  {self.predicted_seconds:.6f} s (simulated)",
            f"  best      (M, N) = ({self.best_m:.3g}, "
            f"{self.best_n:.3g})  ->  {self.best_seconds:.6f} s (simulated)",
            f"  slowdown vs best: {self.slowdown:.3f}x   "
            f"mistuned levels: {self.levels_mistuned}/{len(self.predicted_directions)}",
        ]
        marks = []
        for lvl, (a, b) in enumerate(
            zip(self.predicted_directions, self.best_directions)
        ):
            flag = " " if a == b else "!"
            marks.append(f"    level {lvl:>2}: chose {a:<9} best {b:<9} {flag}")
        lines.extend(marks)
        verdict = "MISTUNED" if self.is_mistuned() else "well-tuned"
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CrossMistuningReport:
    """Predicted vs best (M1, N1, M2, N2) for an Algorithm-3 traversal."""

    source: int
    predicted: tuple[float, float, float, float]
    best: tuple[float, float, float, float]
    predicted_seconds: float
    best_seconds: float
    oracle_seconds: float
    candidates_searched: int

    @property
    def slowdown(self) -> float:
        """Chosen plan's cost relative to the best candidate."""
        if self.best_seconds <= 0:
            raise ObsError("best plan has non-positive simulated cost")
        return self.predicted_seconds / self.best_seconds

    def is_mistuned(self, tolerance: float = 1.05) -> bool:
        """True when the chosen plan exceeds ``tolerance`` × best."""
        if tolerance < 1.0:
            raise ObsError(f"tolerance must be >= 1.0, got {tolerance}")
        return self.slowdown > tolerance

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "source": self.source,
            "predicted": list(self.predicted),
            "best": list(self.best),
            "predicted_seconds": self.predicted_seconds,
            "best_seconds": self.best_seconds,
            "oracle_seconds": self.oracle_seconds,
            "slowdown": self.slowdown,
            "candidates_searched": self.candidates_searched,
        }

    def render(self) -> str:
        """Human-readable cross-architecture mistuning report."""
        p = ", ".join(f"{v:.3g}" for v in self.predicted)
        b = ", ".join(f"{v:.3g}" for v in self.best)
        verdict = "MISTUNED" if self.is_mistuned() else "well-tuned"
        return "\n".join(
            [
                f"cross-architecture mistuning report (source {self.source}, "
                f"{self.candidates_searched} candidates)",
                f"  predicted (M1, N1, M2, N2) = ({p})  ->  "
                f"{self.predicted_seconds:.6f} s (simulated)",
                f"  best      (M1, N1, M2, N2) = ({b})  ->  "
                f"{self.best_seconds:.6f} s (simulated)",
                f"  oracle placement: {self.oracle_seconds:.6f} s (simulated)",
                f"  slowdown vs best: {self.slowdown:.3f}x   verdict: {verdict}",
            ]
        )


def _check_profile(profile: LevelProfile) -> None:
    if len(profile) == 0:
        raise ObsError("cannot audit an empty profile")


def audit_switching_point(
    profile: LevelProfile,
    model: CostModel,
    predicted_m: float,
    predicted_n: float,
    *,
    candidates: np.ndarray | None = None,
    count: int = 1000,
    seed: int = 0,
    tracer: Tracer | None = None,
    **meta,
) -> MistuningReport:
    """Audit a single-device hybrid's chosen ``(M, N)``.

    Prices the chosen point and a candidate sweep (log-uniform grid by
    default, the paper's 1,000 cases) over the measured ``profile``, and
    records an ``audit.switching_point`` instant event on the tracer.
    The chosen point is always included in the sweep, so
    ``predicted_seconds >= best_seconds`` holds by construction.
    """
    _check_profile(profile)
    if predicted_m <= 0 or predicted_n <= 0:
        raise ObsError(
            f"M and N must be positive, got ({predicted_m}, {predicted_n})"
        )
    tr = tracer if tracer is not None else get_tracer()
    if candidates is None:
        candidates = candidate_mn_grid(count, seed=seed)
    candidates = np.vstack(
        [np.atleast_2d(candidates), [[predicted_m, predicted_n]]]
    )
    seconds = evaluate_single(profile, model, candidates)
    best = int(np.argmin(seconds))
    best_m, best_n = (float(v) for v in candidates[best])
    report = MistuningReport(
        source=profile.source,
        predicted_m=float(predicted_m),
        predicted_n=float(predicted_n),
        best_m=best_m,
        best_n=best_n,
        predicted_seconds=float(seconds[-1]),
        best_seconds=float(seconds[best]),
        predicted_directions=tuple(
            mn_directions(profile, predicted_m, predicted_n)
        ),
        best_directions=tuple(mn_directions(profile, best_m, best_n)),
        candidates_searched=int(candidates.shape[0]),
        meta=dict(meta),
    )
    tr.instant(
        "audit.switching_point",
        predicted_m=report.predicted_m,
        best_m=report.best_m,
        slowdown=report.slowdown,
        levels_mistuned=report.levels_mistuned,
    )
    return report


def audit_cross_architecture(
    profile: LevelProfile,
    machine: SimulatedMachine,
    predicted: tuple[float, float, float, float],
    *,
    candidates: np.ndarray | None = None,
    count: int = 200,
    seed: int = 0,
    cpu: str = "cpu",
    gpu: str = "gpu",
    tracer: Tracer | None = None,
) -> CrossMistuningReport:
    """Audit an Algorithm-3 traversal's chosen ``(M1, N1, M2, N2)``.

    The default candidate count is smaller than the single-device
    audit's because cross pricing is a Python loop over plans, not a
    vectorized matrix reduction.  Also prices the
    :func:`~repro.hetero.planner.oracle_plan` as the placement upper
    bound.
    """
    _check_profile(profile)
    predicted = tuple(float(v) for v in predicted)
    if len(predicted) != 4 or any(v <= 0 for v in predicted):
        raise ObsError(
            f"predicted must be 4 positive values (M1, N1, M2, N2), "
            f"got {predicted}"
        )
    tr = tracer if tracer is not None else get_tracer()
    if candidates is None:
        candidates = candidate_cross_grid(count, seed=seed)
    candidates = np.vstack([np.atleast_2d(candidates), [list(predicted)]])
    seconds = evaluate_cross(profile, machine, candidates, cpu=cpu, gpu=gpu)
    best = int(np.argmin(seconds))
    oracle = machine.run(profile, oracle_plan(machine, profile))
    m1, n1, m2, n2 = predicted
    predicted_seconds = float(
        machine.run(
            profile, cross_plan(profile, m1, n1, m2, n2, cpu=cpu, gpu=gpu)
        ).total_seconds
    )
    report = CrossMistuningReport(
        source=profile.source,
        predicted=predicted,
        best=tuple(float(v) for v in candidates[best]),
        predicted_seconds=predicted_seconds,
        best_seconds=float(seconds[best]),
        oracle_seconds=float(oracle.total_seconds),
        candidates_searched=int(candidates.shape[0]),
    )
    tr.instant(
        "audit.cross_architecture",
        predicted=list(report.predicted),
        best=list(report.best),
        slowdown=report.slowdown,
    )
    return report
