"""Statistical regression gates and predictor drift monitoring.

Two watchdogs over the :mod:`repro.obs.history` trajectory:

* :func:`detect_regressions` — compares the latest run of a
  ``(kind, workload)`` series against a rolling baseline window using
  **median + MAD**: a metric regresses only when it both degrades past
  its policy's relative threshold *and* sits ``nsigma`` robust standard
  deviations away from the baseline median (with a MAD ≈ 0 fallback so
  a perfectly flat baseline still gates on the threshold alone).  The
  result is a structured :class:`RegressionReport` with text and JSON
  renderers and a CI-ready pass/fail verdict.
* :class:`DriftMonitor` — folds successive mistuning-audit verdicts
  (:func:`repro.obs.audit.audit_switching_point` /
  ``audit_cross_architecture`` / :class:`PolicyAuditReport`) into a
  rolling slowdown series per ``(family, arch)`` and raises a
  :class:`DriftAlert` when the windowed mean slowdown crosses a
  tolerance — the live defense against the paper's silent-mistuning
  failure mode (a predictor that was good on one workload mix quietly
  degrading on another).

:func:`price_directions` / :func:`audit_policy_directions` audit an
*explicit* per-level direction sequence (e.g. what a
:class:`~repro.tuning.online.CostModelPolicy` actually chose) against
the post-hoc oracle on a reference cost model, producing the
:class:`PolicyAuditReport` the drift monitor consumes.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.arch.costmodel import CostModel
from repro.bfs.result import Direction
from repro.bfs.trace import LevelProfile
from repro.errors import MonitorError
from repro.obs.history import RunRecord
from repro.obs.tracer import Tracer, get_tracer

__all__ = [
    "MetricPolicy",
    "DEFAULT_POLICIES",
    "flatten_metrics",
    "RegressionFinding",
    "RegressionReport",
    "detect_regressions",
    "DriftAlert",
    "DriftMonitor",
    "PolicyAuditReport",
    "price_directions",
    "oracle_directions",
    "audit_policy_directions",
]

#: Consistency constant turning a median absolute deviation into a
#: robust standard-deviation estimate for normal data.
MAD_SIGMA = 1.4826


@dataclass(frozen=True)
class MetricPolicy:
    """How one flattened metric series is judged.

    ``threshold`` is the relative degradation that fails the gate
    (0.5 = latest may not be 50% worse than the baseline median);
    ``nsigma`` additionally requires the latest point to be a robust
    outlier, so noisy-but-stable series don't flap.  A per-metric
    ``min_samples`` overrides the detector-wide guard.
    """

    higher_is_better: bool
    threshold: float
    nsigma: float = 3.0
    min_samples: int | None = None

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise MonitorError(
                f"threshold must be > 0, got {self.threshold}"
            )
        if self.nsigma < 0:
            raise MonitorError(f"nsigma must be >= 0, got {self.nsigma}")
        if self.min_samples is not None and self.min_samples < 2:
            raise MonitorError(
                f"min_samples must be >= 2, got {self.min_samples}"
            )


#: The metrics the repository's own trajectory is gated on.  Wall-clock
#: series get lenient thresholds (cross-machine noise is real); the
#: deterministic counters get tight ones — at fixed workload and seed
#: they only move when the algorithm changes.
DEFAULT_POLICIES: dict[str, MetricPolicy] = {
    # throughput (higher is better): fail on a 2x slowdown
    "run.teps": MetricPolicy(higher_is_better=True, threshold=0.5),
    "teps.p50": MetricPolicy(higher_is_better=True, threshold=0.5),
    "teps.mean": MetricPolicy(higher_is_better=True, threshold=0.5),
    # wall-clock seconds (lower is better): fail on a 2x slowdown
    "graph500.bfs_seconds.p50": MetricPolicy(
        higher_is_better=False, threshold=1.0
    ),
    # committed kernel speedups vs the frozen legacy baselines
    "bench.claim_speedup": MetricPolicy(higher_is_better=True, threshold=0.3),
    "bench.hybrid_speedup": MetricPolicy(higher_is_better=True, threshold=0.3),
    # tile-kernel ratios vs the reference kernels (see bench_kernels)
    "bench.tile_bu_ratio": MetricPolicy(higher_is_better=True, threshold=0.3),
    "bench.tile_msbfs_speedup": MetricPolicy(
        higher_is_better=True, threshold=0.3
    ),
    # simulated mistuning cost: going from ~1.0x to >1.25x is drift
    "audit.slowdown": MetricPolicy(higher_is_better=False, threshold=0.25),
    # deterministic per-workload counters: any real movement is a change
    "bfs.edges_examined": MetricPolicy(
        higher_is_better=False, threshold=0.1
    ),
    "bfs.levels": MetricPolicy(higher_is_better=False, threshold=0.25),
    "frontier.claim_ratio.p50": MetricPolicy(
        higher_is_better=True, threshold=0.5
    ),
}


def flatten_metrics(record: RunRecord) -> dict[str, float]:
    """One flat ``{series_name: value}`` view of a record.

    Counters/gauges map to their value; histograms contribute
    ``<name>.p50/.p90/.p99/.mean/.count``; the record-level ``teps``
    lands as ``run.teps`` and the audit verdict as ``audit.slowdown``.
    """
    out: dict[str, float] = {}
    for name, snap in record.metrics.items():
        if not isinstance(snap, dict):
            continue
        kind = snap.get("type")
        value = snap.get("value")
        if kind in ("counter", "gauge"):
            if isinstance(value, (int, float)):
                out[name] = float(value)
        elif kind == "histogram" and snap.get("count", 0):
            for stat in ("p50", "p90", "p99", "mean"):
                if isinstance(snap.get(stat), (int, float)):
                    out[f"{name}.{stat}"] = float(snap[stat])
            out[f"{name}.count"] = float(snap["count"])
    if record.teps is not None:
        out["run.teps"] = float(record.teps)
    if isinstance(record.audit, dict):
        slowdown = record.audit.get("slowdown")
        if isinstance(slowdown, (int, float)):
            out["audit.slowdown"] = float(slowdown)
    return out


@dataclass(frozen=True)
class RegressionFinding:
    """One metric that failed its gate."""

    metric: str
    latest: float
    baseline_median: float
    baseline_mad: float
    baseline_runs: int
    degradation: float
    score: float
    threshold: float
    higher_is_better: bool

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "metric": self.metric,
            "latest": self.latest,
            "baseline_median": self.baseline_median,
            "baseline_mad": self.baseline_mad,
            "baseline_runs": self.baseline_runs,
            "degradation": self.degradation,
            "score": None if math.isinf(self.score) else self.score,
            "threshold": self.threshold,
            "higher_is_better": self.higher_is_better,
        }

    def render(self) -> str:
        """One human-readable line."""
        direction = "down" if self.higher_is_better else "up"
        score = "inf" if math.isinf(self.score) else f"{self.score:.1f}"
        return (
            f"{self.metric}: {self.latest:.6g} vs median "
            f"{self.baseline_median:.6g} over {self.baseline_runs} runs "
            f"({direction} {self.degradation:.0%}, limit "
            f"{self.threshold:.0%}, {score} MAD-sigmas)"
        )


@dataclass
class RegressionReport:
    """The verdict of one :func:`detect_regressions` call."""

    kind: str
    workload: str
    latest_timestamp: str
    window: int
    min_samples: int
    baseline_runs: int
    findings: list[RegressionFinding] = field(default_factory=list)
    checked: list[dict] = field(default_factory=list)
    skipped: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no metric regressed."""
        return not self.findings

    @property
    def exit_code(self) -> int:
        """CI convention: 0 clean, 1 regressed."""
        return 0 if self.ok else 1

    def as_dict(self) -> dict:
        """JSON-ready representation (the CI artifact payload)."""
        return {
            "kind": self.kind,
            "workload": self.workload,
            "latest_timestamp": self.latest_timestamp,
            "window": self.window,
            "min_samples": self.min_samples,
            "baseline_runs": self.baseline_runs,
            "ok": self.ok,
            "findings": [f.as_dict() for f in self.findings],
            "checked": self.checked,
            "skipped": self.skipped,
        }

    def to_json(self) -> str:
        """The JSON renderer."""
        return json.dumps(self.as_dict(), indent=2)

    def render(self) -> str:
        """The text renderer (the CI log block)."""
        head = (
            f"regression check: {self.kind}/{self.workload} "
            f"(latest {self.latest_timestamp or 'unknown'}, baseline "
            f"{self.baseline_runs} run(s), window {self.window})"
        )
        lines = [head]
        for f in self.findings:
            lines.append(f"  REGRESSED  {f.render()}")
        for c in self.checked:
            if not c["regressed"]:
                lines.append(
                    f"  ok         {c['metric']}: {c['latest']:.6g} "
                    f"vs median {c['baseline_median']:.6g}"
                )
        for s in self.skipped:
            lines.append(f"  skipped    {s['metric']}: {s['reason']}")
        verdict = "PASS" if self.ok else f"FAIL ({len(self.findings)} metric(s))"
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


def _judge(
    latest: float, baseline: Sequence[float], policy: MetricPolicy
) -> tuple[float, float, bool]:
    """``(degradation, score, regressed)`` for one metric series."""
    arr = np.asarray(baseline, dtype=np.float64)
    med = float(np.median(arr))
    mad = float(np.median(np.abs(arr - med)))
    if abs(med) < 1e-300:
        # A zero baseline has no meaningful relative degradation; any
        # nonzero latest value on a lower-is-better series is suspect,
        # but without a scale we cannot grade it — treat as clean.
        return 0.0, 0.0, False
    if policy.higher_is_better:
        degradation = (med - latest) / abs(med)
    else:
        degradation = (latest - med) / abs(med)
    robust_sigma = MAD_SIGMA * mad
    if robust_sigma <= 1e-12 * max(1.0, abs(med)):
        # MAD ~ 0: the baseline is (near-)constant, so *any* deviation
        # is infinitely surprising — the verdict rests on the relative
        # threshold alone.
        score = 0.0 if latest == med else math.inf
    else:
        score = abs(latest - med) / robust_sigma
    regressed = degradation > policy.threshold and score >= policy.nsigma
    return float(degradation), float(score), bool(regressed)


def detect_regressions(
    records: Sequence[RunRecord],
    *,
    window: int = 8,
    min_samples: int = 3,
    policies: dict[str, MetricPolicy] | None = None,
    kind: str | None = None,
    workload: str | None = None,
) -> RegressionReport:
    """Gate the newest run of a series against its rolling baseline.

    ``records`` is the full history (oldest first, e.g.
    ``HistoryStore.read()``); the series to judge defaults to the
    ``(kind, workload)`` of the newest record.  Only metrics with a
    policy (``policies`` defaults to :data:`DEFAULT_POLICIES`) are
    gated; series with fewer than ``min_samples`` baseline points are
    reported as skipped, never failed — a fresh trajectory cannot
    regress.
    """
    if window < 1:
        raise MonitorError(f"window must be >= 1, got {window}")
    if min_samples < 2:
        raise MonitorError(f"min_samples must be >= 2, got {min_samples}")
    if not records:
        raise MonitorError("cannot check an empty history")
    policies = DEFAULT_POLICIES if policies is None else policies
    if kind is None or workload is None:
        kind, workload = records[-1].series_key
    series = [r for r in records if r.series_key == (kind, workload)]
    if not series:
        raise MonitorError(
            f"no records for kind={kind!r} workload={workload!r}"
        )
    latest = series[-1]
    baseline_records = series[max(0, len(series) - 1 - window):-1]
    report = RegressionReport(
        kind=kind,
        workload=workload,
        latest_timestamp=latest.timestamp,
        window=window,
        min_samples=min_samples,
        baseline_runs=len(baseline_records),
    )
    latest_values = flatten_metrics(latest)
    baseline_values = [flatten_metrics(r) for r in baseline_records]
    for metric in sorted(latest_values):
        policy = policies.get(metric)
        if policy is None:
            continue
        needed = policy.min_samples or min_samples
        samples = [
            vals[metric] for vals in baseline_values if metric in vals
        ]
        if len(samples) < needed:
            report.skipped.append(
                {
                    "metric": metric,
                    "reason": (
                        f"only {len(samples)} baseline sample(s), "
                        f"need {needed}"
                    ),
                }
            )
            continue
        degradation, score, regressed = _judge(
            latest_values[metric], samples, policy
        )
        med = float(np.median(np.asarray(samples, dtype=np.float64)))
        mad = float(
            np.median(np.abs(np.asarray(samples, dtype=np.float64) - med))
        )
        report.checked.append(
            {
                "metric": metric,
                "latest": latest_values[metric],
                "baseline_median": med,
                "baseline_mad": mad,
                "degradation": degradation,
                "score": None if math.isinf(score) else score,
                "regressed": regressed,
            }
        )
        if regressed:
            report.findings.append(
                RegressionFinding(
                    metric=metric,
                    latest=latest_values[metric],
                    baseline_median=med,
                    baseline_mad=mad,
                    baseline_runs=len(samples),
                    degradation=degradation,
                    score=score,
                    threshold=policy.threshold,
                    higher_is_better=policy.higher_is_better,
                )
            )
    return report


# -- predictor drift ---------------------------------------------------------


@dataclass(frozen=True)
class DriftAlert:
    """The windowed mistuning cost of one series crossed its tolerance."""

    family: str
    arch: str
    runs: int
    window: int
    mean_slowdown: float
    last_slowdown: float
    tolerance: float

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "family": self.family,
            "arch": self.arch,
            "runs": self.runs,
            "window": self.window,
            "mean_slowdown": self.mean_slowdown,
            "last_slowdown": self.last_slowdown,
            "tolerance": self.tolerance,
        }

    def render(self) -> str:
        """One human-readable alert line."""
        return (
            f"DRIFT ALERT [{self.family}/{self.arch}]: mean slowdown "
            f"{self.mean_slowdown:.3f}x over last {min(self.runs, self.window)} "
            f"audited run(s) exceeds tolerance {self.tolerance:.3f}x "
            f"(latest {self.last_slowdown:.3f}x)"
        )


class DriftMonitor:
    """Rolling mistuning-cost tracker per ``(graph-family, arch)``.

    Feed it every audit verdict a deployment produces
    (:meth:`observe` accepts anything with a ``slowdown`` attribute, a
    plain float, or an ``{"slowdown": ...}`` dict).  When a series has
    at least ``min_runs`` observations and the mean of its last
    ``window`` slowdowns exceeds ``tolerance``, :meth:`observe` returns
    a :class:`DriftAlert` (and keeps returning one while the condition
    holds), emits a ``tuning.drift_alert`` instant event, and bumps the
    ``tuning.drift_alerts`` counter.
    """

    def __init__(
        self,
        *,
        window: int = 8,
        tolerance: float = 1.25,
        min_runs: int = 3,
        tracer: Tracer | None = None,
    ) -> None:
        if window < 1:
            raise MonitorError(f"window must be >= 1, got {window}")
        if tolerance < 1.0:
            raise MonitorError(
                f"tolerance must be >= 1.0, got {tolerance}"
            )
        if min_runs < 1:
            raise MonitorError(f"min_runs must be >= 1, got {min_runs}")
        self.window = window
        self.tolerance = float(tolerance)
        self.min_runs = min_runs
        self._tracer = tracer
        self._series: dict[tuple[str, str], list[float]] = {}
        self._alerts: list[DriftAlert] = []

    def observe(
        self, verdict, *, family: str = "default", arch: str = "default"
    ) -> DriftAlert | None:
        """Fold one audit verdict in; returns an alert when drifting."""
        if hasattr(verdict, "slowdown"):
            slowdown = verdict.slowdown
        elif isinstance(verdict, dict):
            slowdown = verdict.get("slowdown")
        else:
            slowdown = verdict
        if not isinstance(slowdown, (int, float)) or slowdown < 1.0:
            raise MonitorError(
                f"audit slowdown must be a number >= 1.0, got {slowdown!r}"
            )
        series = self._series.setdefault((family, arch), [])
        series.append(float(slowdown))
        if len(series) < self.min_runs:
            return None
        windowed = series[-self.window:]
        mean = float(np.mean(windowed))
        if mean <= self.tolerance:
            return None
        alert = DriftAlert(
            family=family,
            arch=arch,
            runs=len(series),
            window=self.window,
            mean_slowdown=mean,
            last_slowdown=series[-1],
            tolerance=self.tolerance,
        )
        self._alerts.append(alert)
        tr = self._tracer if self._tracer is not None else get_tracer()
        tr.instant(
            "tuning.drift_alert",
            family=family,
            arch=arch,
            mean_slowdown=mean,
            tolerance=self.tolerance,
        )
        tr.count("tuning.drift_alerts")
        return alert

    def series(
        self, family: str = "default", arch: str = "default"
    ) -> tuple[float, ...]:
        """The recorded slowdowns of one series, oldest first."""
        return tuple(self._series.get((family, arch), ()))

    @property
    def alerts(self) -> tuple[DriftAlert, ...]:
        """Every alert raised so far, oldest first."""
        return tuple(self._alerts)

    def state(self) -> dict:
        """JSON-ready view of every tracked series (for reports)."""
        out = {}
        for (family, arch), values in sorted(self._series.items()):
            windowed = values[-self.window:]
            out[f"{family}/{arch}"] = {
                "runs": len(values),
                "mean_slowdown": float(np.mean(windowed)),
                "last_slowdown": values[-1],
                "drifting": float(np.mean(windowed)) > self.tolerance
                and len(values) >= self.min_runs,
            }
        return out


# -- policy direction audits -------------------------------------------------


def _direction_columns(directions: Sequence[str]) -> np.ndarray:
    cols = np.empty(len(directions), dtype=np.int64)
    for i, d in enumerate(directions):
        if d == Direction.TOP_DOWN:
            cols[i] = 0
        elif d == Direction.BOTTOM_UP:
            cols[i] = 1
        else:
            raise MonitorError(f"unknown direction {d!r} at level {i}")
    return cols


def price_directions(
    profile: LevelProfile, model: CostModel, directions: Sequence[str]
) -> float:
    """Simulated seconds of an explicit per-level direction sequence."""
    if len(directions) != len(profile):
        raise MonitorError(
            f"{len(directions)} directions for a {len(profile)}-level "
            "profile"
        )
    if len(profile) == 0:
        raise MonitorError("cannot price an empty profile")
    times = model.time_matrix(profile)  # (levels, 2): td, bu
    cols = _direction_columns(directions)
    return float(times[np.arange(len(profile)), cols].sum())


def oracle_directions(
    profile: LevelProfile, model: CostModel
) -> tuple[str, ...]:
    """The post-hoc cheapest direction per level (the oracle plan)."""
    if len(profile) == 0:
        raise MonitorError("cannot plan an empty profile")
    times = model.time_matrix(profile)
    return tuple(
        Direction.TOP_DOWN if times[i, 0] <= times[i, 1] else Direction.BOTTOM_UP
        for i in range(len(profile))
    )


@dataclass(frozen=True)
class PolicyAuditReport:
    """A per-level policy's chosen plan vs the oracle, on one model.

    The shape mirrors :class:`~repro.obs.audit.MistuningReport` (same
    ``slowdown`` / ``is_mistuned`` / ``as_dict`` surface) so the drift
    monitor and history store consume either interchangeably.
    """

    source: int
    chosen_directions: tuple[str, ...]
    oracle_directions: tuple[str, ...]
    chosen_seconds: float
    oracle_seconds: float
    arch: str
    meta: dict = field(default_factory=dict)

    @property
    def slowdown(self) -> float:
        """Chosen plan's cost relative to the oracle (1.0 = optimal)."""
        if self.oracle_seconds <= 0:
            raise MonitorError("oracle plan has non-positive simulated cost")
        return self.chosen_seconds / self.oracle_seconds

    @property
    def levels_mistuned(self) -> int:
        """Levels where the chosen direction differs from the oracle's."""
        return sum(
            1
            for a, b in zip(self.chosen_directions, self.oracle_directions)
            if a != b
        )

    def is_mistuned(self, tolerance: float = 1.05) -> bool:
        """True when the chosen plan costs more than ``tolerance`` ×
        the oracle's simulated seconds."""
        if tolerance < 1.0:
            raise MonitorError(f"tolerance must be >= 1.0, got {tolerance}")
        return self.slowdown > tolerance

    def as_dict(self) -> dict:
        """JSON-ready representation (saved with history entries)."""
        return {
            "source": self.source,
            "chosen_directions": list(self.chosen_directions),
            "oracle_directions": list(self.oracle_directions),
            "chosen_seconds": self.chosen_seconds,
            "oracle_seconds": self.oracle_seconds,
            "slowdown": self.slowdown,
            "levels_mistuned": self.levels_mistuned,
            "arch": self.arch,
            "meta": self.meta,
        }

    def render(self) -> str:
        """Human-readable policy audit block."""
        verdict = "MISTUNED" if self.is_mistuned() else "well-tuned"
        return "\n".join(
            [
                f"policy audit (source {self.source}, arch {self.arch})",
                f"  chosen plan: {''.join('T' if d == Direction.TOP_DOWN else 'B' for d in self.chosen_directions)}"
                f"  ->  {self.chosen_seconds:.6f} s (simulated)",
                f"  oracle plan: {''.join('T' if d == Direction.TOP_DOWN else 'B' for d in self.oracle_directions)}"
                f"  ->  {self.oracle_seconds:.6f} s (simulated)",
                f"  slowdown vs oracle: {self.slowdown:.3f}x   mistuned "
                f"levels: {self.levels_mistuned}/{len(self.chosen_directions)}",
                f"  verdict: {verdict}",
            ]
        )


def audit_policy_directions(
    profile: LevelProfile,
    model: CostModel,
    directions: Sequence[str],
    *,
    tracer: Tracer | None = None,
    **meta,
) -> PolicyAuditReport:
    """Audit an explicit direction sequence against the oracle.

    ``model`` is the *reference* ("truth") cost model both plans are
    priced on — for a model-driven policy that is how mistuning
    surfaces: the policy decided on its own (possibly wrong) model, but
    is billed on the reference one.  Emits a ``tuning.policy_audit``
    instant event with the verdict.
    """
    chosen = tuple(directions)
    oracle = oracle_directions(profile, model)
    report = PolicyAuditReport(
        source=profile.source,
        chosen_directions=chosen,
        oracle_directions=oracle,
        chosen_seconds=price_directions(profile, model, chosen),
        oracle_seconds=price_directions(profile, model, oracle),
        arch=model.spec.name,
        meta=dict(meta),
    )
    tr = tracer if tracer is not None else get_tracer()
    tr.instant(
        "tuning.policy_audit",
        source=report.source,
        arch=report.arch,
        slowdown=report.slowdown,
        levels_mistuned=report.levels_mistuned,
    )
    return report
