"""Allocation attribution: ``tracemalloc`` windows per span.

PR 2's workspace design claims that *warm* traversals perform no
graph-sized allocations — every ``O(V)`` array is drawn from the
:class:`~repro.bfs.workspace.BFSWorkspace`.  This module proves (or
falsifies) that claim on real runs: an :class:`AllocationProfiler`
attaches to the tracer as a :class:`~repro.obs.tracer.TraceListener`,
opens a ``tracemalloc`` window when a watched span (``bfs.level``,
``hetero.level``) opens, and on close attributes what was allocated.

Two accounting modes:

* **detailed** (default) — snapshot diff between window open and close,
  filtered by ``size_floor``: only allocation *sites* whose net growth
  meets the floor are reported.  The floor is the definition of
  "graph-sized": pass ``8 * num_vertices`` (one machine word per
  vertex) and per-level frontier churn — small arrays of claimed ids,
  strictly below one word per vertex — stays invisible, while any
  rebuilt parent map, bitmap or scratch buffer is caught at its exact
  allocation site.
* **cheap** — net ``tracemalloc.get_traced_memory()`` delta only; no
  snapshots, near-zero cost, but includes every surviving temporary
  (so nonzero values are *not* evidence against the claim; use
  detailed mode to adjudicate).

Results land in three places: per-window observations in the
``alloc.bytes``/``alloc.blocks`` registry histograms, per-span
``alloc_bytes``/``alloc_blocks`` attrs on the closed span record, and
an aggregated per-kernel :meth:`AllocationProfiler.report`.
"""

from __future__ import annotations

import gc
import threading
import tracemalloc

from repro.errors import ProfileError
from repro.obs.tracer import SpanRecord, Span, TraceListener, Tracer

__all__ = ["DEFAULT_WATCHED_SPANS", "DEFAULT_SIZE_FLOOR", "AllocationProfiler"]

#: Span names whose windows are measured by default: the per-level
#: kernels of every engine (the allocation-freedom claim is per level).
DEFAULT_WATCHED_SPANS = ("bfs.level", "hetero.level")

#: Default "graph-sized" floor for detailed mode; callers that know the
#: graph should pass ``8 * num_vertices`` instead.
DEFAULT_SIZE_FLOOR = 65536

#: The observability stack's own allocations are excluded from every
#: window: the concurrent :class:`~repro.obs.profile.sampler.
#: StackSampler` thread stores samples *during* kernel windows, and
#: without this filter its sample buffer would be misattributed to the
#: kernel under measurement (the profiler falsifying its own claim).
_SELF_FILTERS = (
    tracemalloc.Filter(False, "*repro/obs/*"),
    tracemalloc.Filter(False, tracemalloc.__file__),
)


class AllocationProfiler(TraceListener):
    """Attributes allocations to spans via tracemalloc windows.

    Use as a context manager::

        tracer = Tracer()
        with AllocationProfiler(tracer, size_floor=8 * graph.num_vertices):
            bfs_hybrid(graph, 0, m=14, n=14, workspace=ws, tracer=tracer)

    Entering starts ``tracemalloc`` (unless already running — then the
    profiler leaves its lifecycle alone) and registers the listener;
    exiting detaches and stops what it started.  Windows nest: each
    watched span gets its own open-state keyed by span id, so
    ``bfs.level`` inside ``graph500.bfs`` measures only its own slice.
    """

    def __init__(
        self,
        tracer: Tracer,
        *,
        spans: tuple[str, ...] = DEFAULT_WATCHED_SPANS,
        detailed: bool = True,
        size_floor: int = DEFAULT_SIZE_FLOOR,
    ) -> None:
        if size_floor < 1:
            raise ProfileError(f"size_floor must be >= 1, got {size_floor}")
        self.tracer = tracer
        self.watched = tuple(spans)
        self.detailed = bool(detailed)
        self.size_floor = int(size_floor)
        self._lock = threading.Lock()
        self._open: dict[int, tuple[int, object | None]] = {}
        self._per_kernel: dict[str, dict] = {}
        self._started_tracemalloc = False
        self.windows = 0

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "AllocationProfiler":
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self.tracer.add_listener(self)
        return self

    def __exit__(self, *exc: object) -> None:
        self.tracer.remove_listener(self)
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracemalloc = False

    # -- listener callbacks --------------------------------------------------

    def on_span_open(self, span: Span) -> None:
        """Open a tracemalloc window for a watched span."""
        if span.name not in self.watched or not tracemalloc.is_tracing():
            return
        current, _peak = tracemalloc.get_traced_memory()
        snap = None
        if self.detailed:
            gc.collect()
            snap = tracemalloc.take_snapshot().filter_traces(_SELF_FILTERS)
        with self._lock:
            self._open[span.span_id] = (current, snap)

    def on_span_close(self, record: SpanRecord) -> None:
        """Close the window and attribute the allocations."""
        with self._lock:
            state = self._open.pop(record.span_id, None)
        if state is None:
            return
        bytes0, snap0 = state
        if self.detailed and snap0 is not None:
            grown_bytes = 0
            grown_blocks = 0
            # Frames captured by the concurrent sampler's
            # ``sys._current_frames`` walk can escape into reference
            # cycles and keep a *returned* kernel's locals (its large
            # temporaries) alive until the next GC pass — which would
            # show up here as kernel-site retention.  Collect first so
            # the snapshot sees only genuinely retained memory.
            gc.collect()
            snap1 = tracemalloc.take_snapshot().filter_traces(_SELF_FILTERS)
            for diff in snap1.compare_to(snap0, "traceback"):
                if diff.size_diff >= self.size_floor:
                    grown_bytes += diff.size_diff
                    grown_blocks += max(diff.count_diff, 1)
        else:
            current, _peak = tracemalloc.get_traced_memory()
            grown_bytes = max(0, current - bytes0)
            grown_blocks = 0
        record.attrs["alloc_bytes"] = int(grown_bytes)
        record.attrs["alloc_blocks"] = int(grown_blocks)
        self.tracer.observe("alloc.bytes", float(grown_bytes))
        self.tracer.observe("alloc.blocks", float(grown_blocks))
        kernel = str(record.attrs.get("kernel", record.name))
        with self._lock:
            self.windows += 1
            agg = self._per_kernel.setdefault(
                kernel, {"windows": 0, "bytes": 0, "blocks": 0}
            )
            agg["windows"] += 1
            agg["bytes"] += int(grown_bytes)
            agg["blocks"] += int(grown_blocks)

    # -- reading -------------------------------------------------------------

    def report(self) -> dict:
        """Aggregated attribution: per-kernel windows/bytes/blocks plus
        the mode parameters (JSON-ready)."""
        with self._lock:
            per_kernel = {k: dict(v) for k, v in self._per_kernel.items()}
        return {
            "mode": "detailed" if self.detailed else "cheap",
            "size_floor": self.size_floor,
            "windows": self.windows,
            "per_kernel": per_kernel,
            "clean": all(
                v["bytes"] == 0 and v["blocks"] == 0
                for v in per_kernel.values()
            ),
        }
