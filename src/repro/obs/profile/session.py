"""One-call orchestration of the profiling tier.

:class:`ProfileSession` bundles the pieces every profiled run wants —
a :class:`~repro.obs.tracer.Tracer`, the sampling stack profiler, the
per-span allocation windows and (optionally) the flight recorder — and
wires them together: the sampler tags samples with the tracer's open
spans, the recorder serves the sampler's collapsed stacks and the
allocation report as snapshot artifacts.  This is what the CLI's
``--profile`` / ``--flight-recorder`` flags construct.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ProfileError
from repro.obs.export import chrome_trace
from repro.obs.profile.alloc import (
    DEFAULT_SIZE_FLOOR,
    AllocationProfiler,
)
from repro.obs.profile.recorder import FlightRecorder
from repro.obs.profile.sampler import (
    DEFAULT_HZ,
    StackSampler,
    extend_chrome_trace,
)
from repro.obs.tracer import Tracer

__all__ = ["ProfileSession"]


class ProfileSession:
    """Compose tracer + sampler + allocation windows + flight recorder.

    Use as a context manager around the run::

        session = ProfileSession(recorder=True, snapshot_dir="snapshots")
        with session:
            run_graph500(scale=12, tracer=session.tracer, ...)
        paths = session.write_artifacts("out", "graph500-s12")

    Every piece is optional (``sampler=False`` / ``alloc=False`` /
    ``recorder=False``); the tracer is created when not passed in.
    """

    def __init__(
        self,
        tracer: Tracer | None = None,
        *,
        sampler: bool = True,
        hz: float = DEFAULT_HZ,
        alloc: bool = True,
        alloc_detailed: bool = True,
        size_floor: int = DEFAULT_SIZE_FLOOR,
        recorder: bool = False,
        snapshot_dir: str | Path | None = None,
        recorder_kwargs: dict | None = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.sampler: StackSampler | None = (
            StackSampler(hz=hz, tracer=self.tracer) if sampler else None
        )
        self.alloc: AllocationProfiler | None = (
            AllocationProfiler(
                self.tracer, detailed=alloc_detailed, size_floor=size_floor
            )
            if alloc
            else None
        )
        self.recorder: FlightRecorder | None = None
        if recorder:
            kwargs = dict(recorder_kwargs or {})
            kwargs.setdefault("snapshot_dir", snapshot_dir)
            self.recorder = FlightRecorder(self.tracer, **kwargs)
        self._active = False

    def __enter__(self) -> "ProfileSession":
        if self._active:
            raise ProfileError("profile session already active")
        self._active = True
        if self.recorder is not None:
            self.recorder.__enter__()
            if self.sampler is not None:
                self.recorder.add_artifact_provider(
                    "profile.collapsed", self.sampler.collapsed_text
                )
            if self.alloc is not None:
                self.recorder.add_artifact_provider(
                    "alloc.json",
                    lambda: json.dumps(self.alloc.report(), indent=1),
                )
        if self.alloc is not None:
            self.alloc.__enter__()
        if self.sampler is not None:
            self.sampler.start()
        return self

    def __exit__(self, *exc: object) -> None:
        if self.sampler is not None:
            self.sampler.stop()
        if self.alloc is not None:
            self.alloc.__exit__(*exc)
        if self.recorder is not None:
            self.recorder.__exit__(*exc)
        self._active = False

    # -- outputs -------------------------------------------------------------

    def chrome_trace(self, **meta) -> dict:
        """The span trace with the sampler's flamegraph track merged."""
        trace = chrome_trace(self.tracer, **meta)
        if self.sampler is not None:
            extend_chrome_trace(trace, self.sampler, self.tracer)
        return trace

    def write_artifacts(self, out_dir: str | Path, stem: str) -> dict[str, Path]:
        """Write ``<stem>.collapsed`` and ``<stem>.trace.json`` under
        ``out_dir``; returns ``{kind: path}``."""
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        paths: dict[str, Path] = {}
        if self.sampler is not None:
            collapsed = out / f"{stem}.collapsed"
            self.sampler.write_collapsed(collapsed)
            paths["collapsed"] = collapsed
        trace_path = out / f"{stem}.trace.json"
        trace_path.write_text(
            json.dumps(self.chrome_trace(), indent=1), encoding="utf-8"
        )
        paths["trace"] = trace_path
        return paths

    def report(self) -> dict:
        """JSON-ready summary of everything the session observed."""
        out: dict = {}
        if self.sampler is not None:
            out["sampler"] = {
                "hz": self.sampler.hz,
                "samples": len(self.sampler.samples),
                "truncated": self.sampler.truncated,
                "span_seconds": self.sampler.span_seconds(),
            }
        if self.alloc is not None:
            out["alloc"] = self.alloc.report()
        if self.recorder is not None:
            out["flight_recorder"] = {
                "capacity": self.recorder.capacity,
                "ring_entries": len(self.recorder.ring),
                "triggers": list(self.recorder.triggers),
                "snapshots": [s.as_dict() for s in self.recorder.snapshots],
            }
        return out
