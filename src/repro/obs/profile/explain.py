"""The explain report: measured level times vs cost-model predictions.

:func:`~repro.obs.audit.audit_switching_point` answers *"did the policy
pick the right directions?"* entirely inside the simulator.  This
module is its runtime twin: it joins the **measured** per-level seconds
of a :func:`~repro.bfs.timing.timed_bfs` run (read from the
``bfs.level`` spans, so the report's measured totals equal the span
sums exactly) against the :class:`~repro.arch.costmodel.CostModel`'s
prediction for the same :class:`~repro.bfs.trace.LevelRecord` — per
level and per kernel family (``td`` scatter vs ``scan``/``tiles``
bottom-up).

For each level the report carries the measured/predicted ratio, the
model's *dominant term* (overhead, memory or compute — from the
:class:`~repro.arch.costmodel.LevelCost` breakdown), and misattribution
flags when the ratio falls outside the trust band.  A systematic
per-family bias (e.g. every ``tiles`` level 4× slower than predicted)
points at a miscalibrated family constant; a single outlying level
points at interference — exactly the distinction the paper's Table IV
analysis draws by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.costmodel import CostModel, LevelCost
from repro.bfs.result import Direction
from repro.bfs.timing import TimedRun
from repro.bfs.trace import LevelProfile
from repro.errors import ProfileError
from repro.obs.tracer import Tracer, get_tracer

__all__ = ["DEFAULT_BAND", "LevelExplanation", "ExplainReport", "explain_traversal"]

#: Measured/predicted ratio band inside which a level is considered
#: well-attributed.  Wide by design: the model is calibrated against
#: the paper's 2014 hardware, so on any other host the *per-family
#: consistency* of the ratio matters, not its absolute value.
DEFAULT_BAND = (0.2, 5.0)


def _dominant_term(cost: LevelCost) -> str:
    terms = (
        ("overhead", cost.overhead_s),
        ("memory", cost.memory_s),
        ("compute", cost.compute_s),
    )
    return max(terms, key=lambda kv: kv[1])[0]


@dataclass(frozen=True)
class LevelExplanation:
    """One level's measured-vs-predicted row."""

    level: int
    direction: str
    kernel: str
    frontier_vertices: int
    edges_examined: int
    measured_s: float
    predicted_s: float
    dominant_term: str
    flags: tuple[str, ...] = ()

    @property
    def ratio(self) -> float:
        """Measured over predicted seconds (inf when the model says 0)."""
        if self.predicted_s <= 0.0:
            return float("inf")
        return self.measured_s / self.predicted_s

    def as_dict(self) -> dict:
        """JSON-ready row."""
        return {
            "level": self.level,
            "direction": self.direction,
            "kernel": self.kernel,
            "frontier_vertices": self.frontier_vertices,
            "edges_examined": self.edges_examined,
            "measured_s": self.measured_s,
            "predicted_s": self.predicted_s,
            "ratio": self.ratio,
            "dominant_term": self.dominant_term,
            "flags": list(self.flags),
        }


@dataclass(frozen=True)
class ExplainReport:
    """Measured vs predicted attribution for one traversal."""

    arch: str
    levels: tuple[LevelExplanation, ...]
    band: tuple[float, float]
    meta: dict = field(default_factory=dict)

    @property
    def measured_total_s(self) -> float:
        """Sum of measured level seconds — equals the ``bfs.level``
        span sums of the run exactly (they are the same numbers)."""
        return float(sum(lv.measured_s for lv in self.levels))

    @property
    def predicted_total_s(self) -> float:
        """Sum of model-predicted level seconds."""
        return float(sum(lv.predicted_s for lv in self.levels))

    @property
    def ratio(self) -> float:
        """Whole-traversal measured/predicted ratio."""
        if self.predicted_total_s <= 0.0:
            return float("inf")
        return self.measured_total_s / self.predicted_total_s

    def by_kernel(self) -> dict[str, dict]:
        """Per-kernel-family aggregation (the scan-vs-tiles verdict)."""
        out: dict[str, dict] = {}
        for lv in self.levels:
            agg = out.setdefault(
                lv.kernel,
                {"levels": 0, "measured_s": 0.0, "predicted_s": 0.0},
            )
            agg["levels"] += 1
            agg["measured_s"] += lv.measured_s
            agg["predicted_s"] += lv.predicted_s
        for agg in out.values():
            agg["ratio"] = (
                agg["measured_s"] / agg["predicted_s"]
                if agg["predicted_s"] > 0
                else float("inf")
            )
        return out

    def flagged(self) -> tuple[LevelExplanation, ...]:
        """Levels carrying at least one misattribution flag."""
        return tuple(lv for lv in self.levels if lv.flags)

    def as_dict(self) -> dict:
        """JSON-ready representation (history / snapshot payload)."""
        return {
            "arch": self.arch,
            "band": list(self.band),
            "measured_total_s": self.measured_total_s,
            "predicted_total_s": self.predicted_total_s,
            "ratio": self.ratio,
            "levels": [lv.as_dict() for lv in self.levels],
            "by_kernel": self.by_kernel(),
            "flagged_levels": [lv.level for lv in self.flagged()],
            "meta": self.meta,
        }

    def render(self) -> str:
        """Human-readable attribution table (the CLI explain block)."""
        lines = [
            f"explain report ({self.arch}, {len(self.levels)} levels, "
            f"band [{self.band[0]:g}, {self.band[1]:g}]x)",
            f"  measured {self.measured_total_s:.6f} s   predicted "
            f"{self.predicted_total_s:.6f} s   ratio {self.ratio:.3f}x",
            "  lvl dir kernel  measured_s  predicted_s   ratio dominant flags",
        ]
        for lv in self.levels:
            lines.append(
                f"  {lv.level:>3d} {lv.direction:<3s} {lv.kernel:<6s} "
                f"{lv.measured_s:>10.6f}  {lv.predicted_s:>11.6f} "
                f"{lv.ratio:>7.2f} {lv.dominant_term:<8s} "
                f"{','.join(lv.flags) or '-'}"
            )
        for kernel, agg in sorted(self.by_kernel().items()):
            lines.append(
                f"  family {kernel:<6s} {agg['levels']:>2d} levels  "
                f"measured {agg['measured_s']:.6f} s  "
                f"ratio {agg['ratio']:.3f}x"
            )
        return "\n".join(lines)


def explain_traversal(
    run: TimedRun,
    profile: LevelProfile,
    model: CostModel,
    *,
    tile_model: CostModel | None = None,
    band: tuple[float, float] = DEFAULT_BAND,
    tracer: Tracer | None = None,
) -> ExplainReport:
    """Join a timed run against the cost model's per-level predictions.

    ``run`` and ``profile`` must describe the *same traversal* (same
    source, same depth) — the profile supplies the
    architecture-independent counters the model prices, the run
    supplies the measured seconds.  ``model`` prices top-down and
    ``scan`` bottom-up levels; ``tiles`` levels are priced by
    ``tile_model`` when given (a :class:`~repro.arch.costmodel.
    CostModel` over a ``bu_kernel="tile"`` spec), else by ``model``
    with a ``no-tile-model`` flag on the affected rows.

    Emits a ``profile.explain`` instant event on the ambient (or
    passed) tracer so the attribution lands in the decision-audit
    channel next to ``bfs.direction``.
    """
    if len(run.levels) != len(profile):
        raise ProfileError(
            f"timed run has {len(run.levels)} levels but the profile has "
            f"{len(profile)}; explain needs one traversal, not two"
        )
    if run.result.source != profile.source:
        raise ProfileError(
            f"timed run traversed source {run.result.source} but the "
            f"profile describes source {profile.source}"
        )
    lo, hi = band
    if not 0 < lo < hi:
        raise ProfileError(f"band must satisfy 0 < lo < hi, got {band}")

    rows: list[LevelExplanation] = []
    for timed, rec in zip(run.levels, profile):
        flags: list[str] = []
        if timed.direction == Direction.TOP_DOWN:
            cost = model.top_down_seconds(rec, profile.num_vertices)
        elif timed.kernel == "tiles":
            family_model = tile_model
            if family_model is None and model.spec.bu_kernel == "tile":
                family_model = model
            if family_model is None:
                family_model = model
                flags.append("no-tile-model")
            cost = family_model.bottom_up_seconds(rec, profile.num_vertices)
        else:
            cost = model.bottom_up_seconds(rec, profile.num_vertices)
        ratio = (
            timed.seconds / cost.seconds if cost.seconds > 0 else float("inf")
        )
        if ratio > hi:
            flags.append("slower-than-model")
        elif ratio < lo:
            flags.append("faster-than-model")
        rows.append(
            LevelExplanation(
                level=timed.level,
                direction=timed.direction,
                kernel=timed.kernel,
                frontier_vertices=timed.frontier_vertices,
                edges_examined=timed.edges_examined,
                measured_s=timed.seconds,
                predicted_s=cost.seconds,
                dominant_term=_dominant_term(cost),
                flags=tuple(flags),
            )
        )

    report = ExplainReport(
        arch=model.spec.name,
        levels=tuple(rows),
        band=(float(lo), float(hi)),
        meta={"source": run.result.source, "num_vertices": profile.num_vertices},
    )
    tr = tracer if tracer is not None else get_tracer()
    tr.instant(
        "profile.explain",
        arch=report.arch,
        measured_total_s=report.measured_total_s,
        predicted_total_s=report.predicted_total_s,
        ratio=report.ratio,
        flagged_levels=len(report.flagged()),
    )
    return report
