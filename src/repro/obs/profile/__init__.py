"""Continuous profiling tier: sampler, allocation windows, explain,
flight recorder.

The observability stack (tracer/metrics/export/history/monitor)
records *what* happened; this package answers *why*:

* :mod:`~repro.obs.profile.sampler` — a ``sys._current_frames``-based
  sampling profiler whose samples are tagged with the tracer's open
  spans; collapsed-stack text and a Perfetto flamegraph track;
* :mod:`~repro.obs.profile.alloc` — per-span ``tracemalloc`` windows
  proving (or falsifying) the workspace's allocation-freedom claim;
* :mod:`~repro.obs.profile.explain` — measured level times joined
  against :class:`~repro.arch.costmodel.CostModel` predictions, per
  level and per kernel family;
* :mod:`~repro.obs.profile.recorder` — a bounded telemetry ring with
  anomaly-triggered snapshot dumps;
* :mod:`~repro.obs.profile.session` — one-call composition of the
  above (what ``repro-bfs profile`` constructs).

See the "Profiling & flight recorder" section of
``docs/observability.md``.
"""

from repro.obs.profile.alloc import (
    DEFAULT_SIZE_FLOOR,
    DEFAULT_WATCHED_SPANS,
    AllocationProfiler,
)
from repro.obs.profile.explain import (
    DEFAULT_BAND,
    ExplainReport,
    LevelExplanation,
    explain_traversal,
)
from repro.obs.profile.recorder import (
    SNAPSHOT_SCHEMA,
    FlightRecorder,
    SnapshotInfo,
    graph_fingerprint,
    validate_snapshot,
)
from repro.obs.profile.sampler import (
    DEFAULT_HZ,
    StackSample,
    StackSampler,
    extend_chrome_trace,
    validate_collapsed,
)
from repro.obs.profile.session import ProfileSession

__all__ = [
    "DEFAULT_HZ",
    "StackSample",
    "StackSampler",
    "validate_collapsed",
    "extend_chrome_trace",
    "DEFAULT_SIZE_FLOOR",
    "DEFAULT_WATCHED_SPANS",
    "AllocationProfiler",
    "DEFAULT_BAND",
    "LevelExplanation",
    "ExplainReport",
    "explain_traversal",
    "SNAPSHOT_SCHEMA",
    "SnapshotInfo",
    "FlightRecorder",
    "graph_fingerprint",
    "validate_snapshot",
    "ProfileSession",
]
