"""Low-overhead sampling stack profiler.

A background thread wakes ``hz`` times per second, grabs every live
thread's current frame via :func:`sys._current_frames` and records the
Python stack — *without* instrumenting the interpreter (no
``sys.setprofile``/``sys.settrace``, whose per-call hooks would distort
the very kernels being measured; lint rule RPR020 bans those outside
this package).  Each sample is tagged with the innermost *open span* of
the sampled thread, read racily from the tracer's cross-thread stack
registry (:meth:`~repro.obs.tracer.Tracer.open_span_names`) — worst
case a tag is one sample stale, which is below sampling resolution
anyway.

Two export shapes:

* **collapsed stacks** (:meth:`StackSampler.collapsed_text`) — the
  ``frame;frame;frame count`` text format consumed by
  ``flamegraph.pl``, speedscope and friends, with the span tag as the
  root frame so one flamegraph separates per-span time;
* **Chrome sample events** (:func:`extend_chrome_trace`) — ``ph: "P"``
  events referencing a ``stackFrames`` tree, merged into the Chrome
  trace produced by :mod:`repro.obs.export` so Perfetto shows the
  flamegraph track next to the span track.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

from repro.errors import ProfileError
from repro.obs.clock import now
from repro.obs.tracer import Tracer

__all__ = [
    "DEFAULT_HZ",
    "StackSample",
    "StackSampler",
    "validate_collapsed",
    "extend_chrome_trace",
]

#: Default sampling rate.  A prime keeps the sampler from beating
#: against periodic level structure (the classic profiler-aliasing
#: trick); ~100 Hz resolves per-level behaviour at the paper's scales
#: while costing well under the 5% overhead budget.
DEFAULT_HZ = 97.0


class StackSample:
    """One captured stack: timestamp, thread, span tag, frames."""

    __slots__ = ("timestamp", "thread_id", "span", "frames")

    def __init__(
        self,
        timestamp: float,
        thread_id: int,
        span: str | None,
        frames: tuple[str, ...],
    ) -> None:
        self.timestamp = timestamp
        self.thread_id = thread_id
        self.span = span
        self.frames = frames

    def stack(self) -> tuple[str, ...]:
        """Frames root-first, prefixed with the span tag frame."""
        tag = f"span:{self.span}" if self.span else "span:-"
        return (tag,) + self.frames


class StackSampler:
    """Samples Python stacks from a background thread.

    Use as a context manager (or :meth:`start`/:meth:`stop`).  The
    sampled threads never execute profiler code; the only cost they see
    is the GIL time the sampler spends walking frames, which at the
    default rate is bounded by the overhead benchmark in
    ``benchmarks/bench_kernels.py``.

    Parameters
    ----------
    hz:
        Target sampling rate (samples per second, per run — every live
        thread is captured at each tick).
    tracer:
        Tracer whose open spans tag the samples; samples are untagged
        when omitted.
    max_samples:
        Hard cap on retained samples; sampling stops (and
        :attr:`truncated` is set) when reached, so a runaway run cannot
        grow without bound.
    max_depth:
        Deepest stack recorded per sample (frames below are dropped
        root-side).
    """

    def __init__(
        self,
        *,
        hz: float = DEFAULT_HZ,
        tracer: Tracer | None = None,
        max_samples: int = 200_000,
        max_depth: int = 64,
        clock=now,
    ) -> None:
        if hz <= 0:
            raise ProfileError(f"sampling rate must be positive, got {hz}")
        if max_samples < 1:
            raise ProfileError(f"max_samples must be >= 1, got {max_samples}")
        self.hz = float(hz)
        self.tracer = tracer
        self.max_samples = int(max_samples)
        self.max_depth = int(max_depth)
        self.clock = clock
        self.samples: list[StackSample] = []
        self.truncated = False
        #: Wall seconds spent inside :meth:`_capture` — pure-Python
        #: frame walking, so (up to GIL-handoff latency) this is the
        #: execution time the sampler steals from the sampled threads.
        #: The overhead benchmark enforces its budget on this.
        self.busy_seconds = 0.0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._own_ident: int | None = None
        # Frame labels interned per code object: formatting
        # ``module:name`` for every frame of every sample is the
        # dominant per-sample cost, and a code object's label never
        # changes.  Keying by the object (not ``id``) pins it alive,
        # which also rules out id reuse; the cache is bounded by the
        # number of distinct code objects the program runs.
        self._frame_labels: dict[object, str] = {}

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the sampler thread is live."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "StackSampler":
        """Start the sampler thread (idempotent errors: raises if live)."""
        if self.running:
            raise ProfileError("sampler already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "StackSampler":
        """Stop the sampler thread and publish the ``profile.samples``
        count into the tracer's metrics registry (when tagged)."""
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=5.0)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise ProfileError("sampler thread did not stop")
        self._thread = None
        if self.tracer is not None and self.samples:
            self.tracer.count("profile.samples", len(self.samples))
        return self

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- the sampling loop ---------------------------------------------------

    def _run(self) -> None:
        self._own_ident = threading.get_ident()
        interval = 1.0 / self.hz
        while not self._stop.wait(interval):
            if not self._capture():
                break

    def _capture(self) -> bool:
        """Take one sample of every thread; False once the cap is hit."""
        ts = self.clock()
        try:
            return self._capture_inner(ts)
        finally:
            self.busy_seconds += self.clock() - ts

    def _capture_inner(self, ts: float) -> bool:
        frames = sys._current_frames()  # noqa: SLF001 - the documented API
        for tid, frame in frames.items():
            if tid == self._own_ident:
                continue
            stack: list[str] = []
            depth = 0
            labels = self._frame_labels
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                label = labels.get(code)
                if label is None:
                    module = frame.f_globals.get("__name__", "?")
                    label = f"{module}:{code.co_name}"
                    labels[code] = label
                stack.append(label)
                frame = frame.f_back
                depth += 1
            stack.reverse()  # root-first
            span = None
            if self.tracer is not None:
                open_names = self.tracer.open_span_names(tid)
                if open_names:
                    span = open_names[-1]  # innermost
            if len(self.samples) >= self.max_samples:
                self.truncated = True
                return False
            self.samples.append(StackSample(ts, tid, span, tuple(stack)))
        return True

    # -- collapsed-stack export ----------------------------------------------

    def collapsed(self) -> dict[tuple[str, ...], int]:
        """Sample counts keyed by full stack (span tag as root frame)."""
        out: dict[tuple[str, ...], int] = {}
        for sample in self.samples:
            key = sample.stack()
            out[key] = out.get(key, 0) + 1
        return out

    def collapsed_text(self) -> str:
        """The ``frame;frame;... count`` flamegraph text, sorted for
        deterministic output."""
        rows = [
            f"{';'.join(stack)} {count}"
            for stack, count in self.collapsed().items()
        ]
        return "\n".join(sorted(rows)) + ("\n" if rows else "")

    def write_collapsed(self, path: str | Path) -> int:
        """Write :meth:`collapsed_text` to ``path``; returns the number
        of distinct stacks."""
        text = self.collapsed_text()
        Path(path).write_text(text, encoding="utf-8")
        return len(text.splitlines())

    def span_seconds(self) -> dict[str, float]:
        """Approximate seconds attributed to each span tag
        (``samples * interval``) — the sampler's answer to ``where did
        the time go`` before any span has closed."""
        interval = 1.0 / self.hz
        out: dict[str, float] = {}
        for sample in self.samples:
            tag = sample.span or "-"
            out[tag] = out.get(tag, 0.0) + interval
        return out


def validate_collapsed(text: str) -> int:
    """Check collapsed-stack text (``frame;frame count`` lines);
    returns total samples.  Raises :class:`~repro.errors.ProfileError`
    on malformed lines — the CI flamegraph gate."""
    total = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        stack, sep, count = line.rpartition(" ")
        if not sep or not stack:
            raise ProfileError(
                f"collapsed line {lineno}: want 'frames count', got {line!r}"
            )
        try:
            n = int(count)
        except ValueError as exc:
            raise ProfileError(
                f"collapsed line {lineno}: count {count!r} is not an int"
            ) from exc
        if n < 1:
            raise ProfileError(
                f"collapsed line {lineno}: count must be >= 1, got {n}"
            )
        if any(not part for part in stack.split(";")):
            raise ProfileError(
                f"collapsed line {lineno}: empty frame in {stack!r}"
            )
        total += n
    return total


def extend_chrome_trace(
    trace: dict, sampler: StackSampler, tracer: Tracer, *, pid: int = 1
) -> dict:
    """Merge the sampler's flamegraph track into a Chrome trace dict.

    ``trace`` must come from :func:`repro.obs.export.chrome_trace` on
    the *same* ``tracer`` — sample timestamps are shifted by the same
    origin (the earliest span/event) so the tracks line up.  Adds one
    ``samples:<thread>`` row per sampled thread, ``ph: "P"`` events and
    the shared ``stackFrames`` tree; returns ``trace`` (mutated).
    """
    if "traceEvents" not in trace:
        raise ProfileError("trace has no traceEvents; build it first")
    spans = tracer.spans()
    events = tracer.events()
    starts = [r.start for r in spans] + [r.timestamp for r in events]
    if sampler.samples:
        starts.append(min(s.timestamp for s in sampler.samples))
    t0 = min(starts) if starts else 0.0

    used_tids = {
        ev.get("tid") for ev in trace["traceEvents"] if isinstance(ev, dict)
    }
    next_tid = max((t for t in used_tids if isinstance(t, int)), default=0) + 1

    frames: dict = trace.setdefault("stackFrames", {})
    frame_ids: dict[tuple[str | None, str], str] = {
        (frame.get("parent"), frame["name"]): fid
        for fid, frame in frames.items()
    }

    def intern_stack(stack: tuple[str, ...]) -> str | None:
        parent: str | None = None
        for name in stack:
            key = (parent, name)
            fid = frame_ids.get(key)
            if fid is None:
                fid = str(len(frames) + 1)
                entry = {"name": name}
                if parent is not None:
                    entry["parent"] = parent
                frames[fid] = entry
                frame_ids[key] = fid
            parent = fid
        return parent

    sample_tids: dict[int, int] = {}
    for sample in sampler.samples:
        tid = sample_tids.get(sample.thread_id)
        if tid is None:
            tid = next_tid
            next_tid += 1
            sample_tids[sample.thread_id] = tid
            trace["traceEvents"].append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"samples:{sample.thread_id}"},
                }
            )
        trace["traceEvents"].append(
            {
                "ph": "P",
                "name": "sample",
                "pid": pid,
                "tid": tid,
                "ts": max(0.0, 1e6 * (sample.timestamp - t0)),
                "sf": intern_stack(sample.stack()),
            }
        )
    return trace
