"""Flight recorder: a bounded ring of recent telemetry plus anomaly
snapshots.

Exporters answer *"what happened during the run I chose to record"*;
the flight recorder answers *"what happened in the seconds before the
run went wrong"* — cheaply enough to leave on always.  It attaches to
the tracer as a :class:`~repro.obs.tracer.TraceListener` and keeps the
last N spans, instant events and top-level metric deltas in a
``deque(maxlen=N)`` — constant memory, no exporter required.

Anomaly triggers:

* **slow span** — a watched span (traversal roots by default) whose
  duration exceeds ``slow_factor`` × its learned per-name baseline
  (median of the first ``warmup`` durations), or an explicit
  ``baseline_s`` threshold;
* **alert event** — an instant event whose name is in
  ``alert_events`` (drift alerts, sanitizer violations);
* **manual** — :meth:`FlightRecorder.trigger` for operator-initiated
  dumps.

A trigger dumps the ring, the metrics snapshot, the context the caller
attached (graph fingerprint, workload), and any registered artifact
providers (the sampler's collapsed stacks, the allocation report) into
a timestamped snapshot directory; the snapshot's SHA-256 digest is the
handle that lands in ``runs.jsonl`` so the monitor can gate on it.
"""

from __future__ import annotations

import collections
import hashlib
import itertools
import json
import threading
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable

from repro.errors import ProfileError
from repro.obs.tracer import EventRecord, SpanRecord, TraceListener, Tracer

__all__ = [
    "SNAPSHOT_SCHEMA",
    "SnapshotInfo",
    "FlightRecorder",
    "graph_fingerprint",
    "validate_snapshot",
]

#: Schema tag written into every snapshot's ``meta.json``.
SNAPSHOT_SCHEMA = "repro.obs.flight/1"

#: Span names watched for the slow-span trigger by default: every
#: engine's traversal root.
DEFAULT_WATCHED_SPANS = (
    "bfs.timed",
    "bfs.hybrid",
    "graph500.bfs",
    "hetero.execute_plan",
)

#: Instant-event names that trigger a snapshot immediately (the drift
#: monitor's alert channel and the live tier's SLO burn-rate alerts;
#: extend with ``alert_events=`` for custom alarms).
DEFAULT_ALERT_EVENTS = ("tuning.drift_alert", "slo.alert")


def graph_fingerprint(graph) -> dict:
    """A compact, stable identity for a CSR graph (JSON-ready).

    Hashes the structure (offsets and targets bytes), not a Python
    object id, so the same graph loaded twice fingerprints identically
    and a mutated graph does not.
    """
    h = hashlib.sha256()
    h.update(graph.offsets.tobytes())
    h.update(graph.targets.tobytes())
    return {
        "num_vertices": int(graph.num_vertices),
        "num_edges": int(graph.num_edges),
        "max_degree": int(graph.degrees.max()) if graph.num_vertices else 0,
        "sha256": h.hexdigest()[:16],
    }


class SnapshotInfo:
    """Handle to one written snapshot: path, digest, reason."""

    __slots__ = ("path", "digest", "reason", "trigger")

    def __init__(
        self, path: Path, digest: str, reason: str, trigger: dict
    ) -> None:
        self.path = path
        self.digest = digest
        self.reason = reason
        self.trigger = trigger

    def as_dict(self) -> dict:
        """JSON-ready handle (what lands in history meta)."""
        return {
            "path": str(self.path),
            "digest": self.digest,
            "reason": self.reason,
        }


class FlightRecorder(TraceListener):
    """Bounded telemetry ring with anomaly-triggered snapshots.

    Use as a context manager to attach/detach from the tracer::

        with FlightRecorder(tracer, snapshot_dir="snapshots") as rec:
            run_graph500(...)
        assert not rec.snapshots  # no anomaly fired

    Parameters
    ----------
    capacity:
        Ring size — the last ``capacity`` entries (spans, events and
        metric deltas combined) survive.
    watch:
        Span names checked by the slow-span trigger.
    slow_factor:
        Trigger threshold relative to the learned baseline (the
        acceptance bar is an injected 3× slowdown, so the default 2.5
        fires on it with margin while double-duty noise does not).
    warmup:
        Closes of a watched span name needed before its baseline is
        trusted (the median of those durations).
    baseline_s:
        Optional explicit per-name thresholds ``{span_name: seconds}``;
        a watched name present here skips learning entirely.
    alert_events:
        Instant-event names that dump immediately.
    snapshot_dir:
        Where snapshots are written; without it triggers still count
        (``profile.anomalies``) and record themselves, but nothing is
        dumped.
    context:
        JSON-ready dict stored in every snapshot (graph fingerprint,
        workload, parameters).
    """

    def __init__(
        self,
        tracer: Tracer,
        *,
        capacity: int = 256,
        watch: tuple[str, ...] = DEFAULT_WATCHED_SPANS,
        slow_factor: float = 2.5,
        warmup: int = 3,
        baseline_s: dict[str, float] | None = None,
        alert_events: tuple[str, ...] = DEFAULT_ALERT_EVENTS,
        snapshot_dir: str | Path | None = None,
        context: dict | None = None,
    ) -> None:
        if capacity < 1:
            raise ProfileError(f"capacity must be >= 1, got {capacity}")
        if slow_factor <= 1.0:
            raise ProfileError(
                f"slow_factor must be > 1.0, got {slow_factor}"
            )
        if warmup < 1:
            raise ProfileError(f"warmup must be >= 1, got {warmup}")
        self.tracer = tracer
        self.capacity = int(capacity)
        self.watch = tuple(watch)
        self.slow_factor = float(slow_factor)
        self.warmup = int(warmup)
        self.baseline_s = dict(baseline_s or {})
        self.alert_events = tuple(alert_events)
        self.snapshot_dir = Path(snapshot_dir) if snapshot_dir else None
        self.context = dict(context or {})
        self.ring: collections.deque = collections.deque(maxlen=capacity)
        self.snapshots: list[SnapshotInfo] = []
        self.triggers: list[dict] = []
        self._lock = threading.Lock()
        self._history: dict[str, list[float]] = {}
        self._last_metrics: dict[str, float] = {}
        self._providers: dict[str, Callable[[], str]] = {}
        self._seq = itertools.count(1)

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "FlightRecorder":
        self.tracer.add_listener(self)
        return self

    def __exit__(self, *exc: object) -> None:
        self.tracer.remove_listener(self)

    def add_artifact_provider(
        self, name: str, provider: Callable[[], str]
    ) -> None:
        """Register extra snapshot content: ``provider()`` returns the
        text written as ``<name>`` inside every future snapshot (the
        profiler registers its collapsed stacks this way)."""
        if "/" in name or name.startswith("."):
            raise ProfileError(f"artifact name {name!r} must be a bare filename")
        self._providers[name] = provider

    # -- listener callbacks --------------------------------------------------

    def on_span_close(self, record: SpanRecord) -> None:
        """Ring the span; check the slow-span trigger and, for
        top-level spans, record the metric delta.

        The record object itself is ringed — serializing to a dict per
        close would tax every traversal for data that is only read when
        an anomaly dumps, so :meth:`_dump` serializes the survivors.
        """
        with self._lock:
            self.ring.append(record)
        if record.parent_id is None:
            self._ring_metric_delta()
        if record.name in self.watch:
            self._check_slow(record)

    def on_event(self, record: EventRecord) -> None:
        """Ring the event; fire on alert events."""
        with self._lock:
            self.ring.append(record)
        if record.name in self.alert_events:
            self.trigger(
                f"alert-event:{record.name}",
                {"event": record.name, "attrs": record.attrs},
            )

    # -- anomaly machinery ---------------------------------------------------

    def _ring_metric_delta(self) -> None:
        # registry.flat() skips quantile/bucket computation — this runs
        # on every top-level span close and must stay span-cheap.
        flat = self.tracer.metrics.flat()
        with self._lock:
            delta = {
                k: v - self._last_metrics.get(k, 0.0)
                for k, v in flat.items()
                if v != self._last_metrics.get(k, 0.0)
            }
            self._last_metrics = flat
            if delta:
                self.ring.append({"kind": "metrics", "delta": delta})

    def _check_slow(self, record: SpanRecord) -> None:
        threshold = self.baseline_s.get(record.name)
        if threshold is None:
            with self._lock:
                history = self._history.setdefault(record.name, [])
                if len(history) < self.warmup:
                    history.append(record.duration)
                    return
                ordered = sorted(history)
                median = ordered[len(ordered) // 2]
            threshold = self.slow_factor * median
        if record.duration > threshold:
            self.trigger(
                f"slow-span:{record.name}",
                {
                    "span": record.name,
                    "duration_s": record.duration,
                    "threshold_s": threshold,
                },
            )

    def trigger(self, reason: str, detail: dict | None = None) -> SnapshotInfo | None:
        """Record an anomaly and (when a snapshot dir is set) dump one.

        Returns the :class:`SnapshotInfo` or ``None`` when dumping is
        disabled.  Counted in ``profile.anomalies`` either way.
        """
        trigger = {"reason": reason, "detail": dict(detail or {})}
        self.triggers.append(trigger)
        self.tracer.count("profile.anomalies")
        if self.snapshot_dir is None:
            return None
        info = self._dump(reason, trigger)
        self.snapshots.append(info)
        return info

    # -- snapshot writing ----------------------------------------------------

    def _dump(self, reason: str, trigger: dict) -> SnapshotInfo:
        from repro.obs.history import environment_fingerprint

        stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%S")
        directory = self.snapshot_dir / f"{stamp}-{next(self._seq):03d}"
        directory.mkdir(parents=True, exist_ok=True)

        with self._lock:
            entries = [
                e.as_dict() if hasattr(e, "as_dict") else e
                for e in self.ring
            ]
        ring_text = "\n".join(json.dumps(e) for e in entries)
        if ring_text:
            ring_text += "\n"
        files = {"ring.jsonl": ring_text}
        for name, provider in self._providers.items():
            try:
                files[name] = provider()
            except Exception as exc:  # a broken provider must not eat the dump
                files[name] = f"artifact provider failed: {exc!r}\n"
        for name, text in files.items():
            (directory / name).write_text(text, encoding="utf-8")

        digest = hashlib.sha256()
        for name in sorted(files):
            digest.update(name.encode("utf-8"))
            digest.update(files[name].encode("utf-8"))
        meta = {
            "schema": SNAPSHOT_SCHEMA,
            "reason": reason,
            "trigger": trigger,
            "written": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            "context": self.context,
            "environment": environment_fingerprint(),
            "metrics": self.tracer.metrics.snapshot(),
            "ring_entries": len(entries),
            "files": sorted(files),
            "digest": digest.hexdigest(),
        }
        (directory / "meta.json").write_text(
            json.dumps(meta, indent=1), encoding="utf-8"
        )
        return SnapshotInfo(directory, meta["digest"], reason, trigger)


def validate_snapshot(path: str | Path) -> dict:
    """Check a snapshot directory against the flight-recorder schema.

    Verifies ``meta.json`` (schema tag, required keys), that every
    listed file exists, that ``ring.jsonl`` parses, and that the
    content digest matches.  Returns the parsed meta; raises
    :class:`~repro.errors.ProfileError` on the first violation — the
    CI profile-smoke gate.
    """
    directory = Path(path)
    meta_path = directory / "meta.json"
    if not meta_path.is_file():
        raise ProfileError(f"{directory}: missing meta.json")
    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ProfileError(f"{meta_path}: not JSON: {exc}") from exc
    if meta.get("schema") != SNAPSHOT_SCHEMA:
        raise ProfileError(
            f"{directory}: schema {meta.get('schema')!r}, "
            f"expected {SNAPSHOT_SCHEMA!r}"
        )
    for key in ("reason", "trigger", "context", "environment", "files", "digest"):
        if key not in meta:
            raise ProfileError(f"{directory}: meta.json missing {key!r}")
    digest = hashlib.sha256()
    for name in sorted(meta["files"]):
        file_path = directory / name
        if not file_path.is_file():
            raise ProfileError(f"{directory}: listed file {name!r} missing")
        text = file_path.read_text(encoding="utf-8")
        digest.update(name.encode("utf-8"))
        digest.update(text.encode("utf-8"))
        if name == "ring.jsonl":
            for lineno, line in enumerate(text.splitlines(), 1):
                try:
                    json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ProfileError(
                        f"{file_path}:{lineno}: not JSON: {exc}"
                    ) from exc
    if digest.hexdigest() != meta["digest"]:
        raise ProfileError(
            f"{directory}: content digest {digest.hexdigest()[:12]}… does "
            f"not match recorded {str(meta['digest'])[:12]}…"
        )
    return meta
