"""Metrics registry: counters, gauges and histograms with snapshot/reset.

The registry is the *aggregated* half of the observability story (the
tracer is the per-event half): engines increment well-known instruments
(``bfs.levels``, ``bfs.edges_examined``, ``frontier.claim_ratio``,
``teps``) and a consumer reads a point-in-time :meth:`~MetricsRegistry.
snapshot` — a plain JSON-ready dict — then optionally
:meth:`~MetricsRegistry.reset` for the next measurement window.

All instruments are thread-safe (one registry lock; increments are
cheap) so the thread-parallel engine's workers can publish without
coordination.  Instrument names are namespaced with dots by convention;
registering the same name as two different instrument types raises
:class:`~repro.errors.ObsError`.
"""

from __future__ import annotations

import threading
from typing import Iterable

import numpy as np

from repro.errors import ObsError

__all__ = [
    "METRIC_CATALOG",
    "METRICS_PAYLOAD_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Every metric name the library emits through the registry, in one
#: place.  Lint rule ``RPR009`` enforces that registry/tracer metric
#: call sites in ``src/`` use lowercase dotted identifiers drawn from
#: this catalog — ad-hoc names fragment the history trajectory and the
#: OpenMetrics exposition.  Add the name here *before* emitting it.
METRIC_CATALOG = (
    "bfs.levels",
    "bfs.edges_examined",
    "frontier.claim_ratio",
    "teps",
    "graph500.bfs_seconds",
    "tuning.drift_alerts",
    "linalg.tile_passes",
    "linalg.tile_words",
    "alloc.bytes",
    "alloc.blocks",
    "profile.samples",
    "profile.anomalies",
    "slo.alerts",
    "live.frames",
    "live.frames_dropped",
)

#: Schema tag carried by :meth:`MetricsRegistry.to_payload` output so a
#: payload written by one process version can be rejected (not silently
#: misread) by another.
METRICS_PAYLOAD_SCHEMA = "repro.obs.metrics/1"


def _check_payload_type(inst, payload, expected: str) -> None:
    """Shared guard for the instrument ``merge_payload`` methods."""
    if not isinstance(payload, dict):
        raise ObsError(
            f"metric {inst.name!r}: payload must be a dict, "
            f"got {type(payload).__name__}"
        )
    got = payload.get("type")
    if got != expected:
        raise ObsError(
            f"metric {inst.name!r}: payload type {got!r} does not match "
            f"instrument type {expected!r}"
        )


class Counter:
    """A monotonically increasing count (events, edges, levels)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lock

    def add(self, value: float = 1.0) -> None:
        """Increment by ``value`` (must be >= 0: counters only go up)."""
        if value < 0:
            raise ObsError(
                f"counter {self.name!r} cannot decrease (got {value})"
            )
        with self._lock:
            self._value += value

    @property
    def value(self) -> float:
        """Current total."""
        return self._value

    def snapshot(self) -> dict:
        """JSON-ready state."""
        return {"type": "counter", "value": self._value}

    def to_payload(self) -> dict:
        """Stable serialized state (see :data:`METRICS_PAYLOAD_SCHEMA`).

        For a counter the payload is its total; merging *adds* it, so a
        child process's payload folds into the parent as a delta."""
        return {"type": "counter", "value": self._value}

    def merge_payload(self, payload: dict) -> None:
        """Fold a :meth:`to_payload` dict in (counter totals add)."""
        _check_payload_type(self, payload, "counter")
        self.add(float(payload.get("value", 0.0)))

    def reset(self) -> None:
        """Zero the count."""
        with self._lock:
            self._value = 0.0


class Gauge:
    """A value that can go up or down (last-write-wins)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value: float | None = None
        self._lock = lock

    def set(self, value: float) -> None:
        """Record the current value."""
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float | None:
        """Last recorded value (``None`` before the first set)."""
        return self._value

    def snapshot(self) -> dict:
        """JSON-ready state."""
        return {"type": "gauge", "value": self._value}

    def to_payload(self) -> dict:
        """Stable serialized state (see :data:`METRICS_PAYLOAD_SCHEMA`)."""
        return {"type": "gauge", "value": self._value}

    def merge_payload(self, payload: dict) -> None:
        """Fold a :meth:`to_payload` dict in (last-write-wins: an unset
        payload gauge leaves the current value alone)."""
        _check_payload_type(self, payload, "gauge")
        value = payload.get("value")
        if value is not None:
            self.set(float(value))

    def reset(self) -> None:
        """Forget the recorded value."""
        with self._lock:
            self._value = None


class Histogram:
    """A distribution of observations (per-level ratios, per-root TEPS).

    Observations are retained, so the snapshot can report exact
    quantiles; the workloads here observe per-level or per-root (tens to
    hundreds of points per run), not per-edge.
    """

    __slots__ = ("name", "_values", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._values: list[float] = []
        self._lock = lock

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self._values.append(float(value))

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self._values)

    @property
    def values(self) -> tuple[float, ...]:
        """The raw observations, in arrival order."""
        return tuple(self._values)

    def quantile(self, q: float) -> float:
        """Exact quantile ``q`` in [0, 1] over the observations.

        Defined on every histogram state: an empty histogram yields
        ``nan`` (a quantile of nothing is not 0 — and ``nan`` survives
        JSON round-trips as ``NaN`` while poisoning any arithmetic that
        forgets to check), and a single-sample histogram yields that
        sample for every ``q``.  Only an out-of-range ``q`` raises
        :class:`~repro.errors.ObsError`.
        """
        if not 0.0 <= q <= 1.0:
            raise ObsError(
                f"histogram {self.name!r}: quantile must be in [0, 1], "
                f"got {q}"
            )
        with self._lock:
            vals = list(self._values)
        if not vals:
            return float("nan")
        if len(vals) == 1:
            return float(vals[0])
        return float(
            np.percentile(np.asarray(vals, dtype=np.float64), q * 100.0)
        )

    def quantiles(self, qs: Iterable[float] = (0.5, 0.9, 0.99)) -> dict:
        """``{q: value}`` for several quantiles at once (default
        p50/p90/p99 — the set the snapshot, regression detector, and
        OpenMetrics exposition report)."""
        return {float(q): self.quantile(q) for q in qs}

    def bucket_bounds(self, max_buckets: int = 10) -> tuple[float, ...]:
        """Data-derived finite bucket upper bounds, strictly increasing.

        Log-spaced between min and max when all observations are
        positive (durations and TEPS span orders of magnitude),
        linearly spaced otherwise; bounds that collapse after float
        rounding are deduplicated.  The last bound equals the maximum
        observation, so the final finite bucket is cumulative-complete
        and the implicit ``+Inf`` bucket adds nothing new.
        """
        if max_buckets < 1:
            raise ObsError(
                f"histogram {self.name!r}: need max_buckets >= 1, "
                f"got {max_buckets}"
            )
        with self._lock:
            vals = list(self._values)
        if not vals:
            return ()
        lo, hi = min(vals), max(vals)
        if lo == hi:
            return (float(hi),)
        if lo > 0:
            raw = np.geomspace(lo, hi, max_buckets)
        else:
            raw = np.linspace(lo, hi, max_buckets)
        bounds: list[float] = []
        for b in raw:
            b = float(b)
            if not bounds or b > bounds[-1]:
                bounds.append(b)
        bounds[-1] = max(bounds[-1], float(hi))
        return tuple(bounds)

    def buckets(self, max_buckets: int = 10) -> list[list[float]]:
        """Cumulative ``[upper_bound, count]`` pairs (OpenMetrics-style).

        Counts are cumulative (each bucket includes everything below
        it) and the last pair's count equals :attr:`count`; the
        ``+Inf`` bucket is implied.  Empty histogram → empty list.
        """
        bounds = self.bucket_bounds(max_buckets)
        if not bounds:
            return []
        with self._lock:
            arr = np.asarray(self._values, dtype=np.float64)
        return [[b, int((arr <= b).sum())] for b in bounds]

    def snapshot(self) -> dict:
        """JSON-ready summary: count/sum/min/max/mean/p50/p90/p99 plus
        cumulative ``buckets`` for the OpenMetrics exposition."""
        with self._lock:
            vals = list(self._values)
        if not vals:
            return {"type": "histogram", "count": 0, "buckets": []}
        arr = np.asarray(vals, dtype=np.float64)
        p50, p90, p99 = np.percentile(arr, [50, 90, 99])
        return {
            "type": "histogram",
            "count": int(arr.size),
            "sum": float(arr.sum()),
            "min": float(arr.min()),
            "max": float(arr.max()),
            "mean": float(arr.mean()),
            "p50": float(p50),
            "p90": float(p90),
            "p99": float(p99),
            "buckets": self.buckets(),
        }

    def to_payload(self) -> dict:
        """Stable serialized state (see :data:`METRICS_PAYLOAD_SCHEMA`).

        The payload carries the *raw observations* — histograms here are
        small (per-level / per-root, not per-edge) — so merging across
        processes is exact: every quantile of the merged histogram
        equals the quantile over the concatenated observations."""
        with self._lock:
            return {"type": "histogram", "values": list(self._values)}

    def merge_payload(self, payload: dict) -> None:
        """Fold a :meth:`to_payload` dict in (observations concatenate)."""
        _check_payload_type(self, payload, "histogram")
        values = payload.get("values", [])
        if not isinstance(values, (list, tuple)):
            raise ObsError(
                f"histogram {self.name!r}: payload 'values' must be a "
                f"list, got {type(values).__name__}"
            )
        with self._lock:
            self._values.extend(float(v) for v in values)

    def reset(self) -> None:
        """Drop all observations."""
        with self._lock:
            self._values.clear()


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    ``registry.counter("bfs.levels").add()`` — the first call registers
    the instrument, later calls return the same object.  A name is bound
    to one instrument type for the registry's lifetime.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        if not name or not isinstance(name, str):
            raise ObsError(f"instrument name must be a non-empty str, got {name!r}")
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name, self._lock)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise ObsError(
                    f"metric {name!r} is a {type(inst).__name__}, "
                    f"not a {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get(name, Histogram)

    def names(self) -> list[str]:
        """Registered instrument names, sorted."""
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> dict[str, dict]:
        """Point-in-time JSON-ready state of every instrument."""
        with self._lock:
            instruments = dict(self._instruments)
        return {
            name: inst.snapshot() for name, inst in sorted(instruments.items())
        }

    def flat(self) -> dict[str, float]:
        """Cheap flat numeric view: counters and gauges by value,
        histograms by ``.count``/``.sum`` only.  Unlike
        :meth:`snapshot` this computes no quantiles or buckets, so it
        is safe to call per span close (the flight recorder's metric
        delta ring does)."""
        with self._lock:
            instruments = dict(self._instruments)
        out: dict[str, float] = {}
        for name, inst in instruments.items():
            if isinstance(inst, Histogram):
                with self._lock:
                    count = len(inst._values)
                    total = sum(inst._values)
                if count:
                    out[f"{name}.count"] = float(count)
                    out[f"{name}.sum"] = float(total)
            else:
                value = inst.value
                if value is not None:
                    out[name] = float(value)
        return out

    def to_payload(self) -> dict:
        """Serialize every instrument for an exact cross-process merge.

        The result is JSON-ready and schema-tagged
        (:data:`METRICS_PAYLOAD_SCHEMA`); feed it to another registry's
        :meth:`merge_payload`.  Unlike :meth:`snapshot` (a lossy
        human/report view) this round-trips: counters carry totals,
        gauges their last value, histograms their raw observations.
        """
        with self._lock:
            instruments = dict(self._instruments)
        return {
            "schema": METRICS_PAYLOAD_SCHEMA,
            "instruments": {
                name: inst.to_payload()
                for name, inst in sorted(instruments.items())
            },
        }

    def merge_payload(self, payload: dict) -> None:
        """Fold a :meth:`to_payload` dict from another registry in.

        Counters add, gauges last-write-win, histogram observations
        concatenate.  Instruments missing here are created; a name bound
        to a different instrument type raises
        :class:`~repro.errors.ObsError` (nothing is partially merged
        before the offending name because payload instruments are
        validated first).
        """
        if not isinstance(payload, dict):
            raise ObsError(
                f"registry payload must be a dict, got {type(payload).__name__}"
            )
        schema = payload.get("schema")
        if schema != METRICS_PAYLOAD_SCHEMA:
            raise ObsError(
                f"unsupported metrics payload schema {schema!r}, "
                f"expected {METRICS_PAYLOAD_SCHEMA!r}"
            )
        instruments = payload.get("instruments", {})
        if not isinstance(instruments, dict):
            raise ObsError("metrics payload 'instruments' must be a dict")
        classes = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}
        plan = []
        for name, inst_payload in instruments.items():
            if not isinstance(inst_payload, dict):
                raise ObsError(
                    f"metric {name!r}: payload entry must be a dict"
                )
            cls = classes.get(inst_payload.get("type"))
            if cls is None:
                raise ObsError(
                    f"metric {name!r}: unknown payload type "
                    f"{inst_payload.get('type')!r}"
                )
            plan.append((self._get(name, cls), inst_payload))
        for inst, inst_payload in plan:
            inst.merge_payload(inst_payload)

    def reset(self, names: Iterable[str] | None = None) -> None:
        """Reset all instruments (or just ``names``), keeping them
        registered so handles held by engines stay valid."""
        with self._lock:
            instruments = dict(self._instruments)
        targets = instruments if names is None else list(names)
        for name in targets:
            if name not in instruments:
                raise ObsError(f"no metric named {name!r}")
            instruments[name].reset()
