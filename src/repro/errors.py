"""Exception hierarchy for :mod:`repro`.

All exceptions raised by the library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing the failure domain from the subclass.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "GraphFormatError",
    "ValidationError",
    "BFSError",
    "ArchError",
    "CalibrationError",
    "ModelError",
    "NotFittedError",
    "ConvergenceWarning",
    "TuningError",
    "PlanError",
    "BenchError",
    "AnalysisError",
    "LintError",
    "CallGraphError",
    "SanitizerError",
    "UnitsError",
    "ObsError",
    "ExportError",
    "HistoryError",
    "MonitorError",
    "ProfileError",
    "LiveError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Raised for invalid graph construction or graph-level operations."""


class GraphFormatError(GraphError):
    """Raised when parsing or writing an on-disk graph representation fails."""


class ValidationError(ReproError):
    """Raised when a BFS output fails Graph 500-style validation.

    The message identifies which of the specification checks failed
    (tree structure, level consistency, edge coverage, connectivity).
    """


class BFSError(ReproError):
    """Raised for invalid BFS invocations (bad source, mismatched maps)."""


class ArchError(ReproError):
    """Raised for invalid architecture specifications or cost-model inputs."""


class CalibrationError(ArchError):
    """Raised when cost-model calibration cannot meet its tolerance."""


class ModelError(ReproError):
    """Raised for invalid machine-learning model configuration or inputs."""


class NotFittedError(ModelError):
    """Raised when prediction is attempted on an unfitted estimator."""


class ConvergenceWarning(UserWarning):
    """Warned when an iterative solver stops at its iteration budget."""


class TuningError(ReproError):
    """Raised for invalid switching-point search configurations."""


class PlanError(ReproError):
    """Raised when a heterogeneous execution plan is malformed."""


class BenchError(ReproError):
    """Raised when a benchmark experiment is configured inconsistently."""


class AnalysisError(ReproError):
    """Base class for the static-analysis / sanitizer layer
    (:mod:`repro.analysis`)."""


class LintError(AnalysisError):
    """Raised when the lint engine itself cannot run (unparsable file,
    unknown rule code) — *not* for reporting violations, which are data."""


class CallGraphError(AnalysisError):
    """Raised when whole-program call-graph construction cannot run
    (no parsable inputs, malformed summary cache, unknown query)."""


class SanitizerError(AnalysisError):
    """Raised when the runtime BFS sanitizer detects a broken traversal
    invariant.

    Structured: ``level`` is the BFS depth at which the invariant broke
    (``None`` for whole-traversal checks) and ``vertices`` holds the
    offending vertex ids (possibly truncated for the message).
    """

    def __init__(
        self,
        message: str,
        *,
        level: int | None = None,
        vertices: tuple[int, ...] = (),
    ) -> None:
        detail = message
        if level is not None:
            detail += f" [level {level}]"
        if vertices:
            shown = ", ".join(str(v) for v in vertices[:8])
            more = "" if len(vertices) <= 8 else f", … +{len(vertices) - 8}"
            detail += f" [vertices: {shown}{more}]"
        super().__init__(detail)
        self.level = level
        self.vertices = tuple(int(v) for v in vertices)


class UnitsError(AnalysisError):
    """Raised when dimensional analysis of the cost model finds terms
    with incompatible units (e.g. seconds added to edge counts)."""


class ObsError(ReproError):
    """Raised for invalid observability usage (:mod:`repro.obs`):
    malformed spans, metric type conflicts, audit inputs that do not
    describe the same traversal."""


class ExportError(ObsError):
    """Raised when a trace export/import fails or an exported trace
    does not conform to its schema (JSONL event stream, Chrome
    trace-event format, OpenMetrics exposition)."""


class HistoryError(ObsError):
    """Raised by the run-history store (:mod:`repro.obs.history`):
    unreadable files in strict mode, records from a newer schema
    version, non-serializable payloads."""


class MonitorError(ObsError):
    """Raised for invalid monitoring inputs (:mod:`repro.obs.monitor`):
    malformed metric policies, empty baselines where a verdict was
    demanded, direction sequences that do not match the profile."""


class ProfileError(ObsError):
    """Raised by the profiling tier (:mod:`repro.obs.profile`): sampler
    lifecycle misuse, explain inputs that do not describe the same
    traversal, malformed flight-recorder snapshots."""


class LiveError(ObsError):
    """Raised by the live-telemetry tier (:mod:`repro.obs.live`):
    malformed channel frames, collector lifecycle misuse, invalid SLO
    policy specifications, capture files from a newer schema."""


class ProtocolError(LiveError):
    """Raised on a protocol-state-machine conformance failure
    (:mod:`repro.obs.live.protocol`, strict capture replay): an event
    illegal in the subject's current state, or a stream/handle ending
    outside an accepting state.  Subclasses :class:`LiveError` so the
    existing live-gate error paths treat non-conformance as a failed
    check."""
