"""Thread-parallel BFS kernels.

The paper's OpenMP loops parallelize the level's outer loop control
(Section III-A): top-down over the current queue, bottom-up over the
unvisited vertices.  The same decomposition is applied here with a
thread pool: the work array is split into per-thread chunks, each chunk
runs the vectorized kernel (NumPy releases the GIL inside its ufunc
loops, so chunks genuinely overlap), and the claims are merged.

Bottom-up partitioning is conflict-free by construction — each
unvisited vertex is owned by exactly one thread — mirroring why the
paper calls bottom-up's parallelism Θ(V/lg V) against top-down's
Θ(Vcq/lg Vcq).  Top-down chunks can race to discover the same vertex,
resolved in the merge step exactly like the sequential first-writer
rule (the O(k) reversed-scatter claim over the concatenated proposals).

These kernels power the *real-machine* strong-scaling benchmark that
accompanies the simulated Fig. 10.

Ownership protocol
------------------
The engine's thread-safety contract, enforced statically by the deep
lint rules ``RPR013``/``RPR014`` and dynamically by
``run(..., sanitize="race")``:

1. worker closures may **read** shared state freely (``parent``,
   ``level``, CSR arrays, the frontier bitmap);
2. a worker may **write** only (a) arrays it allocated itself, (b) its
   per-thread workspace scratch (:meth:`BFSWorkspace.buffer` is keyed
   by thread id), and (c) the disjoint chunk it was handed
   (``np.array_split`` partitions are non-overlapping);
3. every write to the shared ``parent``/``level`` maps happens on the
   **main thread after the pool has joined**: top-down merges the
   concatenated proposals through the first-writer claim, bottom-up
   scatters the winners of the partitioned unvisited scan.

Deliberate exceptions are annotated ``# repro: owned[<why>]`` at the
write site.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.bfs._gather import expand_rows
from repro.bfs.bottomup import DEFAULT_SCAN_WINDOW, _row_scan
from repro.bfs.hybrid import DirectionPolicy, LevelState, MNPolicy
from repro.bfs.result import BFSResult, Direction
from repro.bfs.topdown import claim_first_writer
from repro.bfs.workspace import BFSWorkspace
from repro.errors import BFSError
from repro.graph.csr import CSRGraph
from repro.obs.tracer import NULL_TRACER, Tracer, get_tracer

__all__ = ["ParallelBFS"]


def _split(values: np.ndarray, parts: int) -> list[np.ndarray]:
    """Split ``values`` into at most ``parts`` contiguous chunks."""
    parts = min(parts, max(1, values.size))
    return [c for c in np.array_split(values, parts) if c.size]


class ParallelBFS:
    """A reusable thread-parallel BFS engine.

    Parameters
    ----------
    num_threads:
        Worker threads for both directions (the "cores" of the scaling
        experiment).
    policy:
        Optional direction policy; defaults to always top-down unless an
        ``MNPolicy`` is supplied, making the engine usable for plain
        top-down, plain bottom-up and hybrid scaling runs.

    The pool is created per engine and shared across traversals; use as
    a context manager or call :meth:`close`.  Running a traversal on a
    closed engine raises :class:`~repro.errors.BFSError`.
    """

    def __init__(
        self,
        num_threads: int = 4,
        policy: DirectionPolicy | None = None,
    ) -> None:
        if num_threads < 1:
            raise BFSError(f"num_threads must be >= 1, got {num_threads}")
        self.num_threads = num_threads
        self.policy = policy
        self._pool = ThreadPoolExecutor(
            max_workers=num_threads, thread_name_prefix="repro-bfs"
        )
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut down the worker pool.  Idempotent.

        Safe to call while work from an aborted traversal is still
        queued (the context manager calls it when the body raises
        mid-traversal): queued-but-unstarted chunks are cancelled so
        the shutdown cannot hang behind them, then the join waits only
        for chunks already executing.
        """
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True, cancel_futures=True)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def __enter__(self) -> "ParallelBFS":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- level kernels -------------------------------------------------------

    def _top_down_level(
        self,
        graph: CSRGraph,
        frontier: np.ndarray,
        parent: np.ndarray,
        level: np.ndarray,
        depth: int,
        workspace: BFSWorkspace,
        tracer: Tracer = NULL_TRACER,
        race=None,
        parent_span: int | None = None,
    ) -> tuple[np.ndarray, int]:
        chunks = _split(frontier, self.num_threads)

        def expand(chunk: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
            """One thread's share of the frontier expansion.

            Read-only over shared state: proposals are returned to the
            main thread for the first-writer merge (ownership protocol
            rule 3).  The span lands on the worker thread's own track
            (thread name) but parents under the coordinating
            ``bfs.level`` span, so the exported trace shows one row per
            worker with real parent links instead of orphan stacks.
            """
            with tracer.span(
                "worker.expand",
                parent=parent_span,
                depth=depth,
                chunk_vertices=int(chunk.size),
            ):
                if race is not None:
                    race.stamp_chunk(f"expand@{depth}")
                neighbours, owners, _ = expand_rows(graph, chunk, workspace)
                fresh = parent[neighbours] < 0
                return neighbours[fresh], owners[fresh], int(neighbours.size)

        results = list(self._pool.map(expand, chunks))
        examined = sum(r[2] for r in results)
        if not results:
            return np.zeros(0, dtype=np.int64), 0
        cand = np.concatenate([r[0] for r in results])
        cand_parent = np.concatenate([r[1] for r in results])
        if cand.size == 0:
            return np.zeros(0, dtype=np.int64), examined
        next_frontier = claim_first_writer(
            cand, cand_parent, parent, level, depth, workspace
        )
        return next_frontier, examined

    def _bottom_up_level(
        self,
        graph: CSRGraph,
        in_frontier,
        parent: np.ndarray,
        level: np.ndarray,
        depth: int,
        unvisited: np.ndarray,
        workspace: BFSWorkspace,
        tracer: Tracer = NULL_TRACER,
        race=None,
        parent_span: int | None = None,
    ) -> tuple[np.ndarray, int]:
        # The caller maintains `unvisited` (degree > 0, retired each
        # level); each thread owns a contiguous slice, so claims are
        # conflict-free.
        chunks = _split(unvisited, self.num_threads)
        targets = graph.targets
        degrees = graph.degrees
        offsets = graph.offsets

        def scan(chunk: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
            """One thread's share of the unvisited scan.

            Workspace scratch is safe here: :meth:`BFSWorkspace.buffer`
            is keyed by thread id and the iota cache grow is benign
            under races (each thread keeps a valid read-only view).
            The span lands on the worker thread's own trace track.
            """
            with tracer.span(
                "worker.scan",
                parent=parent_span,
                depth=depth,
                chunk_vertices=int(chunk.size),
            ):
                if race is not None:
                    race.stamp_chunk(f"scan@{depth}")
                deg = degrees[chunk]
                starts = offsets[chunk]
                found, first_local, inspected = _row_scan(
                    graph,
                    chunk,
                    deg,
                    starts,
                    in_frontier,
                    window=DEFAULT_SCAN_WINDOW,
                    workspace=workspace,
                )
                return (
                    chunk[found],
                    targets[(starts + first_local)[found]],
                    inspected,
                )

        results = list(self._pool.map(scan, chunks))
        checked = sum(r[2] for r in results)
        winners_list = [r[0] for r in results if r[0].size]
        if not winners_list:
            return np.zeros(0, dtype=np.int64), checked
        # Chunks partition the ascending unvisited list, so the
        # concatenated winners are already sorted.
        winners = np.concatenate(winners_list)
        parents = np.concatenate([r[1] for r in results if r[0].size])
        # Main-thread merge (ownership protocol rule 3): the pool has
        # joined, so these are the level's only shared-map writes.
        parent[winners] = parents
        level[winners] = depth + 1
        return winners, checked

    # -- traversal --------------------------------------------------------------

    def run(
        self,
        graph: CSRGraph,
        source: int,
        *,
        direction: str | None = None,
        workspace: BFSWorkspace | None = None,
        tracer: Tracer | None = None,
        sanitize: bool | str = False,
    ) -> BFSResult:
        """Traverse from ``source``.

        ``direction='td'``/``'bu'`` forces one kernel; otherwise the
        engine's policy decides per level (defaulting to top-down when
        no policy was given).

        Without an explicit ``workspace`` each call uses a private one,
        so concurrently produced results stay independent; pass a
        workspace to reuse graph-sized scratch across traversals (the
        result then aliases its arrays — ``result.detach()`` to keep).

        ``tracer`` overrides the process-global tracer: levels become
        ``bfs.level`` spans under a ``bfs.parallel`` root and each
        worker's chunk is a ``worker.expand``/``worker.scan`` span on
        that worker thread's own track.

        ``sanitize=True`` runs the traversal under the invariant
        :class:`~repro.analysis.sanitizer.Sanitizer` (frozen CSR
        arrays + per-level checks); ``sanitize="race"`` additionally
        enables :class:`~repro.analysis.sanitizer.RaceTracker` write
        tracking, which snapshots the parent/level maps each level,
        stamps thread ownership on every worker chunk, and raises
        :class:`~repro.errors.SanitizerError` if any vertex outside
        the claimed next frontier was written — i.e. a cross-thread
        write that bypassed the main-thread merge.  ``sanitize=False``
        (the default) adds zero work to the datapath.
        """
        if self._closed:
            raise BFSError("ParallelBFS engine is closed; create a new one")
        n = graph.num_vertices
        if not 0 <= source < n:
            raise BFSError(f"source {source} out of range [0, {n})")
        if direction is not None and direction not in Direction.ALL:
            raise BFSError(f"unknown direction {direction!r}")
        if sanitize not in (False, True, "race"):
            raise BFSError(
                f"unknown sanitize mode {sanitize!r}; "
                "expected False, True or 'race'"
            )
        tr = tracer if tracer is not None else get_tracer()
        degrees = graph.degrees
        nedges = max(graph.num_edges, 1)

        san = race = None
        if sanitize:
            from repro.analysis.sanitizer import RaceTracker, Sanitizer

            san = Sanitizer(graph, source)
            if sanitize == "race":
                race = RaceTracker(graph, source)

        ws = workspace if workspace is not None else BFSWorkspace(n)
        parent, level = ws.begin(source)
        frontier = np.array([source], dtype=np.int64)
        unvisited_count = n - 1

        directions: list[str] = []
        edges_examined: list[int] = []
        depth = 0
        try:
            if san is not None:
                san.__enter__()
            with tr.span(
                "bfs.parallel",
                source=source,
                num_vertices=n,
                num_threads=self.num_threads,
            ) as root:
                while frontier.size:
                    if direction is not None:
                        chosen = direction
                    elif self.policy is not None:
                        chosen = self.policy.direction(
                            LevelState(
                                depth=depth,
                                frontier_vertices=int(frontier.size),
                                frontier_edges=int(degrees[frontier].sum()),
                                num_vertices=n,
                                num_edges=nedges,
                                unvisited_vertices=unvisited_count,
                            )
                        )
                        tr.instant(
                            "bfs.direction",
                            depth=depth,
                            direction=chosen,
                            frontier_vertices=int(frontier.size),
                        )
                    else:
                        chosen = Direction.TOP_DOWN
                    if race is not None:
                        race.begin_level(parent, level)
                    bits = None
                    with tr.span(
                        "bfs.level", depth=depth, direction=chosen
                    ) as sp:
                        # Worker spans open on pool threads whose span
                        # stacks are empty; handing them the level
                        # span's id keeps the trace tree connected
                        # (a _NullSpan has no id — disabled tracing
                        # stays parent-free and free of cost).
                        level_span = getattr(sp, "span_id", None)
                        if chosen == Direction.TOP_DOWN:
                            frontier_next, work = self._top_down_level(
                                graph, frontier, parent, level, depth, ws,
                                tr, race, level_span,
                            )
                        else:
                            bits = ws.load_frontier(frontier)
                            unvisited = ws.unvisited_ids(graph, parent)
                            frontier_next, work = self._bottom_up_level(
                                graph, bits, parent, level, depth,
                                unvisited, ws, tr, race, level_span,
                            )
                        sp.set("frontier_vertices", int(frontier.size))
                        sp.set("edges_examined", work)
                        sp.set("claimed", int(frontier_next.size))
                    if race is not None:
                        race.verify_level(depth, parent, level, frontier_next)
                    if san is not None:
                        san.after_level(
                            depth, frontier, frontier_next, parent, level,
                            in_frontier=bits,
                        )
                    ws.retire_claimed(parent)
                    directions.append(chosen)
                    edges_examined.append(work)
                    unvisited_count -= int(frontier_next.size)
                    frontier = frontier_next
                    depth += 1
                root.set("levels", depth)
            tr.count("bfs.levels", depth)
            tr.count("bfs.edges_examined", sum(edges_examined))
            if san is not None:
                san.finish(parent, level)
        finally:
            if san is not None:
                san.__exit__()
        return BFSResult(
            source=source,
            parent=parent,
            level=level,
            directions=directions,
            edges_examined=edges_examined,
        )

    @classmethod
    def hybrid(
        cls, num_threads: int, m: float, n: float
    ) -> "ParallelBFS":
        """Engine with the paper's (M, N) switching rule."""
        return cls(num_threads=num_threads, policy=MNPolicy(m, n))
