"""BFS engines: reference, vectorized top-down/bottom-up, the
direction-optimizing hybrid, the SpMV formulation, thread-parallel
kernels and the instrumented level profiler."""

from repro.bfs.bottomup import bfs_bottom_up, bottom_up_step
from repro.bfs.hybrid import (
    DirectionPolicy,
    LevelState,
    MNPolicy,
    bfs_hybrid,
)
from repro.bfs.multisource import MultiSourceResult, msbfs
from repro.bfs.parallel import ParallelBFS
from repro.bfs.profiler import pick_sources, profile_bfs
from repro.bfs.reference import bfs_reference
from repro.bfs.result import BFSResult, Direction
from repro.bfs.timing import TimedLevel, TimedRun, timed_bfs
from repro.bfs.spmv import adjacency_matrix, bfs_spmv, spmv_bytes, spmv_flops
from repro.bfs.topdown import bfs_top_down, top_down_step
from repro.bfs.trace import LevelProfile, LevelRecord, merge_mean
from repro.bfs.workspace import BFSWorkspace

__all__ = [
    "BFSResult",
    "BFSWorkspace",
    "Direction",
    "LevelProfile",
    "LevelRecord",
    "merge_mean",
    "bfs_reference",
    "bfs_top_down",
    "top_down_step",
    "bfs_bottom_up",
    "bottom_up_step",
    "bfs_hybrid",
    "MNPolicy",
    "DirectionPolicy",
    "LevelState",
    "ParallelBFS",
    "msbfs",
    "MultiSourceResult",
    "bfs_spmv",
    "timed_bfs",
    "TimedRun",
    "TimedLevel",
    "adjacency_matrix",
    "spmv_flops",
    "spmv_bytes",
    "profile_bfs",
    "pick_sources",
]
