"""Direction-optimizing BFS — the combination of Algorithms 1 and 2.

The paper's switching rule (Fig. 4): run **top-down** while

``|E|cq < |E| / M  and  |V|cq < |V| / N``

and **bottom-up** otherwise.  ``(M, N)`` is the *switching point*, the
quantity the whole paper is about tuning; it is supplied here as a
:class:`MNPolicy` (fixed thresholds), or any object implementing
:class:`DirectionPolicy` — per-level oracle plans and regression-driven
policies from :mod:`repro.tuning` plug in through the same interface.

The hybrid pays the real representation-conversion costs: switching to
bottom-up materializes the frontier bitmap, switching back extracts the
queue.  Both events are recorded so the cost model can charge them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.bfs.bottomup import bottom_up_step
from repro.bfs.result import BFSResult, Direction
from repro.bfs.topdown import top_down_step
from repro.bfs.workspace import BFSWorkspace
from repro.errors import BFSError
from repro.graph.csr import CSRGraph
from repro.obs.tracer import Tracer, get_tracer

__all__ = [
    "BOTTOM_UP_KERNELS",
    "LevelState",
    "DirectionPolicy",
    "MNPolicy",
    "bfs_hybrid",
]


@dataclass(frozen=True)
class LevelState:
    """What a direction policy may look at before a level executes."""

    depth: int
    frontier_vertices: int
    frontier_edges: int
    num_vertices: int
    num_edges: int
    unvisited_vertices: int


@runtime_checkable
class DirectionPolicy(Protocol):
    """Chooses the direction for each BFS level."""

    def direction(self, state: LevelState) -> str:
        """Return :data:`Direction.TOP_DOWN` or :data:`Direction.BOTTOM_UP`."""
        ...


@dataclass(frozen=True)
class MNPolicy:
    """The paper's threshold rule with parameters ``(M, N)``.

    Top-down iff ``|E|cq < |E|/M`` **and** ``|V|cq < |V|/N``; bottom-up
    otherwise.  Large ``M``/``N`` switch to bottom-up earlier; ``M = N =
    1`` never leaves top-down on any proper subgraph frontier.
    """

    m: float
    n: float

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0:
            raise BFSError(f"M and N must be positive, got ({self.m}, {self.n})")

    def direction(self, state: LevelState) -> str:
        """Apply the Fig. 4 threshold test to one level."""
        td = (
            state.frontier_edges < state.num_edges / self.m
            and state.frontier_vertices < state.num_vertices / self.n
        )
        return Direction.TOP_DOWN if td else Direction.BOTTOM_UP


#: Recognized bottom-up kernel families for :func:`bfs_hybrid`.
BOTTOM_UP_KERNELS = ("scan", "tiles")


def bfs_hybrid(
    graph: CSRGraph,
    source: int,
    policy: DirectionPolicy | None = None,
    *,
    m: float | None = None,
    n: float | None = None,
    bottom_up: str = "scan",
    sanitize: bool = False,
    workspace: BFSWorkspace | None = None,
    tracer: Tracer | None = None,
) -> BFSResult:
    """Direction-optimizing traversal from ``source``.

    Either pass a ``policy`` object or the raw thresholds ``m=`` / ``n=``
    (mirroring how the runtime system receives the regression-predicted
    switching point).

    ``bottom_up`` selects the kernel family for bottom-up levels:
    ``"scan"`` (the reference windowed adjacency scan) or ``"tiles"``
    (the masked bitmap-tile SpMV of :mod:`repro.linalg`).  The families
    are bit-identical on ``parent``/``level``; ``edges_examined``
    follows each family's own accounting (entry-granular vs
    word-granular early termination).

    With ``sanitize=True`` the traversal runs under
    :class:`repro.analysis.sanitizer.Sanitizer`: CSR arrays are frozen,
    per-level invariants are checked after every step, and bottom-up
    levels additionally verify the frontier bitmap against the queue.

    With an explicit ``workspace`` repeated traversals reuse every
    graph-sized array (output maps, frontier bitmap, claim slots,
    unvisited list); the result's parent/level then alias the workspace
    arrays — call ``result.detach()`` to keep them past the next
    traversal.

    ``tracer`` overrides the process-global tracer: each level becomes
    a ``bfs.level`` span under a ``bfs.hybrid`` root, every direction
    decision is recorded as a ``bfs.direction`` instant event (the
    decision-audit channel), and per-level claim ratios feed the
    ``frontier.claim_ratio`` histogram.
    """
    if policy is None:
        if m is None or n is None:
            raise BFSError("provide either policy= or both m= and n=")
        policy = MNPolicy(m, n)
    elif m is not None or n is not None:
        raise BFSError("pass policy= or m=/n=, not both")
    if bottom_up not in BOTTOM_UP_KERNELS:
        raise BFSError(
            f"unknown bottom-up kernel family {bottom_up!r}; "
            f"expected one of {BOTTOM_UP_KERNELS}"
        )
    bu_step = bottom_up_step
    if bottom_up == "tiles":
        # Lazy import: repro.linalg builds on repro.bfs, so the reverse
        # dependency stays out of module scope (same pattern as the
        # Sanitizer import below).
        from repro.linalg.kernels import bottom_up_tiles_step

        bu_step = bottom_up_tiles_step

    nverts = graph.num_vertices
    if not 0 <= source < nverts:
        raise BFSError(f"source {source} out of range [0, {nverts})")
    san = None
    if sanitize:
        from repro.analysis.sanitizer import Sanitizer

        san = Sanitizer(graph, source)
    nedges = max(graph.num_edges, 1)
    degrees = graph.degrees
    tr = tracer if tracer is not None else get_tracer()

    ws = workspace if workspace is not None else BFSWorkspace(nverts)
    parent, level = ws.begin(source)

    frontier = np.array([source], dtype=np.int64)
    unvisited_count = nverts - 1

    directions: list[str] = []
    edges_examined: list[int] = []
    depth = 0
    try:
        if san is not None:
            san.__enter__()
        with tr.span(
            "bfs.hybrid",
            source=source,
            num_vertices=nverts,
            bottom_up=bottom_up,
        ) as root:
            while frontier.size:
                state = LevelState(
                    depth=depth,
                    frontier_vertices=int(frontier.size),
                    frontier_edges=int(degrees[frontier].sum()),
                    num_vertices=nverts,
                    num_edges=nedges,
                    unvisited_vertices=unvisited_count,
                )
                chosen = policy.direction(state)
                tr.instant(
                    "bfs.direction",
                    depth=depth,
                    direction=chosen,
                    frontier_vertices=state.frontier_vertices,
                    frontier_edges=state.frontier_edges,
                    unvisited_vertices=state.unvisited_vertices,
                )
                bits = None
                with tr.span("bfs.level", depth=depth, direction=chosen) as sp:
                    if chosen == Direction.TOP_DOWN:
                        next_frontier, examined = top_down_step(
                            graph, frontier, parent, level, depth, ws
                        )
                    elif chosen == Direction.BOTTOM_UP:
                        # Switch cost: the sparse queue becomes a packed
                        # bitmap (cleared word-wise from the previous
                        # load, not O(V)).
                        bits = ws.load_frontier(frontier)
                        unvisited = ws.unvisited_ids(graph, parent)
                        next_frontier, examined = bu_step(
                            graph,
                            bits,
                            parent,
                            level,
                            depth,
                            unvisited=unvisited,
                            workspace=ws,
                        )
                    else:
                        raise BFSError(
                            f"policy returned unknown direction {chosen!r}"
                        )
                    sp.set("frontier_vertices", state.frontier_vertices)
                    sp.set("edges_examined", examined)
                    sp.set("claimed", int(next_frontier.size))
                if examined:
                    tr.observe(
                        "frontier.claim_ratio", next_frontier.size / examined
                    )
                if san is not None:
                    san.after_level(
                        depth,
                        frontier,
                        next_frontier,
                        parent,
                        level,
                        in_frontier=bits,
                    )
                # Keep the incremental unvisited list honest after every
                # claiming level (no-op while it is still lazy).
                ws.retire_claimed(parent)
                directions.append(chosen)
                edges_examined.append(examined)
                unvisited_count -= int(next_frontier.size)
                frontier = next_frontier
                depth += 1
            root.set("levels", depth)
        tr.count("bfs.levels", depth)
        tr.count("bfs.edges_examined", sum(edges_examined))
        if bottom_up == "tiles":
            tr.count(
                "linalg.tile_passes", directions.count(Direction.BOTTOM_UP)
            )
        if san is not None:
            san.finish(parent, level)
    finally:
        if san is not None:
            san.__exit__()

    return BFSResult(
        source=source,
        parent=parent,
        level=level,
        directions=directions,
        edges_examined=edges_examined,
    )
