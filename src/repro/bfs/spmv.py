"""BFS as sparse matrix–vector multiplication (Section III-B).

The paper frames BFS as ``y = A x``: ``x`` the current-queue indicator,
``A`` the adjacency matrix, ``y > 0`` the next queue — the framing that
grounds its RCMA bottleneck analysis.  This module provides that
formulation executably on :mod:`scipy.sparse`, as a third independent
BFS implementation for differential testing and as the basis of the
roofline numbers in :mod:`repro.arch.roofline`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.bfs.result import BFSResult, Direction
from repro.errors import BFSError
from repro.graph.csr import CSRGraph

__all__ = ["adjacency_matrix", "bfs_spmv", "spmv_flops", "spmv_bytes"]


def adjacency_matrix(graph: CSRGraph) -> sp.csr_matrix:
    """The graph's adjacency matrix as a SciPy CSR matrix.

    Zero-copy on the adjacency structure: the CSR arrays are frozen at
    construction, so they are handed to SciPy without defensive copies
    — ``indices`` aliases the graph's ``targets`` (the ``O(E)`` array;
    SciPy keeps it as a read-only view), while SciPy canonicalizes
    ``indptr`` to its own index dtype (an ``O(V)`` cast it owns).  The
    matrix's ``indices`` therefore stay **read-only**; callers that
    need to mutate structure must copy first.  Adjacency lists are
    sorted within each row, so ``has_sorted_indices`` is declared up
    front — SciPy would otherwise try to sort (i.e. write) the aliased
    array on first use.
    """
    n = graph.num_vertices
    data = np.ones(graph.targets.size, dtype=np.int8)
    mat = sp.csr_matrix(
        (data, graph.targets, graph.offsets), shape=(n, n)
    )
    mat.has_sorted_indices = True
    return mat


def bfs_spmv(graph: CSRGraph, source: int) -> BFSResult:
    """Level-synchronous BFS where each level is one SpMV.

    Produces the same level map as the other engines; parents are
    assigned by a minimum-parent-id rule (any shortest-path tree is a
    valid BFS tree, and validation accepts it).
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise BFSError(f"source {source} out of range [0, {n})")
    # Transpose so y[v] accumulates over in-edges; for the symmetric
    # graphs of the paper A == A^T and this is a no-op in structure.
    at = adjacency_matrix(graph).T.tocsr()

    parent = np.full(n, -1, dtype=np.int64)
    level = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    level[source] = 0

    x = np.zeros(n, dtype=np.int8)
    x[source] = 1
    visited = np.zeros(n, dtype=bool)
    visited[source] = True

    directions: list[str] = []
    edges_examined: list[int] = []
    depth = 0
    frontier = np.array([source], dtype=np.int64)
    degrees = graph.degrees
    while frontier.size:
        y = at @ x
        fresh = (y > 0) & ~visited
        next_frontier = np.nonzero(fresh)[0].astype(np.int64)
        directions.append(Direction.TOP_DOWN)
        edges_examined.append(int(degrees[frontier].sum()))
        if next_frontier.size:
            visited[next_frontier] = True
            level[next_frontier] = depth + 1
            parent[next_frontier] = _min_parent(graph, next_frontier, x)
        x.fill(0)
        x[next_frontier] = 1
        frontier = next_frontier
        depth += 1
    return BFSResult(
        source=source,
        parent=parent,
        level=level,
        directions=directions,
        edges_examined=edges_examined,
    )


def _min_parent(
    graph: CSRGraph, vertices: np.ndarray, in_prev: np.ndarray
) -> np.ndarray:
    """For each vertex, the smallest-id neighbour in the previous level."""
    from repro.bfs._gather import expand_rows, segment_first_true

    neighbours, _, seg_starts = expand_rows(graph, vertices)
    hits = in_prev[neighbours] > 0
    # Adjacency lists are sorted ascending, so the first hit is the
    # minimum-id hit.
    first = segment_first_true(hits, seg_starts)
    if (first < 0).any():
        raise BFSError("SpMV frontier vertex has no parent in previous level")
    return neighbours[first].astype(np.int64)


def spmv_flops(n: int) -> int:
    """Operations to compute a dense ``n × n`` matrix–vector product:
    ``n`` rows of ``n`` multiplies and ``n - 1`` adds (the paper's RCMA
    numerator)."""
    if n <= 0:
        raise BFSError(f"n must be positive, got {n}")
    return n * (2 * n - 1)


def spmv_bytes(n: int, element_bytes: int = 4) -> int:
    """Bytes fetched for the dense product: the matrix plus the vector
    (the paper's RCMA denominator)."""
    if n <= 0:
        raise BFSError(f"n must be positive, got {n}")
    return element_bytes * (n * n + n)
