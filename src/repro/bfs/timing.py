"""Wall-clock per-level timing of real traversals.

The paper's Fig. 3 and Table IV are per-level time measurements; this
module produces the same shape of data for the *actual NumPy kernels on
this machine*, so users can draw their own Fig. 3 without the
simulator.

Since the observability layer landed, this module owns no clock: it is
a thin consumer of :mod:`repro.obs` — every level runs inside a
``bfs.level`` span and each :class:`TimedLevel` is built *from the
span's duration*, so ``TimedRun.total_seconds`` equals the tracer's
span sums exactly (an invariant the test suite checks).  When no
enabled tracer is ambient or passed, a private recording tracer is used
so timing always works; either way the recording is available as
``TimedRun.tracer`` for export.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bfs.bottomup import bottom_up_step
from repro.bfs.hybrid import (
    BOTTOM_UP_KERNELS,
    DirectionPolicy,
    LevelState,
    MNPolicy,
)
from repro.bfs.result import BFSResult, Direction
from repro.bfs.topdown import top_down_step
from repro.bfs.workspace import BFSWorkspace
from repro.errors import BFSError
from repro.graph.csr import CSRGraph
from repro.obs.tracer import Tracer, get_tracer

__all__ = ["TimedLevel", "TimedRun", "timed_bfs"]


@dataclass(frozen=True)
class TimedLevel:
    """One level's wall-clock record."""

    level: int
    direction: str
    frontier_vertices: int
    edges_examined: int
    seconds: float
    #: Kernel family that executed the level: ``"td"`` for top-down
    #: levels, else the bottom-up family (``"scan"``/``"tiles"``).
    kernel: str = "td"


@dataclass(frozen=True)
class TimedRun:
    """A traversal with per-level wall-clock timings.

    ``tracer`` is the recording the timings came from (the ambient
    tracer when one was enabled, otherwise a private one); its
    ``bfs.level`` spans sum to :attr:`total_seconds` exactly and can be
    exported with :mod:`repro.obs.export`.
    """

    result: BFSResult
    levels: tuple[TimedLevel, ...]
    tracer: Tracer | None = field(default=None, compare=False, repr=False)

    @property
    def total_seconds(self) -> float:
        """Sum of per-level times (kernel time only, no setup)."""
        return float(sum(lv.seconds for lv in self.levels))

    def series(self) -> dict[str, list]:
        """Column-oriented view for plotting (the Fig. 3 axes)."""
        return {
            "level": [lv.level + 1 for lv in self.levels],
            "direction": [lv.direction for lv in self.levels],
            "seconds": [lv.seconds for lv in self.levels],
            "edges_examined": [lv.edges_examined for lv in self.levels],
        }


def timed_bfs(
    graph: CSRGraph,
    source: int,
    policy: DirectionPolicy | None = None,
    *,
    m: float | None = None,
    n: float | None = None,
    direction: str | None = None,
    bottom_up: str = "scan",
    workspace: BFSWorkspace | None = None,
    tracer: Tracer | None = None,
) -> TimedRun:
    """Traverse with per-level wall-clock measurement.

    Either force a ``direction`` (``'td'``/``'bu'``), pass a policy, or
    give (``m``, ``n``) thresholds; defaults to pure top-down.

    ``bottom_up`` selects the kernel family for bottom-up levels
    (``"scan"`` or ``"tiles"``, mirroring :func:`~repro.bfs.hybrid.
    bfs_hybrid`); each level span is tagged with the family that
    executed it, so the explain report prices the right one.

    Pass a warm ``workspace`` to keep allocation out of the timed
    region (the frontier-bitmap load stays inside it — that is the
    paper's representation-conversion cost and belongs in the level
    time).

    Timing always happens: if neither ``tracer`` nor the process-global
    tracer is an enabled recorder, a private :class:`~repro.obs.Tracer`
    is used.  The per-level seconds are read back from the ``bfs.level``
    spans, so the returned run's totals equal the tracer's span sums.
    """
    nverts = graph.num_vertices
    if not 0 <= source < nverts:
        raise BFSError(f"source {source} out of range [0, {nverts})")
    if direction is not None and direction not in Direction.ALL:
        raise BFSError(f"unknown direction {direction!r}")
    if policy is None and m is not None and n is not None:
        policy = MNPolicy(m, n)
    if bottom_up not in BOTTOM_UP_KERNELS:
        raise BFSError(
            f"unknown bottom-up kernel family {bottom_up!r}; "
            f"expected one of {BOTTOM_UP_KERNELS}"
        )
    bu_step = bottom_up_step
    if bottom_up == "tiles":
        from repro.linalg.kernels import bottom_up_tiles_step

        bu_step = bottom_up_tiles_step
    tr = tracer if tracer is not None else get_tracer()
    if not tr.enabled:
        tr = Tracer()
    degrees = graph.degrees
    nedges = max(graph.num_edges, 1)

    ws = workspace if workspace is not None else BFSWorkspace(nverts)
    parent, level = ws.begin(source)
    frontier = np.array([source], dtype=np.int64)
    unvisited_count = nverts - 1

    timed: list[TimedLevel] = []
    directions: list[str] = []
    edges_examined: list[int] = []
    depth = 0
    with tr.span("bfs.timed", source=source, num_vertices=nverts) as root:
        while frontier.size:
            if direction is not None:
                chosen = direction
            elif policy is not None:
                chosen = policy.direction(
                    LevelState(
                        depth=depth,
                        frontier_vertices=int(frontier.size),
                        frontier_edges=int(degrees[frontier].sum()),
                        num_vertices=nverts,
                        num_edges=nedges,
                        unvisited_vertices=unvisited_count,
                    )
                )
                tr.instant(
                    "bfs.direction",
                    depth=depth,
                    direction=chosen,
                    frontier_vertices=int(frontier.size),
                )
            else:
                chosen = Direction.TOP_DOWN
            fv = int(frontier.size)
            kernel = "td" if chosen == Direction.TOP_DOWN else bottom_up
            with tr.span(
                "bfs.level", depth=depth, direction=chosen, kernel=kernel
            ) as sp:
                if chosen == Direction.TOP_DOWN:
                    frontier, work = top_down_step(
                        graph, frontier, parent, level, depth, ws
                    )
                else:
                    bits = ws.load_frontier(frontier)
                    unvisited = ws.unvisited_ids(graph, parent)
                    frontier, work = bu_step(
                        graph,
                        bits,
                        parent,
                        level,
                        depth,
                        unvisited=unvisited,
                        workspace=ws,
                    )
                ws.retire_claimed(parent)
                sp.set("frontier_vertices", fv)
                sp.set("edges_examined", work)
                sp.set("claimed", int(frontier.size))
            timed.append(
                TimedLevel(
                    level=depth,
                    direction=chosen,
                    frontier_vertices=fv,
                    edges_examined=work,
                    seconds=sp.duration,
                    kernel=kernel,
                )
            )
            directions.append(chosen)
            edges_examined.append(work)
            unvisited_count -= int(frontier.size)
            depth += 1
        root.set("levels", depth)
    tr.count("bfs.levels", depth)
    tr.count("bfs.edges_examined", sum(edges_examined))
    total = sum(lv.seconds for lv in timed)
    if total > 0:
        tr.observe("teps", sum(edges_examined) / total)
    result = BFSResult(
        source=source,
        parent=parent,
        level=level,
        directions=directions,
        edges_examined=edges_examined,
    )
    return TimedRun(result=result, levels=tuple(timed), tracer=tr)
