"""Wall-clock per-level timing of real traversals.

The paper's Fig. 3 and Table IV are per-level time measurements; this
module produces the same shape of data for the *actual NumPy kernels on
this machine*, so users can draw their own Fig. 3 without the
simulator.  Each level of a timed traversal records direction, work
counters and elapsed seconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.bfs.bottomup import bottom_up_step
from repro.bfs.hybrid import DirectionPolicy, LevelState, MNPolicy
from repro.bfs.result import BFSResult, Direction
from repro.bfs.topdown import top_down_step
from repro.bfs.workspace import BFSWorkspace
from repro.errors import BFSError
from repro.graph.csr import CSRGraph

__all__ = ["TimedLevel", "TimedRun", "timed_bfs"]


@dataclass(frozen=True)
class TimedLevel:
    """One level's wall-clock record."""

    level: int
    direction: str
    frontier_vertices: int
    edges_examined: int
    seconds: float


@dataclass(frozen=True)
class TimedRun:
    """A traversal with per-level wall-clock timings."""

    result: BFSResult
    levels: tuple[TimedLevel, ...]

    @property
    def total_seconds(self) -> float:
        """Sum of per-level times (kernel time only, no setup)."""
        return float(sum(lv.seconds for lv in self.levels))

    def series(self) -> dict[str, list]:
        """Column-oriented view for plotting (the Fig. 3 axes)."""
        return {
            "level": [lv.level + 1 for lv in self.levels],
            "direction": [lv.direction for lv in self.levels],
            "seconds": [lv.seconds for lv in self.levels],
            "edges_examined": [lv.edges_examined for lv in self.levels],
        }


def timed_bfs(
    graph: CSRGraph,
    source: int,
    policy: DirectionPolicy | None = None,
    *,
    m: float | None = None,
    n: float | None = None,
    direction: str | None = None,
    workspace: BFSWorkspace | None = None,
) -> TimedRun:
    """Traverse with per-level wall-clock measurement.

    Either force a ``direction`` (``'td'``/``'bu'``), pass a policy, or
    give (``m``, ``n``) thresholds; defaults to pure top-down.

    Pass a warm ``workspace`` to keep allocation out of the timed
    region (the frontier-bitmap load stays inside it — that is the
    paper's representation-conversion cost and belongs in the level
    time).
    """
    nverts = graph.num_vertices
    if not 0 <= source < nverts:
        raise BFSError(f"source {source} out of range [0, {nverts})")
    if direction is not None and direction not in Direction.ALL:
        raise BFSError(f"unknown direction {direction!r}")
    if policy is None and m is not None and n is not None:
        policy = MNPolicy(m, n)
    degrees = graph.degrees
    nedges = max(graph.num_edges, 1)

    ws = workspace if workspace is not None else BFSWorkspace(nverts)
    parent, level = ws.begin(source)
    frontier = np.array([source], dtype=np.int64)
    unvisited_count = nverts - 1

    timed: list[TimedLevel] = []
    directions: list[str] = []
    edges_examined: list[int] = []
    depth = 0
    while frontier.size:
        if direction is not None:
            chosen = direction
        elif policy is not None:
            chosen = policy.direction(
                LevelState(
                    depth=depth,
                    frontier_vertices=int(frontier.size),
                    frontier_edges=int(degrees[frontier].sum()),
                    num_vertices=nverts,
                    num_edges=nedges,
                    unvisited_vertices=unvisited_count,
                )
            )
        else:
            chosen = Direction.TOP_DOWN
        fv = int(frontier.size)
        t0 = time.perf_counter()
        if chosen == Direction.TOP_DOWN:
            frontier, work = top_down_step(
                graph, frontier, parent, level, depth, ws
            )
        else:
            bits = ws.load_frontier(frontier)
            unvisited = ws.unvisited_ids(graph, parent)
            frontier, work = bottom_up_step(
                graph,
                bits,
                parent,
                level,
                depth,
                unvisited=unvisited,
                workspace=ws,
            )
        ws.retire_claimed(parent)
        elapsed = time.perf_counter() - t0
        timed.append(
            TimedLevel(
                level=depth,
                direction=chosen,
                frontier_vertices=fv,
                edges_examined=work,
                seconds=elapsed,
            )
        )
        directions.append(chosen)
        edges_examined.append(work)
        unvisited_count -= int(frontier.size)
        depth += 1
    result = BFSResult(
        source=source,
        parent=parent,
        level=level,
        directions=directions,
        edges_examined=edges_examined,
    )
    return TimedRun(result=result, levels=tuple(timed))
