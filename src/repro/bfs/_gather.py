"""Vectorized CSR row expansion shared by the BFS kernels.

The core primitive: given a set of vertices, produce the concatenation
of their adjacency lists plus segment bookkeeping, without a Python
loop.  This replaces the reference code's ``for u in CQ: for v in
adj(u)`` nest with two gathers and a ``repeat`` (the "vectorizing for
loops" idiom of the hpc guides).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["expand_rows", "segment_first_true"]


def expand_rows(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate the adjacency lists of ``vertices``.

    Returns ``(neighbours, owners, seg_starts)`` where ``neighbours`` is
    the concatenated targets, ``owners[i]`` is the vertex whose list
    contributed ``neighbours[i]``, and ``seg_starts`` gives each
    vertex's first position in the concatenation (length
    ``len(vertices) + 1`` cumulative form).
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    starts = graph.offsets[vertices]
    counts = graph.offsets[vertices + 1] - starts
    total = int(counts.sum())
    seg_starts = np.zeros(vertices.size + 1, dtype=np.int64)
    np.cumsum(counts, out=seg_starts[1:])
    if total == 0:
        return (
            np.zeros(0, dtype=np.int32),
            np.zeros(0, dtype=np.int64),
            seg_starts,
        )
    # Global gather positions: for each segment k, starts[k] + (0..counts[k]).
    pos = np.arange(total, dtype=np.int64)
    pos -= np.repeat(seg_starts[:-1], counts)
    pos += np.repeat(starts, counts)
    neighbours = graph.targets[pos]
    owners = np.repeat(vertices, counts)
    return neighbours, owners, seg_starts


def segment_first_true(
    flags: np.ndarray, seg_starts: np.ndarray
) -> np.ndarray:
    """Position of the first True within each segment, or ``-1``.

    ``flags`` is a boolean array partitioned into segments by the
    cumulative ``seg_starts`` (length ``num_segments + 1``).  Returns
    global positions into ``flags``.  This implements bottom-up's
    "stop at the first parent found" early termination, vectorized.
    """
    nseg = seg_starts.size - 1
    out = np.full(nseg, -1, dtype=np.int64)
    if flags.size == 0 or nseg == 0:
        return out
    # Sentinel trick: positions where flag holds, +inf elsewhere, then a
    # segmented min via minimum.reduceat.  reduceat cannot handle empty
    # segments at the end, so guard indices.
    big = np.int64(flags.size)
    pos = np.where(flags, np.arange(flags.size, dtype=np.int64), big)
    nonempty = seg_starts[:-1] < seg_starts[1:]
    if not nonempty.any():
        return out
    red_idx = seg_starts[:-1][nonempty]
    mins = np.minimum.reduceat(pos, red_idx)
    res = np.where(mins < big, mins, -1)
    out[nonempty] = res
    return out
