"""Vectorized CSR row expansion shared by the BFS kernels.

The core primitive: given a set of vertices, produce the concatenation
of their adjacency lists plus segment bookkeeping, without a Python
loop.  This replaces the reference code's ``for u in CQ: for v in
adj(u)`` nest with two gathers and a ``repeat`` (the "vectorizing for
loops" idiom of the hpc guides).

The position computation is a single ``repeat`` of per-segment deltas
plus one add of a cached iota — one pass fewer than the classic
``arange - repeat(seg) + repeat(starts)`` formulation — and every
function takes an optional :class:`~repro.bfs.workspace.BFSWorkspace`
so the iota comes from the grow-only cache instead of a fresh
``np.arange`` per level.

Dtype audit (deep lint rule ``RPR010``): every position/offset
quantity here — ``starts``, ``counts``, ``seg_starts``, ``pos``, the
iota — is int64, because they index the edge array (up to |E| > 2^31).
Only the gathered ``neighbours`` keep ``graph.targets``' int32, and
those are vertex *ids* (bounded by |V|), used as index values and
never in edge-offset arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["expand_rows", "gather_segments", "segment_first_true"]


def _iota(k: int, workspace=None) -> np.ndarray:
    """``arange(k)`` from the workspace cache, or freshly allocated."""
    if workspace is not None:
        return workspace.iota(k)
    return np.arange(k, dtype=np.int64)  # repro: noqa[RPR007] — cold path


def gather_segments(
    targets: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    seg_starts: np.ndarray,
    total: int,
    workspace=None,
) -> np.ndarray:
    """Gather ``targets[starts[i] + j]`` for ``j < counts[i]``, concatenated.

    ``seg_starts`` must be the cumulative form of ``counts`` (length
    ``len(counts) + 1``) and ``total == seg_starts[-1]``.  Returns an
    array of ``targets.dtype``.  This is the shared inner gather of
    :func:`expand_rows` and the windowed bottom-up scan, which passes
    clipped per-row windows instead of whole adjacency lists.
    """
    if total == 0:
        return np.zeros(0, dtype=targets.dtype)
    pos = np.repeat(starts - seg_starts[:-1], counts)
    pos += _iota(total, workspace)
    return targets[pos]


def expand_rows(
    graph: CSRGraph, vertices: np.ndarray, workspace=None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate the adjacency lists of ``vertices``.

    Returns ``(neighbours, owners, seg_starts)`` where ``neighbours``
    is the concatenated targets (always ``graph.targets.dtype``, empty
    or not), ``owners[i]`` is the vertex whose list contributed
    ``neighbours[i]``, and ``seg_starts`` gives each vertex's first
    position in the concatenation (length ``len(vertices) + 1``
    cumulative form).
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    starts = graph.offsets[vertices]
    counts = graph.offsets[vertices + 1] - starts
    seg_starts = np.zeros(vertices.size + 1, dtype=np.int64)  # repro: noqa[RPR007] — O(frontier) bookkeeping, not O(V)
    np.cumsum(counts, out=seg_starts[1:])
    total = int(seg_starts[-1])
    neighbours = gather_segments(
        graph.targets, starts, counts, seg_starts, total, workspace
    )
    owners = np.repeat(vertices, counts)
    return neighbours, owners, seg_starts


def segment_first_true(
    flags: np.ndarray, seg_starts: np.ndarray, workspace=None
) -> np.ndarray:
    """Position of the first True within each segment, or ``-1``.

    ``flags`` is a boolean array partitioned into segments by the
    cumulative ``seg_starts`` (length ``num_segments + 1``).  Returns
    global positions into ``flags``.  This implements bottom-up's
    "stop at the first parent found" early termination, vectorized.
    """
    nseg = seg_starts.size - 1
    out = np.full(nseg, -1, dtype=np.int64)  # repro: noqa[RPR007] — O(segments) output, not O(V)
    if flags.size == 0 or nseg == 0:
        return out
    # Sentinel trick: positions where flag holds, +inf elsewhere, then a
    # segmented min via minimum.reduceat.  reduceat cannot handle empty
    # segments at the end, so guard indices.
    big = np.int64(flags.size)
    pos = np.where(flags, _iota(flags.size, workspace), big)
    nonempty = seg_starts[:-1] < seg_starts[1:]
    if not nonempty.any():
        return out
    red_idx = seg_starts[:-1][nonempty]
    mins = np.minimum.reduceat(pos, red_idx)
    res = np.where(mins < big, mins, -1)
    out[nonempty] = res
    return out
