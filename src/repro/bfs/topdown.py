"""Vectorized top-down BFS (the paper's Algorithm 1).

Each level expands the adjacency lists of the current queue in one
gather, filters already-visited candidates against the parent map, and
claims each newly discovered vertex for exactly one parent.  The claim
step uses a stable first-writer rule so the produced tree matches what
the sequential reference computes level by level.

The per-level work is exactly ``|E|cq`` adjacency inspections — the
quantity the paper's switching rule compares against ``|E| / M``.
"""

from __future__ import annotations

import numpy as np

from repro.bfs._gather import expand_rows
from repro.bfs.result import BFSResult, Direction
from repro.errors import BFSError
from repro.graph.csr import CSRGraph

__all__ = ["bfs_top_down", "top_down_step"]


def top_down_step(
    graph: CSRGraph,
    frontier: np.ndarray,
    parent: np.ndarray,
    level: np.ndarray,
    depth: int,
) -> tuple[np.ndarray, int]:
    """Execute one top-down level.

    Mutates ``parent``/``level`` in place for newly discovered vertices
    and returns ``(next_frontier, edges_examined)``.

    ``frontier`` must be sorted ascending for the first-writer rule to
    be deterministic (queue order = ascending vertex id within a level,
    which is how the vectorized frontier is always produced).
    """
    neighbours, owners, _ = expand_rows(graph, frontier)
    edges_examined = int(neighbours.size)
    if edges_examined == 0:
        return np.zeros(0, dtype=np.int64), 0
    fresh = parent[neighbours] < 0
    cand = neighbours[fresh].astype(np.int64)
    cand_parent = owners[fresh]
    if cand.size == 0:
        return np.zeros(0, dtype=np.int64), edges_examined
    # One winner per discovered vertex: first occurrence in queue order.
    # expand_rows emits candidates in frontier order, so a stable unique
    # (first index per value) reproduces the sequential claim order.
    next_frontier, first_idx = np.unique(cand, return_index=True)
    parent[next_frontier] = cand_parent[first_idx]
    level[next_frontier] = depth + 1
    return next_frontier, edges_examined


def bfs_top_down(
    graph: CSRGraph, source: int, *, sanitize: bool = False
) -> BFSResult:
    """Full top-down traversal from ``source``.

    With ``sanitize=True`` the traversal runs under
    :class:`repro.analysis.sanitizer.Sanitizer`: the CSR arrays are
    frozen for the duration and per-level invariants are checked,
    raising :class:`~repro.errors.SanitizerError` on corruption.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise BFSError(f"source {source} out of range [0, {n})")
    san = None
    if sanitize:
        from repro.analysis.sanitizer import Sanitizer

        san = Sanitizer(graph, source)
    parent = np.full(n, -1, dtype=np.int64)
    level = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    level[source] = 0
    frontier = np.array([source], dtype=np.int64)
    directions: list[str] = []
    edges_examined: list[int] = []
    depth = 0
    try:
        if san is not None:
            san.__enter__()
        while frontier.size:
            next_frontier, examined = top_down_step(
                graph, frontier, parent, level, depth
            )
            if san is not None:
                san.after_level(depth, frontier, next_frontier, parent, level)
            frontier = next_frontier
            directions.append(Direction.TOP_DOWN)
            edges_examined.append(examined)
            depth += 1
        if san is not None:
            san.finish(parent, level)
    finally:
        if san is not None:
            san.__exit__()
    return BFSResult(
        source=source,
        parent=parent,
        level=level,
        directions=directions,
        edges_examined=edges_examined,
    )
