"""Vectorized top-down BFS (the paper's Algorithm 1).

Each level expands the adjacency lists of the current queue in one
gather, filters already-visited candidates against the parent map, and
claims each newly discovered vertex for exactly one parent.  The claim
step uses a stable first-writer rule so the produced tree matches what
the sequential reference computes level by level.

The claim is O(k) in the candidate count: candidates are scattered into
a per-vertex slot array in *reverse* order (fancy assignment applies
writes in index order, so the last write — the first occurrence in
queue order — wins), and a candidate wins iff its own position survived
the scatter.  This replaces the historical sort-based ``np.unique``
claim; both produce bit-identical parent/level maps, the scatter just
skips the ``O(k log k)`` sort.

The per-level work is exactly ``|E|cq`` adjacency inspections — the
quantity the paper's switching rule compares against ``|E| / M``.
"""

from __future__ import annotations

import numpy as np

from repro.bfs._gather import expand_rows
from repro.bfs.result import BFSResult, Direction
from repro.bfs.workspace import BFSWorkspace
from repro.errors import BFSError
from repro.graph.csr import CSRGraph
from repro.obs.tracer import Tracer, get_tracer

__all__ = ["bfs_top_down", "top_down_step", "claim_first_writer"]


def claim_first_writer(
    cand: np.ndarray,
    cand_parent: np.ndarray,
    parent: np.ndarray,
    level: np.ndarray,
    depth: int,
    workspace: BFSWorkspace | None = None,
) -> np.ndarray:
    """Claim each distinct candidate for its first proposer, in O(k).

    ``cand`` holds newly discovered vertex ids in queue order (possibly
    with duplicates), ``cand_parent`` the proposing frontier vertex per
    candidate.  Mutates ``parent``/``level`` for the winners and returns
    the sorted ``int64`` next frontier.  Equivalent to the stable
    ``np.unique(cand, return_index=True)`` claim, without the sort of
    the full candidate set.
    """
    k = cand.size
    if workspace is not None:
        slot = workspace.claim_slots()
        order = workspace.iota(k)
    else:
        slot = np.empty(parent.size, dtype=np.int64)  # repro: noqa[RPR007] — cold path, no workspace supplied
        order = np.arange(k, dtype=np.int64)  # repro: noqa[RPR007] — cold path
    # Reverse scatter: after this, slot[v] is the position of v's FIRST
    # occurrence in cand.  Only slots at candidate positions are read
    # back, so the array needs no initialization.
    slot[cand[::-1]] = order[::-1]
    win = slot[cand] == order
    winners = cand[win]
    parent[winners] = cand_parent[win]
    next_frontier = np.sort(winners).astype(np.int64, copy=False)
    level[next_frontier] = depth + 1
    return next_frontier


def top_down_step(
    graph: CSRGraph,
    frontier: np.ndarray,
    parent: np.ndarray,
    level: np.ndarray,
    depth: int,
    workspace: BFSWorkspace | None = None,
) -> tuple[np.ndarray, int]:
    """Execute one top-down level.

    Mutates ``parent``/``level`` in place for newly discovered vertices
    and returns ``(next_frontier, edges_examined)``.

    ``frontier`` must be sorted ascending for the first-writer rule to
    be deterministic (queue order = ascending vertex id within a level,
    which is how the vectorized frontier is always produced).
    """
    neighbours, owners, _ = expand_rows(graph, frontier, workspace)
    edges_examined = int(neighbours.size)
    if edges_examined == 0:
        return np.zeros(0, dtype=np.int64), 0
    fresh = parent[neighbours] < 0
    cand = neighbours[fresh]
    cand_parent = owners[fresh]
    if cand.size == 0:
        return np.zeros(0, dtype=np.int64), edges_examined
    next_frontier = claim_first_writer(
        cand, cand_parent, parent, level, depth, workspace
    )
    return next_frontier, edges_examined


def bfs_top_down(
    graph: CSRGraph,
    source: int,
    *,
    sanitize: bool = False,
    workspace: BFSWorkspace | None = None,
    tracer: Tracer | None = None,
) -> BFSResult:
    """Full top-down traversal from ``source``.

    With ``sanitize=True`` the traversal runs under
    :class:`repro.analysis.sanitizer.Sanitizer`: the CSR arrays are
    frozen for the duration and per-level invariants are checked,
    raising :class:`~repro.errors.SanitizerError` on corruption.

    With an explicit ``workspace`` the returned result's parent/level
    maps alias the workspace arrays (call ``result.detach()`` to keep
    them past the next traversal); without one a private workspace is
    created and the result owns its arrays.

    ``tracer`` overrides the process-global tracer
    (:func:`repro.obs.get_tracer`): each level becomes a ``bfs.level``
    span under a ``bfs.topdown`` root and the traversal counters feed
    the tracer's metrics.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise BFSError(f"source {source} out of range [0, {n})")
    tr = tracer if tracer is not None else get_tracer()
    san = None
    if sanitize:
        from repro.analysis.sanitizer import Sanitizer

        san = Sanitizer(graph, source)
    ws = workspace if workspace is not None else BFSWorkspace(n)
    parent, level = ws.begin(source)
    frontier = np.array([source], dtype=np.int64)
    directions: list[str] = []
    edges_examined: list[int] = []
    depth = 0
    try:
        if san is not None:
            san.__enter__()
        with tr.span("bfs.topdown", source=source, num_vertices=n) as root:
            while frontier.size:
                with tr.span(
                    "bfs.level", depth=depth, direction=Direction.TOP_DOWN
                ) as sp:
                    next_frontier, examined = top_down_step(
                        graph, frontier, parent, level, depth, ws
                    )
                    sp.set("frontier_vertices", int(frontier.size))
                    sp.set("edges_examined", examined)
                    sp.set("claimed", int(next_frontier.size))
                if san is not None:
                    san.after_level(depth, frontier, next_frontier, parent, level)
                ws.retire_claimed(parent)
                frontier = next_frontier
                directions.append(Direction.TOP_DOWN)
                edges_examined.append(examined)
                depth += 1
            root.set("levels", depth)
        tr.count("bfs.levels", depth)
        tr.count("bfs.edges_examined", sum(edges_examined))
        if san is not None:
            san.finish(parent, level)
    finally:
        if san is not None:
            san.__exit__()
    return BFSResult(
        source=source,
        parent=parent,
        level=level,
        directions=directions,
        edges_examined=edges_examined,
    )
