"""Batched multi-source BFS.

Analytics workloads (the distance distributions of the social-network
example, centrality estimation, landmark routing) need BFS from many
roots.  Running them one at a time repeats the graph scan per root;
this module runs up to 64 roots *simultaneously* by packing per-root
visited state into one ``uint64`` word per vertex (the MS-BFS bit-
parallel technique), so each adjacency inspection advances every
search at once.

The per-level sweep is a vectorized word-OR propagation: a vertex's
next-visit mask is the union of its neighbours' current frontier masks,
minus what it has already seen — effectively running the bottom-up rule
for 64 searches per memory pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bfs._gather import expand_rows
from repro.bfs.workspace import BFSWorkspace
from repro.errors import BFSError
from repro.graph.csr import CSRGraph
from repro.obs.tracer import Tracer, get_tracer

__all__ = ["MSBFS_KERNELS", "MultiSourceResult", "msbfs"]

MAX_BATCH = 64


@dataclass(frozen=True)
class MultiSourceResult:
    """Distances from up to 64 sources.

    ``levels`` is ``(num_sources, num_vertices)`` with ``-1`` marking
    unreachable vertices.
    """

    sources: np.ndarray
    levels: np.ndarray

    @property
    def num_sources(self) -> int:
        """Batch width."""
        return int(self.sources.size)

    def distance(self, source_index: int, v: int) -> int:
        """Distance from ``sources[source_index]`` to ``v``."""
        return int(self.levels[source_index, v])

    def distance_histogram(self) -> np.ndarray:
        """Pooled histogram of finite distances across all sources."""
        finite = self.levels[self.levels >= 0]
        if finite.size == 0:
            return np.zeros(0, dtype=np.int64)
        return np.bincount(finite)

    def mean_distance(self) -> float:
        """Mean finite distance (excluding the zero self-distances)."""
        finite = self.levels[self.levels > 0]
        if finite.size == 0:
            raise BFSError("no reachable pairs beyond the sources")
        return float(finite.mean())


#: Recognized sweep kernels for :func:`msbfs`.
MSBFS_KERNELS = ("scatter", "tiles")


def msbfs(
    graph: CSRGraph,
    sources: np.ndarray,
    *,
    kernel: str = "scatter",
    workspace: BFSWorkspace | None = None,
    tracer: Tracer | None = None,
) -> MultiSourceResult:
    """Run BFS from every vertex in ``sources`` simultaneously.

    At most :data:`MAX_BATCH` sources per call (one bit each in the
    per-vertex state word).  Duplicate sources are allowed and produce
    identical rows.

    ``kernel`` selects the per-level sweep: ``"scatter"`` expands the
    active adjacency and ORs frontier masks into ``incoming`` with
    ``np.bitwise_or.at``; ``"tiles"`` runs the whole level as one
    masked bitmap-matrix SpMM over the graph's
    :class:`~repro.linalg.tiles.BitmapTileMatrix`
    (:func:`repro.linalg.kernels.msbfs_tiles_step`), which streams the
    stored words instead of scattering per edge.  Both kernels produce
    identical ``levels``.

    With a ``workspace`` the three per-vertex ``uint64`` state words
    come from its scratch buffers, so repeated batches on one graph
    allocate only the ``levels`` output.

    ``tracer`` overrides the process-global tracer: each bit-parallel
    sweep becomes a ``bfs.level`` span under a ``bfs.msbfs`` root.
    """
    sources = np.asarray(sources, dtype=np.int64).ravel()
    n = graph.num_vertices
    if kernel not in MSBFS_KERNELS:
        raise BFSError(
            f"unknown msbfs kernel {kernel!r}; expected one of "
            f"{MSBFS_KERNELS}"
        )
    if sources.size == 0:
        raise BFSError("msbfs needs at least one source")
    if sources.size > MAX_BATCH:
        raise BFSError(
            f"msbfs batch limited to {MAX_BATCH} sources, got {sources.size}"
        )
    if sources.min() < 0 or sources.max() >= n:
        raise BFSError("source out of range")
    tiles = None
    if kernel == "tiles":
        # Lazy import: repro.linalg builds on repro.bfs, so the reverse
        # dependency stays out of module scope.
        from repro.linalg.kernels import msbfs_tiles_step
        from repro.linalg.tiles import tile_matrix

        tiles = tile_matrix(graph)

    k = sources.size
    if workspace is not None:
        seen = workspace.buffer("ms-seen", n, np.uint64)
        frontier = workspace.buffer("ms-frontier", n, np.uint64)
        incoming = workspace.buffer("ms-incoming", n, np.uint64)
        seen.fill(0)
        frontier.fill(0)
    else:
        seen = np.zeros(n, dtype=np.uint64)     # bit b: visited by search b
        frontier = np.zeros(n, dtype=np.uint64)  # bit b: in search b's frontier
        incoming = np.empty(n, dtype=np.uint64)
    levels = np.full((k, n), -1, dtype=np.int64)
    for b, src in enumerate(sources):
        bit = np.uint64(1) << np.uint64(b)
        seen[src] |= bit
        frontier[src] |= bit
        levels[b, src] = 0

    tr = tracer if tracer is not None else get_tracer()
    depth = 0
    words_streamed = 0
    active = np.nonzero(frontier)[0]
    with tr.span(
        "bfs.msbfs", batch=k, num_vertices=n, kernel=kernel
    ) as root:
        while active.size:
            with tr.span("bfs.level", depth=depth) as sp:
                # Propagate frontier masks over the adjacency of the
                # frontier: scatter over the active rows' edges, or one
                # tile-SpMM pass over the stored words.
                if tiles is not None:
                    # `seen` lets the kernel drop rows every search has
                    # already visited — their fresh mask is 0 anyway.
                    words_streamed += msbfs_tiles_step(
                        tiles,
                        frontier,
                        incoming,
                        row_mask=seen,
                        workspace=workspace,
                    )
                    examined = tiles.num_entries
                else:
                    neighbours, owners, _ = expand_rows(
                        graph, active, workspace
                    )
                    incoming.fill(0)
                    np.bitwise_or.at(incoming, neighbours, frontier[owners])
                    examined = neighbours.size
                # fresh = incoming & ~seen, written into the frontier
                # buffer (its old masks were consumed by the gather
                # above).
                np.bitwise_not(seen, out=frontier)
                np.bitwise_and(incoming, frontier, out=frontier)
                fresh = frontier
                np.bitwise_or(seen, fresh, out=seen)
                depth += 1
                newly = np.nonzero(fresh)[0]
                if newly.size:
                    # Record the level for each (search, vertex) pair
                    # discovered.
                    masks = fresh[newly]
                    for b in range(k):
                        bit = np.uint64(1) << np.uint64(b)
                        hit = (masks & bit).astype(bool)
                        levels[b, newly[hit]] = depth
                sp.set("active_vertices", int(active.size))
                sp.set("edges_examined", int(examined))
                sp.set("claimed", int(newly.size))
            active = newly
        root.set("levels", depth)
    tr.count("bfs.levels", depth)
    if tiles is not None:
        tr.count("linalg.tile_passes", depth)
        tr.count("linalg.tile_words", words_streamed)
    return MultiSourceResult(sources=sources.copy(), levels=levels)
