"""Vectorized bottom-up BFS (the paper's Algorithm 2, Beamer's kernel).

Each unvisited vertex scans its own adjacency list for *any* member of
the current queue and, on the first hit, claims that neighbour as its
parent and stops.  The vectorized kernel tests adjacency entries
against a packed frontier bitmap (or a dense boolean mask) and locates
the first hit per vertex with a segmented min, so the number of entries
*inspected* (with early termination) is computed exactly — matching
what a scalar implementation would touch.

The scan is two-phase to exploit the early exit the paper's Algorithm 2
relies on: in dense mid-traversal levels most unvisited vertices find a
parent within their first few neighbours, so phase one gathers only a
small fixed *window* of each adjacency list (``window`` entries), and
only the rows with no hit there get a second full-tail pass.  Winners,
parents and inspected counts are bit-identical to a whole-row scan —
the first hit in the earliest window is the first hit in the row.

Two work figures matter and both are reported:

* ``edges_checked`` — entries inspected with early termination (the
  paper's observation that bottom-up visits at most ``|E|un`` edges);
* the gather itself momentarily touches the windowed entries, which is
  a NumPy artifact; chunking (``chunk_entries``) bounds that footprint.
"""

from __future__ import annotations

import numpy as np

from repro.bfs._gather import _iota, gather_segments
from repro.bfs.result import BFSResult, Direction
from repro.bfs.workspace import BFSWorkspace
from repro.errors import BFSError
from repro.graph.bitmap import Bitmap
from repro.graph.csr import CSRGraph
from repro.obs.tracer import Tracer, get_tracer

__all__ = ["bfs_bottom_up", "bottom_up_step"]

#: Default cap on adjacency entries materialized per chunk (~256 MB of
#: int32 ids); keeps the vectorized gather inside cache-friendly bounds.
DEFAULT_CHUNK_ENTRIES = 1 << 26

#: Entries of each adjacency list gathered in the first scan phase.
#: Mid-traversal levels resolve the vast majority of rows within the
#: first handful of neighbours (the early exit the paper leans on), so
#: a small window keeps the phase-one gather near the *inspected* count
#: rather than the full unvisited degree sum.
DEFAULT_SCAN_WINDOW = 4


def _frontier_hits(in_frontier, neighbours: np.ndarray) -> np.ndarray:
    """Membership test of ``neighbours`` against the current queue.

    Accepts either a packed :class:`~repro.graph.bitmap.Bitmap` (the
    workspace path; unchecked byte probe) or a dense boolean mask.
    """
    if isinstance(in_frontier, Bitmap):
        return in_frontier.test_many(neighbours, checked=False)
    return in_frontier[neighbours]


def _cumsum0(
    counts: np.ndarray, workspace: BFSWorkspace | None, name: str
) -> np.ndarray:
    """Cumulative segment starts ``[0, c0, c0+c1, ...]`` of ``counts``."""
    if workspace is not None:
        seg = workspace.buffer(name, counts.size + 1, np.int64)
    else:
        seg = np.empty(counts.size + 1, dtype=np.int64)  # repro: noqa[RPR007] — cold path, O(rows) bookkeeping
    seg[0] = 0
    np.cumsum(counts, out=seg[1:])
    return seg


def _row_scan(
    graph: CSRGraph,
    rows: np.ndarray,
    deg: np.ndarray,
    starts: np.ndarray,
    in_frontier,
    *,
    window: int,
    workspace: BFSWorkspace | None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Scan each row's adjacency list for its first frontier member.

    Returns ``(found, first_local, inspected)`` where ``found[i]`` says
    whether row ``i`` has a frontier neighbour, ``first_local[i]`` is
    the within-row position of the first one (undefined where not
    found), and ``inspected`` is the exact early-termination entry
    count.  Every row must have ``deg > 0``.
    """
    targets = graph.targets
    # Phase 1: probe only the first `window` entries of each row.
    c1 = np.minimum(deg, window)
    seg1 = _cumsum0(c1, workspace, "bu-seg1")
    k1 = int(seg1[-1])
    nbr1 = gather_segments(targets, starts, c1, seg1, k1, workspace)
    hits1 = _frontier_hits(in_frontier, nbr1)
    big = np.int64(k1)
    mins = np.minimum.reduceat(
        np.where(hits1, _iota(k1, workspace), big), seg1[:-1]
    )
    found = mins < big
    first_local = mins - seg1[:-1]
    inspected = int(np.where(found, first_local + 1, c1).sum())
    # Phase 2: rows with no hit in the window scan their remaining tail.
    surv = np.flatnonzero(~found & (deg > window))
    if surv.size:
        sdeg = deg[surv] - window
        sstarts = starts[surv] + window
        seg2 = _cumsum0(sdeg, workspace, "bu-seg2")
        k2 = int(seg2[-1])
        nbr2 = gather_segments(targets, sstarts, sdeg, seg2, k2, workspace)
        hits2 = _frontier_hits(in_frontier, nbr2)
        big2 = np.int64(k2)
        mins2 = np.minimum.reduceat(
            np.where(hits2, _iota(k2, workspace), big2), seg2[:-1]
        )
        found2 = mins2 < big2
        fl2 = mins2 - seg2[:-1] + window
        found[surv] = found2
        first_local[surv] = np.where(found2, fl2, -1)
        inspected += int(np.where(found2, fl2 + 1 - window, sdeg).sum())
    return found, first_local, inspected


def bottom_up_step(
    graph: CSRGraph,
    in_frontier,
    parent: np.ndarray,
    level: np.ndarray,
    depth: int,
    *,
    unvisited: np.ndarray | None = None,
    chunk_entries: int = DEFAULT_CHUNK_ENTRIES,
    workspace: BFSWorkspace | None = None,
    window: int = DEFAULT_SCAN_WINDOW,
) -> tuple[np.ndarray, int]:
    """Execute one bottom-up level.

    Parameters
    ----------
    in_frontier:
        The current queue as a packed
        :class:`~repro.graph.bitmap.Bitmap` or a dense boolean mask.
    unvisited:
        Optional precomputed ascending array of unvisited vertex ids.
        The kernel *trusts* this list — entries whose ``parent`` is
        already set must have been retired by the caller (see
        :meth:`BFSWorkspace.retire_claimed`).  Zero-degree entries are
        filtered here (they can never be claimed bottom-up and
        contribute no inspected edges).  Computed from ``parent`` when
        omitted.

    Returns ``(next_frontier_ids, edges_checked)`` and mutates
    ``parent``/``level`` in place.
    """
    if window <= 0:
        raise BFSError(f"window must be positive, got {window}")
    if unvisited is None:
        unvisited = np.nonzero(parent < 0)[0]  # repro: noqa[RPR007] — cold path, no unvisited list supplied
    if unvisited.size == 0:
        return np.zeros(0, dtype=np.int64), 0

    deg_all = graph.degrees[unvisited]
    nz = deg_all > 0
    if not nz.all():
        unvisited = unvisited[nz]
        deg_all = deg_all[nz]
        if unvisited.size == 0:
            return np.zeros(0, dtype=np.int64), 0
    starts_all = graph.offsets[unvisited]

    claimed_chunks: list[np.ndarray] = []
    edges_checked = 0
    targets = graph.targets
    bounds = _chunk_bounds(deg_all, chunk_entries)
    for lo, hi in bounds:
        rows = unvisited[lo:hi]
        found, first_local, inspected = _row_scan(
            graph,
            rows,
            deg_all[lo:hi],
            starts_all[lo:hi],
            in_frontier,
            window=window,
            workspace=workspace,
        )
        edges_checked += inspected
        if found.any():
            winners = rows[found]
            parent[winners] = targets[
                (starts_all[lo:hi] + first_local)[found]
            ]
            level[winners] = depth + 1
            claimed_chunks.append(winners)
    if len(claimed_chunks) == 1:
        next_frontier = claimed_chunks[0]
    elif claimed_chunks:
        next_frontier = np.concatenate(claimed_chunks)
    else:
        next_frontier = np.zeros(0, dtype=np.int64)
    # `unvisited` is ascending, so winners per chunk and their
    # concatenation are ascending too — no sort needed downstream.
    return next_frontier, edges_checked


def _chunk_bounds(
    degrees: np.ndarray, chunk_entries: int
) -> list[tuple[int, int]]:
    """Split vertex positions into runs of at most ``chunk_entries``
    total degree (each run non-empty)."""
    if degrees.size == 0:
        return []
    if chunk_entries <= 0:
        raise BFSError(f"chunk_entries must be positive, got {chunk_entries}")
    total = int(degrees.sum())
    if total <= chunk_entries:
        return [(0, degrees.size)]
    cum = np.cumsum(degrees)
    bounds: list[tuple[int, int]] = []
    lo = 0
    base = 0
    while lo < degrees.size:
        hi = int(np.searchsorted(cum, base + chunk_entries, side="right"))
        hi = max(hi, lo + 1)  # always advance, even past a giant vertex
        hi = min(hi, degrees.size)
        bounds.append((lo, hi))
        base = int(cum[hi - 1])
        lo = hi
    return bounds


def bfs_bottom_up(
    graph: CSRGraph,
    source: int,
    *,
    chunk_entries: int = DEFAULT_CHUNK_ENTRIES,
    sanitize: bool = False,
    workspace: BFSWorkspace | None = None,
    tracer: Tracer | None = None,
) -> BFSResult:
    """Full bottom-up traversal from ``source``.

    Rarely the right whole-traversal choice (the paper's Fig. 3: slow
    start, fast middle) but exposed for the baseline measurements.

    With ``sanitize=True`` the traversal runs under
    :class:`repro.analysis.sanitizer.Sanitizer` (frozen CSR arrays,
    per-level invariant checks, queue/bitmap agreement).  With an
    explicit ``workspace`` the result's parent/level maps alias the
    workspace arrays (``result.detach()`` copies them out).

    ``tracer`` overrides the process-global tracer: levels become
    ``bfs.level`` spans under a ``bfs.bottomup`` root.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise BFSError(f"source {source} out of range [0, {n})")
    tr = tracer if tracer is not None else get_tracer()
    san = None
    if sanitize:
        from repro.analysis.sanitizer import Sanitizer

        san = Sanitizer(graph, source)
    ws = workspace if workspace is not None else BFSWorkspace(n)
    parent, level = ws.begin(source)
    frontier = np.array([source], dtype=np.int64)
    directions: list[str] = []
    edges_examined: list[int] = []
    depth = 0
    try:
        if san is not None:
            san.__enter__()
        with tr.span("bfs.bottomup", source=source, num_vertices=n) as root:
            while frontier.size:
                with tr.span(
                    "bfs.level", depth=depth, direction=Direction.BOTTOM_UP
                ) as sp:
                    bits = ws.load_frontier(frontier)
                    unvisited = ws.unvisited_ids(graph, parent)
                    next_frontier, checked = bottom_up_step(
                        graph,
                        bits,
                        parent,
                        level,
                        depth,
                        unvisited=unvisited,
                        chunk_entries=chunk_entries,
                        workspace=ws,
                    )
                    sp.set("frontier_vertices", int(frontier.size))
                    sp.set("edges_examined", checked)
                    sp.set("claimed", int(next_frontier.size))
                if san is not None:
                    san.after_level(
                        depth,
                        frontier,
                        next_frontier,
                        parent,
                        level,
                        in_frontier=bits,
                    )
                ws.retire_claimed(parent)
                directions.append(Direction.BOTTOM_UP)
                edges_examined.append(checked)
                frontier = next_frontier
                depth += 1
            root.set("levels", depth)
        tr.count("bfs.levels", depth)
        tr.count("bfs.edges_examined", sum(edges_examined))
        if san is not None:
            san.finish(parent, level)
    finally:
        if san is not None:
            san.__exit__()
    return BFSResult(
        source=source,
        parent=parent,
        level=level,
        directions=directions,
        edges_examined=edges_examined,
    )
