"""Vectorized bottom-up BFS (the paper's Algorithm 2, Beamer's kernel).

Each unvisited vertex scans its own adjacency list for *any* member of
the current queue and, on the first hit, claims that neighbour as its
parent and stops.  The vectorized kernel expands the adjacency lists of
all unvisited vertices, tests membership against a dense frontier
bitmap, and locates the first hit per vertex with a segmented min — so
the number of adjacency entries *inspected* (with early termination) is
computed exactly, matching what a scalar implementation would touch.

Two work figures matter and both are reported:

* ``edges_checked`` — entries inspected with early termination (the
  paper's observation that bottom-up visits at most ``|E|un`` edges);
* the gather itself momentarily touches every unvisited entry, which is
  a NumPy artifact; chunking (``chunk_size``) bounds that footprint.
"""

from __future__ import annotations

import numpy as np

from repro.bfs._gather import expand_rows, segment_first_true
from repro.bfs.result import BFSResult, Direction
from repro.errors import BFSError
from repro.graph.csr import CSRGraph

__all__ = ["bfs_bottom_up", "bottom_up_step"]

#: Default cap on adjacency entries materialized per chunk (~256 MB of
#: int32 ids); keeps the vectorized gather inside cache-friendly bounds.
DEFAULT_CHUNK_ENTRIES = 1 << 26


def bottom_up_step(
    graph: CSRGraph,
    in_frontier: np.ndarray,
    parent: np.ndarray,
    level: np.ndarray,
    depth: int,
    *,
    unvisited: np.ndarray | None = None,
    chunk_entries: int = DEFAULT_CHUNK_ENTRIES,
) -> tuple[np.ndarray, int]:
    """Execute one bottom-up level.

    Parameters
    ----------
    in_frontier:
        Dense boolean mask of the current queue (the bitmap of the real
        implementations).
    unvisited:
        Optional precomputed array of unvisited vertex ids (``parent <
        0``); computed from ``parent`` when omitted.

    Returns ``(next_frontier_ids, edges_checked)`` and mutates
    ``parent``/``level`` in place.
    """
    if unvisited is None:
        unvisited = np.nonzero(parent < 0)[0].astype(np.int64)
    if unvisited.size == 0:
        return np.zeros(0, dtype=np.int64), 0

    claimed_chunks: list[np.ndarray] = []
    edges_checked = 0
    degrees = graph.offsets[unvisited + 1] - graph.offsets[unvisited]
    # Chunk boundaries so each gather stays under chunk_entries entries.
    bounds = _chunk_bounds(degrees, chunk_entries)
    for lo, hi in bounds:
        chunk = unvisited[lo:hi]
        neighbours, _, seg_starts = expand_rows(graph, chunk)
        if neighbours.size == 0:
            continue
        hits = in_frontier[neighbours]
        first = segment_first_true(hits, seg_starts)
        found = first >= 0
        # Early-termination accounting: a vertex that finds a parent at
        # within-segment position p inspected p + 1 entries; one that
        # fails inspected its whole list.
        seg_lo = seg_starts[:-1]
        seg_len = np.diff(seg_starts)
        inspected = np.where(found, first - seg_lo + 1, seg_len)
        edges_checked += int(inspected.sum())
        if found.any():
            winners = chunk[found]
            parent[winners] = neighbours[first[found]]
            level[winners] = depth + 1
            claimed_chunks.append(winners)
    if claimed_chunks:
        next_frontier = np.concatenate(claimed_chunks)
    else:
        next_frontier = np.zeros(0, dtype=np.int64)
    return next_frontier, edges_checked


def _chunk_bounds(
    degrees: np.ndarray, chunk_entries: int
) -> list[tuple[int, int]]:
    """Split vertex positions into runs of at most ``chunk_entries``
    total degree (each run non-empty)."""
    if degrees.size == 0:
        return []
    if chunk_entries <= 0:
        raise BFSError(f"chunk_entries must be positive, got {chunk_entries}")
    cum = np.cumsum(degrees)
    bounds: list[tuple[int, int]] = []
    lo = 0
    base = 0
    while lo < degrees.size:
        hi = int(np.searchsorted(cum, base + chunk_entries, side="right"))
        hi = max(hi, lo + 1)  # always advance, even past a giant vertex
        hi = min(hi, degrees.size)
        bounds.append((lo, hi))
        base = int(cum[hi - 1])
        lo = hi
    return bounds


def bfs_bottom_up(
    graph: CSRGraph,
    source: int,
    *,
    chunk_entries: int = DEFAULT_CHUNK_ENTRIES,
    sanitize: bool = False,
) -> BFSResult:
    """Full bottom-up traversal from ``source``.

    Rarely the right whole-traversal choice (the paper's Fig. 3: slow
    start, fast middle) but exposed for the baseline measurements.

    With ``sanitize=True`` the traversal runs under
    :class:`repro.analysis.sanitizer.Sanitizer` (frozen CSR arrays,
    per-level invariant checks, queue/bitmap agreement).
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise BFSError(f"source {source} out of range [0, {n})")
    san = None
    if sanitize:
        from repro.analysis.sanitizer import Sanitizer

        san = Sanitizer(graph, source)
    parent = np.full(n, -1, dtype=np.int64)
    level = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    level[source] = 0
    in_frontier = np.zeros(n, dtype=bool)
    in_frontier[source] = True
    frontier = np.array([source], dtype=np.int64)
    directions: list[str] = []
    edges_examined: list[int] = []
    depth = 0
    try:
        if san is not None:
            san.__enter__()
        while frontier.size:
            next_frontier, checked = bottom_up_step(
                graph,
                in_frontier,
                parent,
                level,
                depth,
                chunk_entries=chunk_entries,
            )
            if san is not None:
                san.after_level(
                    depth,
                    frontier,
                    next_frontier,
                    parent,
                    level,
                    in_frontier=in_frontier,
                )
            directions.append(Direction.BOTTOM_UP)
            edges_examined.append(checked)
            in_frontier.fill(False)
            in_frontier[next_frontier] = True
            frontier = next_frontier
            depth += 1
        if san is not None:
            san.finish(parent, level)
    finally:
        if san is not None:
            san.__exit__()
    return BFSResult(
        source=source,
        parent=parent,
        level=level,
        directions=directions,
        edges_examined=edges_examined,
    )
