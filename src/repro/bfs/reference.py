"""Pure-Python reference BFS.

A deliberately simple deque-based implementation of the paper's
Algorithm 1, used as ground truth in tests (differential testing of the
vectorized kernels) and as the stand-in for the Graph 500 reference
code in the Section V-D comparison experiments.  It is the only module
allowed a per-edge Python loop.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.bfs.result import BFSResult, Direction
from repro.errors import BFSError
from repro.graph.csr import CSRGraph

__all__ = ["bfs_reference"]


def bfs_reference(graph: CSRGraph, source: int) -> BFSResult:
    """Level-synchronous top-down BFS, scalar Python.

    Parents are the first-discovering neighbour in queue order, matching
    the classical algorithm exactly; levels are canonical BFS distances.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise BFSError(f"source {source} out of range [0, {n})")
    parent = np.full(n, -1, dtype=np.int64)
    level = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    level[source] = 0

    offsets = graph.offsets
    targets = graph.targets
    cq: deque[int] = deque([source])
    directions: list[str] = []
    edges_examined: list[int] = []
    depth = 0
    while cq:
        nq: deque[int] = deque()
        examined = 0
        for u in cq:  # repro: noqa[RPR001] — scalar on purpose: ground truth
            for j in range(offsets[u], offsets[u + 1]):  # repro: noqa[RPR001]
                examined += 1
                v = int(targets[j])
                if parent[v] < 0:
                    parent[v] = u
                    level[v] = depth + 1
                    nq.append(v)
        directions.append(Direction.TOP_DOWN)
        edges_examined.append(examined)
        cq = nq
        depth += 1
    return BFSResult(
        source=source,
        parent=parent,
        level=level,
        directions=directions,
        edges_examined=edges_examined,
    )
