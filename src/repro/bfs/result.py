"""BFS output containers.

The paper's BFS (Algorithms 1–2) outputs a predecessor map and a level
map.  :class:`BFSResult` bundles both with the per-level direction
decisions and counters needed for TEPS accounting and for the
switching-point analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import BFSError
from repro.graph.csr import CSRGraph
from repro.graph.validate import validate_bfs

__all__ = ["BFSResult", "Direction"]


class Direction:
    """Direction labels for a BFS level (string constants, not an enum,
    so results serialize to plain JSON)."""

    TOP_DOWN = "td"
    BOTTOM_UP = "bu"

    ALL = (TOP_DOWN, BOTTOM_UP)


@dataclass
class BFSResult:
    """The outcome of one BFS traversal.

    Attributes
    ----------
    source:
        Root vertex of the traversal.
    parent:
        ``int64`` predecessor map; ``-1`` marks unreached vertices and
        ``parent[source] == source``.
    level:
        ``int64`` distance map; ``-1`` marks unreached vertices.
    directions:
        Direction used at each level (``'td'``/``'bu'``), one entry per
        executed level.
    edges_examined:
        Adjacency entries actually inspected by the kernels, per level —
        the work term the cost model charges.
    """

    source: int
    parent: np.ndarray
    level: np.ndarray
    directions: list[str] = field(default_factory=list)
    edges_examined: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.parent = np.asarray(self.parent, dtype=np.int64)
        self.level = np.asarray(self.level, dtype=np.int64)
        if self.parent.shape != self.level.shape:
            raise BFSError("parent and level maps must have equal shape")

    @property
    def num_levels(self) -> int:
        """Number of non-empty levels (depth of the BFS tree + 1)."""
        reached = self.level >= 0
        if not reached.any():
            return 0
        return int(self.level[reached].max()) + 1

    @property
    def num_reached(self) -> int:
        """Vertices in the connected component of the source."""
        return int((self.level >= 0).sum())

    def traversed_edges(self, graph: CSRGraph) -> int:
        """Undirected edges inside the reached component.

        Graph 500 counts TEPS over the edges of the traversed component,
        not the whole graph; for a symmetric CSR this is half the degree
        mass of reached vertices.
        """
        reached = self.level >= 0
        directed = int(graph.degrees[reached].sum())
        return directed // 2 if graph.symmetric else directed

    def teps(self, graph: CSRGraph, seconds: float) -> float:
        """Traversed edges per second for a run that took ``seconds``."""
        if seconds <= 0:
            raise BFSError(f"seconds must be positive, got {seconds!r}")
        return self.traversed_edges(graph) / seconds

    def frontier_sizes(self) -> np.ndarray:
        """``|V|cq`` per level, reconstructed from the level map."""
        reached = self.level >= 0
        if not reached.any():
            return np.zeros(0, dtype=np.int64)
        return np.bincount(self.level[reached], minlength=self.num_levels)

    def detach(self) -> "BFSResult":
        """Copy the parent/level maps out of any shared workspace.

        Results produced with an explicit
        :class:`~repro.bfs.workspace.BFSWorkspace` alias the workspace's
        arrays, which the next traversal overwrites.  Call this to keep
        a result across traversals; returns self for chaining.
        """
        self.parent = self.parent.copy()
        self.level = self.level.copy()
        return self

    def validate(self, graph: CSRGraph) -> "BFSResult":
        """Run Graph 500 validation; returns self for chaining."""
        validate_bfs(graph, self.source, self.parent, self.level)
        return self

    def same_reachability(self, other: "BFSResult") -> bool:
        """Whether two results agree on levels (parents may differ:
        any shortest-path tree is a valid BFS output)."""
        return bool(np.array_equal(self.level, other.level))
