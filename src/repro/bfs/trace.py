"""Per-level traversal counters (the *level profile*).

This is the load-bearing data structure of the reproduction.  One
instrumented traversal (:func:`repro.bfs.profiler.profile_bfs`) records,
for every level, the counters that determine the cost of *both*
directions at that level:

* ``frontier_vertices`` — ``|V|cq`` of Figs. 1/4;
* ``frontier_edges`` — ``|E|cq`` of Figs. 2/4, the top-down work;
* ``unvisited_vertices`` / ``unvisited_edges`` — the bottom-up scan
  domain;
* ``bu_edges_checked`` — edges a bottom-up sweep would inspect *with
  early termination* (each unvisited vertex stops at its first parent);
* ``claimed`` — vertices added to the next queue.

Because the bottom-up counters are functions of the level sets only
(not of which direction actually executed), a single profile prices any
per-level direction/device plan without re-traversing the graph: that is
what makes exhaustive switching-point search (Fig. 8, 1,000 candidates)
affordable here when the paper could only run it offline.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.errors import BFSError

__all__ = ["LevelRecord", "LevelProfile", "merge_mean"]


@dataclass(frozen=True)
class LevelRecord:
    """Counters for one BFS level (all architecture-independent).

    ``bu_edges_failed`` is the portion of ``bu_edges_checked`` spent on
    vertices that found *no* parent this level (full-list scans).  The
    split matters architecturally: failed scans stream long runs
    (prefetcher-friendly on CPUs, divergence-prone on GPUs) while
    successful scans stop after a few probes.
    """

    level: int
    frontier_vertices: int
    frontier_edges: int
    unvisited_vertices: int
    unvisited_edges: int
    bu_edges_checked: int
    claimed: int
    bu_edges_failed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "frontier_vertices",
            "frontier_edges",
            "unvisited_vertices",
            "unvisited_edges",
            "bu_edges_checked",
            "claimed",
            "bu_edges_failed",
        ):
            if getattr(self, name) < 0:
                raise BFSError(f"{name} must be non-negative")
        if self.bu_edges_failed > self.bu_edges_checked:
            raise BFSError(
                "bu_edges_failed cannot exceed bu_edges_checked"
            )

    @property
    def bu_edges_won(self) -> int:
        """Edge checks belonging to vertices that found a parent."""
        return self.bu_edges_checked - self.bu_edges_failed


@dataclass(frozen=True)
class LevelProfile:
    """The full per-level counter trajectory of one traversal."""

    source: int
    num_vertices: int
    num_edges: int
    records: tuple[LevelRecord, ...]

    def __post_init__(self) -> None:
        for i, rec in enumerate(self.records):
            if rec.level != i:
                raise BFSError(
                    f"record {i} has level {rec.level}; profiles must be "
                    "contiguous from level 0"
                )

    # -- views -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[LevelRecord]:
        return iter(self.records)

    def __getitem__(self, i: int) -> LevelRecord:
        return self.records[i]

    def frontier_vertices(self) -> np.ndarray:
        """``|V|cq`` per level (the Fig. 1 series)."""
        return np.array([r.frontier_vertices for r in self.records], dtype=np.int64)

    def frontier_edges(self) -> np.ndarray:
        """``|E|cq`` per level (the Fig. 2 series)."""
        return np.array([r.frontier_edges for r in self.records], dtype=np.int64)

    def bu_edges_checked(self) -> np.ndarray:
        """Early-terminating bottom-up edge inspections per level."""
        return np.array([r.bu_edges_checked for r in self.records], dtype=np.int64)

    def unvisited_vertices(self) -> np.ndarray:
        """Unvisited-vertex count entering each level."""
        return np.array([r.unvisited_vertices for r in self.records], dtype=np.int64)

    def total_reached(self) -> int:
        """Vertices reached over the whole traversal (incl. source)."""
        return int(sum(r.claimed for r in self.records)) + 1

    def peak_level(self) -> int:
        """Level with the largest frontier — the 'middle' of Figs. 1–3."""
        if not self.records:
            raise BFSError("empty profile has no peak level")
        return int(np.argmax(self.frontier_vertices()))

    # -- persistence --------------------------------------------------------

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(
            {
                "source": self.source,
                "num_vertices": self.num_vertices,
                "num_edges": self.num_edges,
                "records": [asdict(r) for r in self.records],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "LevelProfile":
        """Inverse of :meth:`to_json`."""
        data = json.loads(text)
        return cls(
            source=data["source"],
            num_vertices=data["num_vertices"],
            num_edges=data["num_edges"],
            records=tuple(LevelRecord(**r) for r in data["records"]),
        )

    def save(self, path: str | Path) -> None:
        """Write the profile to ``path`` as JSON."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "LevelProfile":
        """Load a profile written by :meth:`save`."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


def merge_mean(profiles: Sequence[LevelProfile]) -> list[dict]:
    """Average aligned level counters across profiles from different
    sources (for plots that aggregate over multiple BFS roots)."""
    if not profiles:
        return []
    depth = max(len(p) for p in profiles)
    out = []
    for lvl in range(depth):
        recs = [p[lvl] for p in profiles if lvl < len(p)]
        out.append(
            {
                "level": lvl,
                "frontier_vertices": float(
                    np.mean([r.frontier_vertices for r in recs])
                ),
                "frontier_edges": float(np.mean([r.frontier_edges for r in recs])),
                "bu_edges_checked": float(
                    np.mean([r.bu_edges_checked for r in recs])
                ),
                "samples": len(recs),
            }
        )
    return out
