"""Reusable per-traversal scratch state for the BFS engines.

Repeated traversals are the dominant workload of this library: Graph 500
runs 64 roots on one graph, :func:`repro.apps.components` sweeps every
seed, benchmarks loop the same kernel thousands of times.  Before this
module each traversal allocated its parent/level maps, a dense frontier
mask and per-level index scratch from scratch; :class:`BFSWorkspace`
owns all of that state so a warm engine allocates nothing proportional
to ``V`` or ``E`` per traversal (NumPy ufunc temporaries of the
per-level candidate sets remain — they are inherent to vectorized
kernels and proportional to the *frontier*, not the graph).

The pieces:

* ``parent`` / ``level`` — the persistent ``int64`` output maps,
  reset with :meth:`begin` (results returned from a traversal run with
  an explicit workspace *alias* these arrays; call
  :meth:`repro.bfs.result.BFSResult.detach` to keep one).
* a packed frontier :class:`~repro.graph.bitmap.Bitmap` for the
  bottom-up membership test, cleared word-by-word via the previously
  loaded ids instead of a ``fill(False)`` over ``V``.
* an incrementally maintained unvisited id list for bottom-up levels:
  built once per traversal with a single ``flatnonzero`` (the paper's
  top-down→bottom-up representation-conversion cost) and shrunk by the
  claimed vertices each level instead of rescanning ``parent < 0``.
* a grow-only read-only ``arange`` cache (:meth:`iota`) shared by the
  gather kernels and the O(k) claim step.
* named per-thread scratch buffers (:meth:`buffer`) so the
  thread-parallel engine's workers never contend for scratch.

Thread-safety: :meth:`iota` may be called concurrently from
:class:`~repro.bfs.parallel.ParallelBFS` workers — the cache is
published read-only and a racing grow is benign (each thread keeps a
valid view).  :meth:`buffer` keys scratch by thread id.  Everything
else (``begin``, claim slots, unvisited maintenance) is main-thread
state driven by the level loop.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import BFSError
from repro.graph.bitmap import Bitmap
from repro.graph.csr import CSRGraph

__all__ = ["BFSWorkspace"]

#: Floor for grown scratch so tiny first requests don't thrash.
_MIN_GROW = 1024


class BFSWorkspace:
    """Owns every reusable array one BFS traversal needs.

    Create once per graph size (``BFSWorkspace.for_graph(graph)``) and
    pass ``workspace=`` to any engine; the engine calls :meth:`begin`
    to reset the output maps and drives the frontier/unvisited helpers
    level by level.  Without an explicit workspace the engines create a
    private one per call, which keeps the historical each-result-owns-
    its-arrays behavior.
    """

    def __init__(self, num_vertices: int) -> None:
        if num_vertices < 0:
            raise BFSError(
                f"num_vertices must be non-negative, got {num_vertices}"
            )
        self.num_vertices = int(num_vertices)
        self.parent = np.full(self.num_vertices, -1, dtype=np.int64)
        self.level = np.full(self.num_vertices, -1, dtype=np.int64)
        self._frontier_bits = Bitmap(self.num_vertices)
        self._frontier_loaded: np.ndarray | None = None
        self._claim_slot: np.ndarray | None = None
        self._iota: np.ndarray | None = None
        # Unvisited tracking: current view, its backing array, and a
        # spare backing of equal capacity for the compress ping-pong.
        self._unv: np.ndarray | None = None
        self._unv_backing: np.ndarray | None = None
        self._unv_spare: np.ndarray | None = None
        self._buffers: dict[tuple[str, str, int], np.ndarray] = {}

    @classmethod
    def for_graph(cls, graph: CSRGraph) -> "BFSWorkspace":
        """Workspace sized for ``graph``."""
        return cls(graph.num_vertices)

    # -- traversal lifecycle ------------------------------------------------

    def begin(self, source: int) -> tuple[np.ndarray, np.ndarray]:
        """Reset for a new traversal rooted at ``source``.

        Returns the ``(parent, level)`` maps with the source stamped in.
        """
        if not 0 <= source < self.num_vertices:
            raise BFSError(
                f"source {source} out of range [0, {self.num_vertices})"
            )
        self.parent.fill(-1)
        self.level.fill(-1)
        self.parent[source] = source
        self.level[source] = 0
        self.clear_frontier()
        self.invalidate_unvisited()
        return self.parent, self.level

    # -- packed frontier ----------------------------------------------------

    def clear_frontier(self) -> None:
        """Clear the frontier bitmap by zeroing only the words the
        previously loaded frontier touched."""
        loaded = self._frontier_loaded
        if loaded is not None and loaded.size:
            self._frontier_bits.zero_words_of(loaded)
        self._frontier_loaded = None

    def load_frontier(self, ids: np.ndarray) -> Bitmap:
        """Load ``ids`` as the current frontier and return the bitmap.

        The previous frontier's words are cleared first, so the cost is
        ``O(|previous| + |ids|)`` rather than ``O(V)``.
        """
        self.clear_frontier()
        ids = np.asarray(ids, dtype=np.int64)
        self._frontier_bits.set_many(ids)
        self._frontier_loaded = ids
        return self._frontier_bits

    # -- incremental unvisited tracking -------------------------------------

    def unvisited_ids(self, graph: CSRGraph, parent: np.ndarray) -> np.ndarray:
        """Ids of unvisited vertices with at least one edge, ascending.

        Built lazily with one full scan of the parent map — this is the
        top-down→bottom-up representation-conversion cost the paper
        charges once per direction switch — then maintained by
        :meth:`retire_claimed` in ``O(|list|)`` per level.  Zero-degree
        vertices are excluded up front: they can never be claimed by a
        bottom-up scan and would only pad every segmented kernel.
        """
        if self._unv is None:
            ids = np.flatnonzero(parent < 0)
            ids = ids[graph.degrees[ids] > 0]
            self._unv_backing = ids
            self._unv = ids
        return self._unv

    def retire_claimed(self, parent: np.ndarray) -> None:
        """Shrink the unvisited list to the still-unvisited prefix.

        No-op when the list has not been built (pure top-down phases
        keep it lazy).  Must be called after every level that claims
        vertices while the list is live — the bottom-up kernel trusts
        the list and does not re-check ``parent``.
        """
        cur = self._unv
        if cur is None or cur.size == 0:
            return
        gathered = self.buffer("unv-gather", cur.size, np.int64)
        np.take(parent, cur, out=gathered)
        keep = self.buffer("unv-keep", cur.size, np.bool_)
        np.less(gathered, 0, out=keep)
        k = int(np.count_nonzero(keep))
        if k == cur.size:
            return
        spare = self._unv_spare
        if spare is None or spare.size < cur.size:
            spare = np.empty(max(cur.size, _MIN_GROW), dtype=np.int64)
        np.compress(keep, cur, out=spare[:k])
        self._unv_spare = self._unv_backing
        self._unv_backing = spare
        self._unv = spare[:k]

    def invalidate_unvisited(self) -> None:
        """Drop the unvisited list (next use rebuilds it from ``parent``)."""
        self._unv = None
        self._unv_backing = None

    # -- scratch ------------------------------------------------------------

    def iota(self, k: int) -> np.ndarray:
        """Read-only view of ``arange(k)`` from a grow-only cache."""
        cur = self._iota
        if cur is None or cur.size < k:
            grown = np.arange(
                max(k, _MIN_GROW, 0 if cur is None else 2 * cur.size),
                dtype=np.int64,
            )
            grown.flags.writeable = False
            self._iota = cur = grown
        return cur[:k]

    def claim_slots(self) -> np.ndarray:
        """The ``int64[V]`` slot array for the O(k) first-writer claim.

        Never initialized: the claim step writes every slot it reads
        within a level, so stale contents are unobservable.
        """
        slot = self._claim_slot
        if slot is None:
            self._claim_slot = slot = np.empty(
                self.num_vertices, dtype=np.int64
            )
        return slot

    def buffer(self, name: str, size: int, dtype: np.dtype) -> np.ndarray:
        """A named grow-only scratch buffer, private to the calling thread.

        Returns a writable view of exactly ``size`` elements.  Contents
        are unspecified; callers must fully overwrite what they read.

        Ownership note: the key includes ``threading.get_ident()``, so
        two pool workers asking for the same ``name`` get *disjoint*
        backing arrays — this is what makes workspace scratch a
        permitted write target inside ``ParallelBFS`` worker closures
        (ownership protocol rule 2; static rule ``RPR013`` whitelists
        buffers obtained inside the worker for the same reason).
        """
        key = (name, np.dtype(dtype).str, threading.get_ident())
        buf = self._buffers.get(key)
        if buf is None or buf.size < size:
            buf = np.empty(max(size, _MIN_GROW), dtype=dtype)
            self._buffers[key] = buf
        return buf[:size]
