"""Instrumented BFS producing a :class:`~repro.bfs.trace.LevelProfile`.

One traversal, full counters for **both** directions at every level:

* the top-down work at level ℓ is ``|E|cq`` (degree mass of the
  frontier) — recorded whether or not top-down ran;
* the bottom-up work is the early-terminating edges-checked count,
  which depends only on which vertices are unvisited and which are in
  the frontier — both functions of the level sets, so it is computed
  *counterfactually* with the same segmented kernel the real bottom-up
  uses.

Everything downstream (cost models, switching-point search, the
heterogeneous planner) consumes profiles instead of re-running BFS.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.bottomup import DEFAULT_SCAN_WINDOW, _row_scan
from repro.bfs.result import BFSResult, Direction
from repro.bfs.topdown import top_down_step
from repro.bfs.trace import LevelProfile, LevelRecord
from repro.bfs.workspace import BFSWorkspace
from repro.errors import BFSError
from repro.graph.csr import CSRGraph
from repro.obs.tracer import Tracer, get_tracer

__all__ = ["profile_bfs", "pick_sources"]


def profile_bfs(
    graph: CSRGraph,
    source: int,
    *,
    max_levels: int | None = None,
    workspace: BFSWorkspace | None = None,
    tracer: Tracer | None = None,
) -> tuple[LevelProfile, BFSResult]:
    """Run an instrumented traversal from ``source``.

    Returns the level profile and the (top-down-computed) BFS result.
    ``max_levels`` guards pathological graphs (e.g. long paths) when only
    the head of the profile is needed.

    ``tracer`` overrides the process-global tracer: levels become
    ``bfs.level`` spans under a ``bfs.profile`` root, carrying the same
    counters the :class:`~repro.bfs.trace.LevelRecord` keeps.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise BFSError(f"source {source} out of range [0, {n})")
    tr = tracer if tracer is not None else get_tracer()
    degrees = graph.degrees

    ws = workspace if workspace is not None else BFSWorkspace(n)
    parent, level = ws.begin(source)

    frontier = np.array([source], dtype=np.int64)
    records: list[LevelRecord] = []
    directions: list[str] = []
    edges_examined: list[int] = []
    depth = 0
    with tr.span("bfs.profile", source=source, num_vertices=n) as root:
        while frontier.size and (max_levels is None or depth < max_levels):
            with tr.span("bfs.level", depth=depth) as sp:
                # The profile's unvisited counters include zero-degree
                # vertices (they are part of |V|un), so this full scan
                # stays — it feeds the record, not the kernel.
                unvisited = np.nonzero(parent < 0)[0]
                unvisited_edges = int(degrees[unvisited].sum())
                frontier_edges = int(degrees[frontier].sum())

                # Counterfactual bottom-up accounting at this level.
                bits = ws.load_frontier(frontier)
                bu_checked, bu_failed = _bottom_up_checked(
                    graph, unvisited, bits, ws
                )

                next_frontier, examined = top_down_step(
                    graph, frontier, parent, level, depth, ws
                )
                sp.set("frontier_vertices", int(frontier.size))
                sp.set("frontier_edges", frontier_edges)
                sp.set("bu_edges_checked", bu_checked)
                sp.set("claimed", int(next_frontier.size))
            records.append(
                LevelRecord(
                    level=depth,
                    frontier_vertices=int(frontier.size),
                    frontier_edges=frontier_edges,
                    unvisited_vertices=int(unvisited.size),
                    unvisited_edges=unvisited_edges,
                    bu_edges_checked=bu_checked,
                    claimed=int(next_frontier.size),
                    bu_edges_failed=bu_failed,
                )
            )
            directions.append(Direction.TOP_DOWN)
            edges_examined.append(examined)
            frontier = next_frontier
            depth += 1
        root.set("levels", depth)
    tr.count("bfs.levels", depth)

    profile = LevelProfile(
        source=source,
        num_vertices=n,
        num_edges=graph.num_edges,
        records=tuple(records),
    )
    result = BFSResult(
        source=source,
        parent=parent,
        level=level,
        directions=directions,
        edges_examined=edges_examined,
    )
    return profile, result


def _bottom_up_checked(
    graph: CSRGraph,
    unvisited: np.ndarray,
    in_frontier,
    workspace: BFSWorkspace | None = None,
) -> tuple[int, int]:
    """Edges a bottom-up sweep would inspect, with early termination.

    Returns ``(total_checked, failed_checked)`` where the failed portion
    belongs to vertices that found no parent this level.  Uses the same
    windowed row scan as the real kernel, so the counts match what an
    actual bottom-up level would report.
    """
    if unvisited.size == 0:
        return 0, 0
    deg = graph.degrees[unvisited]
    nz = deg > 0
    if not nz.all():
        unvisited = unvisited[nz]
        deg = deg[nz]
    if unvisited.size == 0:
        return 0, 0
    starts = graph.offsets[unvisited]
    found, _, total = _row_scan(
        graph,
        unvisited,
        deg,
        starts,
        in_frontier,
        window=DEFAULT_SCAN_WINDOW,
        workspace=workspace,
    )
    # A vertex that finds no parent inspects its whole adjacency list.
    failed = int(deg[~found].sum())
    return total, failed


def pick_sources(
    graph: CSRGraph,
    count: int,
    *,
    seed: int | np.random.Generator = 0,
    min_degree: int = 1,
) -> np.ndarray:
    """Sample BFS roots the Graph 500 way: uniformly among vertices with
    at least ``min_degree`` edges (isolated roots make degenerate
    searches)."""
    if count < 0:
        raise BFSError(f"count must be non-negative, got {count}")
    rng = np.random.default_rng(seed)
    eligible = np.nonzero(graph.degrees >= min_degree)[0]
    if eligible.size == 0:
        raise BFSError("graph has no vertex meeting the degree floor")
    replace = eligible.size < count
    return rng.choice(eligible, size=count, replace=replace).astype(np.int64)
