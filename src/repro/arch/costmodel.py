"""Per-level analytic cost model for both BFS directions.

Maps the architecture-independent counters of a
:class:`~repro.bfs.trace.LevelRecord` to seconds on an
:class:`~repro.arch.specs.ArchSpec`.  The model is a roofline with
per-level overheads, following the paper's own bottleneck analysis
(Section III-B: BFS's RCMA ≈ 0.5 is far below every platform's RCMB, so
levels are memory-bound except where parallelism or launch overhead
dominates):

Top-down level::

    t = td_overhead
      + max(mem_bytes / bandwidth, ops / compute_rate) / efficiency
    mem_bytes  = |E|cq * (4 + cacheline * parent_miss_rate) + atomic traffic
    efficiency = clip(|E|cq / saturation, floor, 1)    # Θ(Vcq / lg Vcq)

The efficiency ramp is the paper's parallelism argument made
quantitative: a GPU needs tens of millions of frontier edges to fill
2496 cores, a CPU saturates almost immediately — which is exactly why
the cross-architecture combination gives early levels to the CPU.

Bottom-up level::

    t = bu_overhead
      + num_vertices * scan_bytes / bandwidth           # status sweep
      + won_checks * win_cost + failed_checks * fail_cost

with the win/fail split measured by the profiler.  Failed scans stream
whole adjacency lists (fast on prefetching CPUs, divergence-penalized
on GPUs); successful scans are short latency-bound probes (relatively
expensive on CPUs, cheap on latency-hiding GPUs).  That asymmetry is
what makes GPU bottom-up catastrophic at level 1 yet 3× faster than the
CPU in the middle levels — the core phenomenon of the paper's Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.specs import ArchSpec
from repro.bfs.result import Direction
from repro.bfs.trace import LevelProfile, LevelRecord
from repro.errors import ArchError

__all__ = ["CostModel", "LevelCost"]

# Model-wide constants (dtype-determined or fitted once, not per-arch).
BYTES_EDGE_ID = 4        # int32 adjacency entry
BYTES_PARENT = 8         # int64 parent/level entry
OPS_PER_EDGE_TD = 10.0   # scalar ops to inspect + claim one edge, top-down
OPS_PER_EDGE_BU = 8.0    # scalar ops per bottom-up adjacency probe
OPS_PER_VERTEX_SCAN = 4.0  # ops per vertex of the status sweep

# Tile kernel family (specs with bu_kernel="tile"; see repro.linalg).
# The bottom-up sweep streams packed adjacency *words*, not edges:
TILE_WORD_FILL = 4.0     # mean adjacency entries per stored word — the
                         # BitmapTileMatrix.compression() of an R-MAT
                         # graph at the paper's scales
BYTES_TILE_WORD = 24     # streamed per word: the uint64 word, its int64
                         # column-block id and its row_ptr share
OPS_PER_WORD_TILE = 6.0  # AND + popcount + first-hit bookkeeping per word


@dataclass(frozen=True)
class LevelCost:
    """Cost breakdown of one level in one direction on one device."""

    seconds: float
    overhead_s: float
    memory_s: float
    compute_s: float
    efficiency: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ArchError("negative level cost")


class CostModel:
    """Prices BFS levels on a specific architecture.

    Stateless with respect to traversals: feed it any
    :class:`LevelRecord` (from a live profile or a synthetic one) and a
    total vertex count, get seconds.
    """

    def __init__(self, spec: ArchSpec) -> None:
        self.spec = spec

    # -- helpers ------------------------------------------------------------

    def _bw_bytes_per_s(self) -> float:
        return self.spec.measured_bw_gbs * 1e9

    def _compute_ops_per_s(self) -> float:
        return self.spec.compute_rate_gops * 1e9

    def parent_miss_rate(self, num_vertices: int) -> float:
        """Probability a random parent-map probe misses the last-level
        cache (working set ``8 * |V|`` bytes vs cache capacity)."""
        if num_vertices <= 0:
            return 0.0
        working = BYTES_PARENT * num_vertices
        return float(
            np.clip(1.0 - self.spec.cache_capacity_bytes() / working, 0.0, 1.0)
        )

    def td_efficiency(self, frontier_edges: int) -> float:
        """Parallel efficiency of a top-down level (occupancy ramp)."""
        if frontier_edges <= 0:
            return 1.0
        return float(
            np.clip(
                frontier_edges / self.spec.td_saturation_edges,
                self.spec.td_efficiency_floor,
                1.0,
            )
        )

    # -- per-level costs -------------------------------------------------------

    def top_down_seconds(self, rec: LevelRecord, num_vertices: int) -> LevelCost:
        """Price one top-down level."""
        spec = self.spec
        miss = self.parent_miss_rate(num_vertices)
        bytes_per_edge = (
            BYTES_EDGE_ID + spec.cacheline_bytes * miss
        )
        mem = rec.frontier_edges * bytes_per_edge / self._bw_bytes_per_s()
        mem += rec.frontier_edges * spec.td_atomic_ns * 1e-9
        compute = rec.frontier_edges * OPS_PER_EDGE_TD / self._compute_ops_per_s()
        eff = self.td_efficiency(rec.frontier_edges)
        work = max(mem, compute) / eff
        return LevelCost(
            seconds=spec.td_overhead_s + work,
            overhead_s=spec.td_overhead_s,
            memory_s=mem,
            compute_s=compute,
            efficiency=eff,
        )

    def bottom_up_seconds(self, rec: LevelRecord, num_vertices: int) -> LevelCost:
        """Price one bottom-up level.

        Two kernel families, selected by ``spec.bu_kernel``:

        * ``"scan"`` — the per-edge adjacency scan, with the profiler's
          win/fail split pricing early termination;
        * ``"tile"`` — the :mod:`repro.linalg` masked bitmap-tile SpMV.
          Work is proportional to the *words* streamed, estimated as
          ``unvisited_edges / TILE_WORD_FILL``: the word scan has no
          early-exit asymmetry (every probe is one AND+popcount), so
          the family's cost depends on the scan domain, not the
          win/fail split — ``bu_win_ns`` is the per-word latency cost.
        """
        spec = self.spec
        sweep_mem = num_vertices * spec.scan_bytes_per_vertex / self._bw_bytes_per_s()
        sweep_cmp = num_vertices * OPS_PER_VERTEX_SCAN / self._compute_ops_per_s()
        sweep = max(sweep_mem, sweep_cmp)
        if spec.bu_kernel == "tile":
            words = rec.unvisited_edges / TILE_WORD_FILL
            probe_mem = words * BYTES_TILE_WORD / self._bw_bytes_per_s()
            probes = words * spec.bu_win_ns * 1e-9
            probe_cmp = words * OPS_PER_WORD_TILE / self._compute_ops_per_s()
            work = sweep + max(probe_mem + probes, probe_cmp)
            return LevelCost(
                seconds=spec.bu_overhead_s + work,
                overhead_s=spec.bu_overhead_s,
                memory_s=sweep_mem + probe_mem + probes,
                compute_s=sweep_cmp + probe_cmp,
                efficiency=1.0,
            )
        probes = (
            rec.bu_edges_won * spec.bu_win_ns
            + rec.bu_edges_failed * spec.bu_fail_ns
        ) * 1e-9
        probe_cmp = rec.bu_edges_checked * OPS_PER_EDGE_BU / self._compute_ops_per_s()
        work = sweep + max(probes, probe_cmp)
        return LevelCost(
            seconds=spec.bu_overhead_s + work,
            overhead_s=spec.bu_overhead_s,
            memory_s=sweep_mem + probes,
            compute_s=sweep_cmp + probe_cmp,
            efficiency=1.0,
        )

    def level_seconds(
        self, rec: LevelRecord, num_vertices: int, direction: str
    ) -> float:
        """Price one level in the given direction (scalar seconds)."""
        if direction == Direction.TOP_DOWN:
            return self.top_down_seconds(rec, num_vertices).seconds
        if direction == Direction.BOTTOM_UP:
            return self.bottom_up_seconds(rec, num_vertices).seconds
        raise ArchError(f"unknown direction {direction!r}")

    # -- whole-profile pricing ----------------------------------------------------

    def time_matrix(self, profile: LevelProfile) -> np.ndarray:
        """``(levels, 2)`` array of seconds: column 0 top-down, column 1
        bottom-up.  This is the primitive every switching-point search
        and heterogeneous plan evaluation is built on."""
        n = profile.num_vertices
        out = np.empty((len(profile), 2), dtype=np.float64)
        for i, rec in enumerate(profile):
            out[i, 0] = self.top_down_seconds(rec, n).seconds
            out[i, 1] = self.bottom_up_seconds(rec, n).seconds
        return out

    def traversal_seconds(
        self, profile: LevelProfile, directions: list[str] | np.ndarray
    ) -> float:
        """Total time for a fixed per-level direction plan on this device."""
        if len(directions) != len(profile):
            raise ArchError(
                f"plan length {len(directions)} != profile depth {len(profile)}"
            )
        total = 0.0
        for rec, d in zip(profile, directions):
            total += self.level_seconds(rec, profile.num_vertices, d)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CostModel({self.spec.name})"
