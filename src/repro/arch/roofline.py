"""RCMA / RCMB analysis (Section III-B of the paper).

The paper frames BFS as SpMV and computes the algorithm's *ratio of
computation to memory access* (RCMA, Equation 1), then compares it
against each platform's *ratio of computation to memory bandwidth*
(RCMB, Equation 2).  RCMA ≈ 0.5 ≪ RCMB everywhere, i.e. BFS is deeply
memory-bound, and the gap is *worst* on the architectures with the
highest RCMB — the paper's explanation of why the GPU pays a severe
penalty on its bandwidth-hungry first bottom-up level.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.specs import ArchSpec
from repro.bfs.spmv import spmv_bytes, spmv_flops
from repro.errors import ArchError

__all__ = ["rcma_spmv", "rcmb", "RooflinePoint", "analyze"]


def rcma_spmv(n: int, element_bytes: int = 4) -> float:
    """RCMA of a dense n×n matrix-vector product (Equation 1).

    ``n (2n - 1)`` flops over ``element_bytes (n² + n)`` bytes — tends
    to ``0.5`` for 4-byte elements as ``n`` grows, the figure the paper
    quotes for BFS-as-SpMV.
    """
    return spmv_flops(n) / spmv_bytes(n, element_bytes)


def rcmb(spec: ArchSpec, *, precision: str = "sp") -> float:
    """RCMB of an architecture (Equation 2): peak Gflops over theoretical
    GB/s, in flops/byte."""
    if precision == "sp":
        return spec.rcmb_sp
    if precision == "dp":
        return spec.rcmb_dp
    raise ArchError(f"precision must be 'sp' or 'dp', got {precision!r}")


@dataclass(frozen=True)
class RooflinePoint:
    """Placement of a kernel on one architecture's roofline."""

    arch: str
    rcma: float
    rcmb_sp: float
    rcmb_dp: float
    memory_bound: bool
    bandwidth_gap: float  # rcmb_sp / rcma: how far below the roof

    def as_dict(self) -> dict:
        """Plain-dict view (for reporting)."""
        return {
            "arch": self.arch,
            "rcma": self.rcma,
            "rcmb_sp": self.rcmb_sp,
            "rcmb_dp": self.rcmb_dp,
            "memory_bound": self.memory_bound,
            "bandwidth_gap": self.bandwidth_gap,
        }


def analyze(spec: ArchSpec, n: int = 1 << 20) -> RooflinePoint:
    """Place BFS-as-SpMV on ``spec``'s roofline.

    ``memory_bound`` is True when the kernel's RCMA sits below the
    architecture's RCMB — true for every platform in the paper, with the
    largest gap on the GPU (Table II: RCMB 21.0 vs RCMA 0.5).
    """
    a = rcma_spmv(n)
    return RooflinePoint(
        arch=spec.name,
        rcma=a,
        rcmb_sp=spec.rcmb_sp,
        rcmb_dp=spec.rcmb_dp,
        memory_bound=a < spec.rcmb_sp,
        bandwidth_gap=spec.rcmb_sp / a,
    )
