"""Host↔device transfer model.

The cross-architecture combination (Algorithm 3) hands the traversal
from CPU to GPU mid-run.  The graph itself is resident on both devices
before timing starts (as in the paper, which times BFS kernels only),
but the live state — frontier and visited/parent information — must
cross PCIe at each device switch.  A mistuned switching point that
ping-pongs between devices pays this cost repeatedly, one ingredient of
the paper's 695× worst-case gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArchError

__all__ = ["TransferModel", "PCIE_GEN2"]


@dataclass(frozen=True)
class TransferModel:
    """Latency + bandwidth model of a host↔device interconnect."""

    latency_s: float
    bandwidth_gbs: float

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ArchError("transfer latency must be non-negative")
        if self.bandwidth_gbs <= 0:
            raise ArchError("transfer bandwidth must be positive")

    def seconds(self, nbytes: int) -> float:
        """Time to move ``nbytes`` across the link."""
        if nbytes < 0:
            raise ArchError(f"nbytes must be non-negative, got {nbytes}")
        return self.latency_s + nbytes / (self.bandwidth_gbs * 1e9)

    def handoff_seconds(
        self, num_vertices: int, frontier_vertices: int
    ) -> float:
        """Cost of switching the live traversal to the other device.

        Ships the visited bitmap (``|V| / 8`` bytes) plus the current
        frontier queue (4 bytes per member) — parent/level maps stay on
        the device that produced them and are merged after the run,
        exactly as a real split implementation would do.
        """
        if num_vertices < 0 or frontier_vertices < 0:
            raise ArchError("counts must be non-negative")
        payload = num_vertices // 8 + 4 * frontier_vertices
        return self.seconds(payload)


#: PCIe gen-2 x16 (the K20x-era link): ~8 GB/s effective, 10 µs latency.
PCIE_GEN2 = TransferModel(latency_s=1.0e-5, bandwidth_gbs=8.0)
