"""Architecture layer: device specifications (Table II), roofline
analysis (Section III-B), the per-level cost model, the interconnect
model and the simulated heterogeneous machine, calibrated against the
paper's Table IV."""

from repro.arch.calibration import (
    TABLE_IV_SECONDS,
    TABLE_IV_SPEEDUPS,
    CalibrationReport,
    check_calibration,
    scale_profile,
)
from repro.arch.costmodel import CostModel, LevelCost
from repro.arch.machine import PlanStep, SimReport, SimulatedMachine
from repro.arch.roofline import RooflinePoint, analyze, rcma_spmv, rcmb
from repro.arch.specs import (
    CPU_SANDY_BRIDGE,
    GPU_K20X,
    MIC_KNC,
    PRESETS,
    TENSOR_TILE,
    ArchSpec,
    arch_features,
    sample_arch,
)
from repro.arch.transfer import PCIE_GEN2, TransferModel

__all__ = [
    "ArchSpec",
    "CPU_SANDY_BRIDGE",
    "GPU_K20X",
    "MIC_KNC",
    "TENSOR_TILE",
    "PRESETS",
    "arch_features",
    "sample_arch",
    "CostModel",
    "LevelCost",
    "SimulatedMachine",
    "PlanStep",
    "SimReport",
    "TransferModel",
    "PCIE_GEN2",
    "rcma_spmv",
    "rcmb",
    "analyze",
    "RooflinePoint",
    "scale_profile",
    "check_calibration",
    "CalibrationReport",
    "TABLE_IV_SECONDS",
    "TABLE_IV_SPEEDUPS",
]
