"""Architecture specifications.

:class:`ArchSpec` carries two groups of fields:

* **catalog parameters** taken verbatim from the paper's Table II —
  frequency, core count, peak Gflops, cache sizes, theoretical and
  measured bandwidth.  These are also the architecture block of the
  Fig. 7 regression feature vector.
* **fitted kernel constants** — per-edge/per-vertex costs and per-level
  overheads calibrated so that the cost model reproduces the paper's
  level-by-level time matrix (Table IV); the calibration targets and the
  fitting story live in :mod:`repro.arch.calibration`.

Three presets mirror the paper's platforms (Sandy Bridge CPU, Kepler
K20x GPU, Knights Corner MIC).  :func:`sample_arch` synthesizes
plausible additional architectures by mixing the presets — used to
enrich the regression training corpus beyond the paper's three
platforms while keeping catalog features predictive of kernel costs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace, fields as dc_fields

import numpy as np

from repro.errors import ArchError

__all__ = [
    "ArchSpec",
    "CPU_SANDY_BRIDGE",
    "GPU_K20X",
    "MIC_KNC",
    "TENSOR_TILE",
    "PRESETS",
    "arch_features",
    "sample_arch",
]


@dataclass(frozen=True)
class ArchSpec:
    """One execution architecture (device) for the cost model."""

    name: str

    # --- catalog parameters (the paper's Table II) -----------------------
    freq_ghz: float
    cores: int
    peak_sp_gflops: float
    peak_dp_gflops: float
    l1_kb: float          # per core / per SM
    l2_kb: float          # per core (CPU/MIC) or per card (GPU)
    l3_mb: float          # 0 when absent (GPU, MIC)
    theoretical_bw_gbs: float
    measured_bw_gbs: float

    # --- microarchitectural character ------------------------------------
    issue_width: float      # instructions issued per cycle per core
    ooo_factor: float       # out-of-order/cache effectiveness (in [0, 1];
                            # the paper's Section V-C "factor of 5" for KNC)
    cacheline_bytes: int

    # --- fitted kernel constants (see repro.arch.calibration) -------------
    td_overhead_s: float        # per-level launch/barrier cost, top-down
    bu_overhead_s: float        # per-level launch/barrier cost, bottom-up
    td_atomic_ns: float         # queue-claim cost per inspected edge (ns)
    td_saturation_edges: float  # |E|cq needed to reach full efficiency
    td_efficiency_floor: float  # minimum parallel efficiency, top-down
    bu_win_ns: float            # per-edge cost, scans that find a parent
    bu_fail_ns: float           # per-edge cost, scans that exhaust the list
    scan_bytes_per_vertex: float  # next-frontier/status sweep traffic

    # --- kernel family ----------------------------------------------------
    # "scan": the per-edge adjacency scan (Algorithm 2; every paper
    # platform).  "tile": the repro.linalg masked bitmap-tile SpMV — the
    # cost model then reads bu_win_ns/bu_fail_ns as the per *streamed
    # word* cost (one word covers up to 64 adjacency entries), see
    # CostModel.bottom_up_seconds.
    bu_kernel: str = "scan"

    def __post_init__(self) -> None:
        positive = (
            "freq_ghz",
            "cores",
            "peak_sp_gflops",
            "peak_dp_gflops",
            "l1_kb",
            "l2_kb",
            "theoretical_bw_gbs",
            "measured_bw_gbs",
            "issue_width",
            "cacheline_bytes",
            "td_saturation_edges",
            "bu_win_ns",
            "bu_fail_ns",
            "scan_bytes_per_vertex",
        )
        for name in positive:
            if getattr(self, name) <= 0:
                raise ArchError(f"{self.name}: {name} must be positive")
        for name in ("l3_mb", "td_overhead_s", "bu_overhead_s", "td_atomic_ns"):
            if getattr(self, name) < 0:
                raise ArchError(f"{self.name}: {name} must be non-negative")
        if not 0 < self.ooo_factor <= 1:
            raise ArchError(f"{self.name}: ooo_factor must be in (0, 1]")
        if not 0 < self.td_efficiency_floor <= 1:
            raise ArchError(
                f"{self.name}: td_efficiency_floor must be in (0, 1]"
            )
        if self.measured_bw_gbs > self.theoretical_bw_gbs:
            raise ArchError(
                f"{self.name}: measured bandwidth exceeds theoretical"
            )
        if self.bu_kernel not in ("scan", "tile"):
            raise ArchError(
                f"{self.name}: bu_kernel must be 'scan' or 'tile', "
                f"got {self.bu_kernel!r}"
            )

    # -- derived quantities --------------------------------------------------

    @property
    def compute_rate_gops(self) -> float:
        """Scalar integer-op throughput in Gops/s: cores × freq × issue
        × out-of-order effectiveness.  This is the roofline's compute
        leg for BFS (graph traversal does no floating point)."""
        return self.cores * self.freq_ghz * self.issue_width * self.ooo_factor

    @property
    def rcmb_sp(self) -> float:
        """Single-precision ratio of computation to memory bandwidth
        (Equation 2).  Note: the paper's Equation 2 says *theoretical*
        bandwidth, but its Table II values (7.52 / 12.70 / 21.01) are
        peak Gflops over **measured** bandwidth — we follow the table."""
        return self.peak_sp_gflops / self.measured_bw_gbs

    @property
    def rcmb_dp(self) -> float:
        """Double-precision RCMB (Equation 2, measured bandwidth as in
        Table II)."""
        return self.peak_dp_gflops / self.measured_bw_gbs

    def cache_capacity_bytes(self) -> float:
        """Effective capacity for the random-access working set (parent
        map / frontier bitmap).  L3 when present; otherwise a fraction of
        aggregate L2 — private, partitioned L2s retain less of a shared
        working set, which is the paper's "reduced cache" MIC penalty."""
        if self.l3_mb > 0:
            return self.l3_mb * 1e6
        if self.cores >= 512:
            return self.l2_kb * 1e3  # manycore accelerators list L2 per card
        return self.l2_kb * 1e3 * self.cores * 0.25

    def with_cores(self, cores: int) -> "ArchSpec":
        """A scaled variant for strong/weak-scaling studies.

        Compute capacity scales linearly with core count; memory
        bandwidth follows a saturating curve (half-saturation at a
        quarter of the reference core count) normalized so the reference
        configuration keeps its measured bandwidth; per-level barrier
        overheads grow logarithmically with participating cores.
        """
        if cores < 1:
            raise ArchError(f"cores must be >= 1, got {cores}")
        k_half = max(self.cores / 4.0, 0.5)
        ref_frac = self.cores / (self.cores + k_half)
        bw_frac = cores / (cores + k_half) / ref_frac
        barrier = np.log2(cores + 1) / np.log2(self.cores + 1)
        return replace(
            self,
            name=f"{self.name}@{cores}c",
            cores=cores,
            measured_bw_gbs=min(
                self.measured_bw_gbs * bw_frac, self.theoretical_bw_gbs
            ),
            peak_sp_gflops=self.peak_sp_gflops * cores / self.cores,
            peak_dp_gflops=self.peak_dp_gflops * cores / self.cores,
            td_overhead_s=self.td_overhead_s * barrier,
            bu_overhead_s=self.bu_overhead_s * barrier,
        )


# ---------------------------------------------------------------------------
# Presets — catalog values from Table II; kernel constants fitted to Table IV
# (see repro.arch.calibration for the targets and tolerances).
# ---------------------------------------------------------------------------

CPU_SANDY_BRIDGE = ArchSpec(
    name="cpu-snb",
    freq_ghz=2.00,
    cores=8,
    peak_sp_gflops=256.0,
    peak_dp_gflops=128.0,
    l1_kb=32.0,
    l2_kb=256.0,
    l3_mb=20.0,
    theoretical_bw_gbs=51.2,
    measured_bw_gbs=34.0,
    issue_width=2.0,
    ooo_factor=1.0,
    cacheline_bytes=64,
    td_overhead_s=7.0e-4,
    bu_overhead_s=2.0e-4,
    td_atomic_ns=0.5,
    td_saturation_edges=1.0e5,
    td_efficiency_floor=0.25,
    bu_win_ns=2.4,
    bu_fail_ns=0.20,
    scan_bytes_per_vertex=20.0,
)

GPU_K20X = ArchSpec(
    name="gpu-k20x",
    freq_ghz=0.73,
    cores=2496,
    peak_sp_gflops=3950.0,
    peak_dp_gflops=1320.0,
    l1_kb=64.0,
    l2_kb=1536.0,
    l3_mb=0.0,
    theoretical_bw_gbs=250.0,
    measured_bw_gbs=188.0,
    issue_width=1.0,
    ooo_factor=1.0,
    cacheline_bytes=128,
    td_overhead_s=2.2e-4,
    bu_overhead_s=5.0e-5,
    td_atomic_ns=3.5,
    td_saturation_edges=3.0e7,
    td_efficiency_floor=0.03,
    bu_win_ns=1.3,
    bu_fail_ns=1.7,
    scan_bytes_per_vertex=30.0,
)

MIC_KNC = ArchSpec(
    name="mic-knc",
    freq_ghz=1.09,
    cores=61,
    peak_sp_gflops=2020.0,
    peak_dp_gflops=1010.0,
    l1_kb=32.0,
    l2_kb=512.0,
    l3_mb=0.0,
    theoretical_bw_gbs=352.0,
    measured_bw_gbs=159.0,
    issue_width=1.0,
    # The paper's Section V-C decomposition of the 20.6x serial gap:
    # 2x clock (explicit above), 2x no consecutive dual-issue, ~5x no
    # L3 / in-order execution -> 1 / (2 * 5) = 0.1 effectiveness.
    ooo_factor=0.10,
    cacheline_bytes=64,
    td_overhead_s=2.0e-3,
    bu_overhead_s=8.0e-4,
    # Atomic queue claims on an in-order P54 core with no L3 cost tens
    # of ns each — this is what keeps MIC top-down behind both the CPU
    # (OoO cores) and the GPU (latency hiding) at every frontier size.
    td_atomic_ns=20.0,
    td_saturation_edges=2.0e6,
    td_efficiency_floor=0.10,
    bu_win_ns=8.0,
    bu_fail_ns=1.4,
    scan_bytes_per_vertex=20.0,
)

TENSOR_TILE = ArchSpec(
    name="tensor-tile",
    # Catalog values modeled on a Volta-class accelerator — the platform
    # the "Graph Traversal on Tensor Cores" line of work targets.  Not a
    # paper Table II platform: this preset prices the repro.linalg
    # bitmap-tile kernel family so the cross-architecture planner can
    # weigh it against the paper's three devices.
    freq_ghz=1.41,
    cores=5120,
    peak_sp_gflops=15700.0,
    peak_dp_gflops=7800.0,
    l1_kb=128.0,
    l2_kb=6144.0,
    l3_mb=0.0,
    theoretical_bw_gbs=900.0,
    measured_bw_gbs=790.0,
    issue_width=1.0,
    ooo_factor=1.0,
    cacheline_bytes=128,
    td_overhead_s=2.5e-4,
    # Top-down is the tile backend's weak direction: scalar queue claims
    # waste the matrix pipes, and the occupancy ramp is even longer than
    # the K20x's — small frontiers leave it idle, so the planner hands
    # early levels to the CPU (the cross-architecture shape the paper's
    # combination exploits).
    td_atomic_ns=4.0,
    td_saturation_edges=6.0e7,
    td_efficiency_floor=0.02,
    # Tile family: win/fail are per streamed *word* (up to 64 adjacency
    # entries per probe), not per edge.  The masked SpMV has no
    # win/fail asymmetry — every probe is one AND+popcount regardless of
    # outcome — so the two constants coincide.
    bu_win_ns=0.35,
    bu_fail_ns=0.35,
    # One fused masked-SpMV launch per level (the scan family runs a
    # multi-pass pipeline), so the per-level overhead undercuts the
    # K20x's.
    bu_overhead_s=3.5e-5,
    scan_bytes_per_vertex=24.0,
    bu_kernel="tile",
)

PRESETS: dict[str, ArchSpec] = {
    "cpu": CPU_SANDY_BRIDGE,
    "gpu": GPU_K20X,
    "mic": MIC_KNC,
    "tensor-tile": TENSOR_TILE,
}


def arch_features(spec: ArchSpec) -> np.ndarray:
    """The 3-element architecture block of the Fig. 7 training sample:
    ``[peak performance (Gflops), L1 cache (KB), memory bandwidth (GB/s)]``."""
    return np.array(
        [spec.peak_sp_gflops, spec.l1_kb, spec.measured_bw_gbs],
        dtype=np.float64,
    )


_MIX_FIELDS = [
    f.name
    for f in dc_fields(ArchSpec)
    if f.name not in ("name", "cores", "cacheline_bytes", "bu_kernel")
]


def sample_arch(
    rng: np.random.Generator, *, jitter: float = 0.15, name: str | None = None
) -> ArchSpec:
    """Synthesize a plausible architecture by mixing the three presets.

    Every field is the Dirichlet-weighted geometric mean of the presets'
    values, then perturbed by log-normal jitter — so the catalog features
    (what the regression sees) and the kernel constants (what determines
    the best switching point) move *together*, exactly the property that
    makes the switching point learnable from catalog features.
    """
    if jitter < 0:
        raise ArchError(f"jitter must be non-negative, got {jitter}")
    presets = (CPU_SANDY_BRIDGE, GPU_K20X, MIC_KNC)
    w = rng.dirichlet(np.ones(len(presets)))
    values: dict[str, object] = {}
    for fname in _MIX_FIELDS:
        vals = np.array([float(getattr(p, fname)) for p in presets])
        if np.any(vals <= 0):
            # Additive mix for fields that may be zero (l3_mb, overheads).
            mixed = float(w @ vals)
        else:
            mixed = float(np.exp(w @ np.log(vals)))
        mixed *= float(np.exp(rng.normal(0.0, jitter)))
        values[fname] = mixed
    cores = max(1, int(round(np.exp(w @ np.log([p.cores for p in presets])))))
    values["cores"] = cores
    values["cacheline_bytes"] = int(
        rng.choice([p.cacheline_bytes for p in presets])
    )
    values["ooo_factor"] = float(np.clip(values["ooo_factor"], 0.05, 1.0))
    values["td_efficiency_floor"] = float(
        np.clip(values["td_efficiency_floor"], 0.01, 1.0)
    )
    values["measured_bw_gbs"] = min(
        float(values["measured_bw_gbs"]), float(values["theoretical_bw_gbs"])
    )
    values["name"] = name or f"synthetic-{rng.integers(1 << 30):08x}"
    return ArchSpec(**values)  # type: ignore[arg-type]
