"""Simulated heterogeneous machine: prices per-level execution plans.

A *plan* assigns each BFS level a ``(device, direction)`` pair.  The
machine prices every level on its device's cost model and charges the
transfer model whenever consecutive levels run on different devices.
Single-architecture runs are the special case of a constant device
column.

The machine never traverses a graph — it consumes a
:class:`~repro.bfs.trace.LevelProfile`, which is why pricing the 1,000
candidate switching points of the paper's Fig. 8 costs milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.costmodel import CostModel
from repro.arch.specs import ArchSpec
from repro.arch.transfer import PCIE_GEN2, TransferModel
from repro.bfs.result import Direction
from repro.bfs.trace import LevelProfile
from repro.errors import PlanError

__all__ = ["PlanStep", "SimReport", "SimulatedMachine"]


@dataclass(frozen=True)
class PlanStep:
    """One level's placement: which device, which direction."""

    device: str
    direction: str

    def __post_init__(self) -> None:
        if self.direction not in Direction.ALL:
            raise PlanError(f"unknown direction {self.direction!r}")


@dataclass(frozen=True)
class SimReport:
    """Outcome of pricing one plan over one profile."""

    steps: tuple[PlanStep, ...]
    level_seconds: np.ndarray          # per-level kernel time
    transfer_seconds: np.ndarray       # per-level handoff cost (entering)
    total_seconds: float
    traversed_edges: int

    @property
    def teps(self) -> float:
        """Traversed edges per second under the simulated timing."""
        if self.total_seconds <= 0:
            raise PlanError("non-positive simulated time")
        return self.traversed_edges / self.total_seconds

    @property
    def gteps(self) -> float:
        """TEPS in units of 10⁹ (the paper's GTEPS)."""
        return self.teps / 1e9

    def per_level(self) -> list[dict]:
        """Row-per-level breakdown (for Table IV-style reporting)."""
        return [
            {
                "level": i + 1,  # the paper numbers levels from 1
                "device": s.device,
                "direction": s.direction,
                "seconds": float(self.level_seconds[i]),
                "transfer_seconds": float(self.transfer_seconds[i]),
            }
            for i, s in enumerate(self.steps)
        ]


class SimulatedMachine:
    """A set of devices joined by an interconnect.

    Parameters
    ----------
    devices:
        Mapping of device name → :class:`ArchSpec`.
    transfer:
        Interconnect model for device handoffs (PCIe gen 2 by default).
    """

    def __init__(
        self,
        devices: dict[str, ArchSpec],
        transfer: TransferModel = PCIE_GEN2,
    ) -> None:
        if not devices:
            raise PlanError("machine needs at least one device")
        self.specs = dict(devices)
        self.models = {name: CostModel(spec) for name, spec in devices.items()}
        self.transfer = transfer

    # -- plan construction helpers ----------------------------------------------

    def constant_plan(
        self, profile: LevelProfile, device: str, directions: list[str]
    ) -> list[PlanStep]:
        """A single-device plan with the given per-level directions."""
        self._check_device(device)
        if len(directions) != len(profile):
            raise PlanError(
                f"{len(directions)} directions for {len(profile)} levels"
            )
        return [PlanStep(device, d) for d in directions]

    def _check_device(self, device: str) -> None:
        if device not in self.models:
            raise PlanError(
                f"unknown device {device!r}; have {sorted(self.models)}"
            )

    # -- pricing --------------------------------------------------------------------

    def run(
        self,
        profile: LevelProfile,
        plan: list[PlanStep],
        *,
        traversed_edges: int | None = None,
    ) -> SimReport:
        """Price ``plan`` over ``profile``.

        ``traversed_edges`` defaults to the profile's total frontier
        edge mass / 2 (undirected edges of the traversed component),
        which is the Graph 500 TEPS numerator.
        """
        if len(plan) != len(profile):
            raise PlanError(
                f"plan length {len(plan)} != profile depth {len(profile)}"
            )
        n = profile.num_vertices
        level_s = np.zeros(len(plan), dtype=np.float64)
        xfer_s = np.zeros(len(plan), dtype=np.float64)
        prev_device: str | None = None
        for i, (rec, step) in enumerate(zip(profile, plan)):
            self._check_device(step.device)
            model = self.models[step.device]
            level_s[i] = model.level_seconds(rec, n, step.direction)
            if prev_device is not None and step.device != prev_device:
                xfer_s[i] = self.transfer.handoff_seconds(
                    n, rec.frontier_vertices
                )
            prev_device = step.device
        if traversed_edges is None:
            traversed_edges = int(profile.frontier_edges().sum()) // 2
        return SimReport(
            steps=tuple(plan),
            level_seconds=level_s,
            transfer_seconds=xfer_s,
            total_seconds=float(level_s.sum() + xfer_s.sum()),
            traversed_edges=traversed_edges,
        )

    def time_matrices(
        self, profile: LevelProfile
    ) -> dict[str, np.ndarray]:
        """Per-device ``(levels, 2)`` time matrices (td, bu columns)."""
        return {
            name: model.time_matrix(profile)
            for name, model in self.models.items()
        }
