"""Calibration of the cost model against the paper's Table IV.

Table IV reports level-by-level seconds for eight approaches on one
graph (8M vertices, 128M edges, R-MAT ef 16).  We cannot re-measure a
K20x or a KNC, so the kernel constants in :mod:`repro.arch.specs` were
fitted so that, on a *measured* level profile of the same workload
shape (scaled to 8M vertices with :func:`scale_profile`), the model
reproduces the paper's qualitative structure:

* level 1: GPU top-down beats CPU top-down (launch vs barrier floor),
  while GPU bottom-up is catastrophically slower than CPU bottom-up
  (the full-graph divergent scan);
* middle levels: CPU top-down beats GPU top-down (atomics + occupancy),
  GPU bottom-up beats CPU bottom-up (latency hiding);
* tail levels: top-down beats bottom-up everywhere, and the GPU's
  smaller per-level floor makes it the right tail device;
* the resulting combination ordering — GPUCB ≫ GPUTD, CPUCB ≫ CPUTD,
  CPUTD+GPUCB best of all — with speedup factors of the same order as
  the paper's 16.5× / 13.0× / 36.1×.

:func:`check_calibration` verifies those structural claims and returns
the measured ratios; the unit tests pin them to tolerance bands, and
EXPERIMENTS.md records the per-cell comparison against Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.costmodel import CostModel
from repro.arch.specs import CPU_SANDY_BRIDGE, GPU_K20X, ArchSpec
from repro.bfs.trace import LevelProfile, LevelRecord
from repro.errors import CalibrationError

__all__ = [
    "TABLE_IV_SECONDS",
    "TABLE_IV_SPEEDUPS",
    "scale_profile",
    "CalibrationReport",
    "check_calibration",
]

#: The paper's Table IV, seconds per level (levels 1-9; zeros mark levels
#: the traversal did not reach on that platform).
TABLE_IV_SECONDS: dict[str, list[float]] = {
    "GPUTD": [0.000230, 0.157750, 0.155881, 0.261753, 0.044015,
              0.000882, 0.000233, 0.000229, 0.0],
    "GPUBU": [0.438904, 0.131876, 0.010673, 0.002783, 0.001590,
              0.001474, 0.001468, 0.001466, 0.001466],
    "GPUCB": [0.000230, 0.021164, 0.008493, 0.002675, 0.001600,
              0.001502, 0.001498, 0.000237, 0.000230],
    "CPUTD": [0.000779, 0.001945, 0.074355, 0.072465, 0.011941,
              0.000980, 0.000705, 0.0, 0.0],
    "CPUBU": [0.053730, 0.032186, 0.015300, 0.012448, 0.006933,
              0.005121, 0.004987, 0.004972, 0.0],
    "CPUCB": [0.000728, 0.001208, 0.015643, 0.011732, 0.006914,
              0.005515, 0.005406, 0.000716, 0.0],
    "CPUTD+GPUBU": [0.002151, 0.002731, 0.005293, 0.002288, 0.001653,
                    0.001601, 0.001602, 0.001599, 0.0],
    "CPUTD+GPUCB": [0.002239, 0.002608, 0.005922, 0.002424, 0.001658,
                    0.001596, 0.000286, 0.000234, 0.000230],
}

#: Whole-traversal speedups over GPUTD from the bottom row of Table IV.
TABLE_IV_SPEEDUPS: dict[str, float] = {
    "GPUTD": 1.0,
    "GPUBU": 1.1,
    "GPUCB": 16.5,
    "CPUTD": 3.8,
    "CPUBU": 4.6,
    "CPUCB": 13.0,
    "CPUTD+GPUBU": 32.8,
    "CPUTD+GPUCB": 36.1,
}


def scale_profile(
    profile: LevelProfile,
    factor: float,
    *,
    frontier_threshold: int = 256,
) -> LevelProfile:
    """Scale ``profile``'s counters by ``factor``, R-MAT-faithfully.

    R-MAT level structure is nearly scale-invariant at fixed edgefactor
    (depth stays ~6-8 while the *middle* levels grow with the graph),
    but the two ends of the traversal are absolute-size phenomena: level
    1 always touches exactly ``deg(source)`` edges and the tail
    wavefronts always hold a handful of vertices, no matter how large
    the graph.  So:

    * unvisited-side counters (``unvisited_*``, ``bu_edges_*``) always
      scale — a level-1 bottom-up sweep really does stream the whole
      bigger graph;
    * frontier-side counters (``frontier_*``, ``claimed``) scale only
      when the measured value exceeds ``frontier_threshold`` edges
      (i.e. the level is part of the proportional middle).

    Used to price paper-sized graphs (8M vertices / 128M edges) without
    materializing them; fidelity is checked by
    ``tests/bench/test_scale_invariance.py``.
    """
    if factor <= 0:
        raise CalibrationError(f"factor must be positive, got {factor}")

    def s(x: int) -> int:
        """Scale one counter."""
        return int(round(x * factor))

    records = []
    for r in profile.records:
        proportional = r.frontier_edges > frontier_threshold
        fscale = s if proportional else (lambda x: x)
        checked = s(r.bu_edges_checked)
        records.append(
            LevelRecord(
                level=r.level,
                frontier_vertices=max(fscale(r.frontier_vertices), 1),
                frontier_edges=fscale(r.frontier_edges),
                unvisited_vertices=s(r.unvisited_vertices),
                unvisited_edges=s(r.unvisited_edges),
                bu_edges_checked=checked,
                claimed=fscale(r.claimed),
                bu_edges_failed=min(s(r.bu_edges_failed), checked),
            )
        )
    return LevelProfile(
        source=profile.source,
        num_vertices=s(profile.num_vertices),
        num_edges=s(profile.num_edges),
        records=tuple(records),
    )


@dataclass(frozen=True)
class CalibrationReport:
    """Structural claims of Table IV evaluated against the model."""

    level1_gputd_faster_than_cputd: bool
    level1_gpubu_over_cpubu: float       # paper: 0.4389 / 0.0537 ≈ 8.2
    mid_cputd_speedup_over_gputd: float  # paper level 3: 0.156/0.074 ≈ 2.1
    mid_gpubu_speedup_over_cpubu: float  # paper: GPU ~1.4-3x faster mid-levels
    tail_gputd_faster_than_cputd: bool
    gpucb_speedup_over_gputd: float      # paper: 16.5
    cpucb_speedup_over_cputd: float      # paper: 3.4
    cross_speedup_over_gputd: float      # paper: 36.1
    cross_speedup_over_gpucb: float      # paper: ~2.2
    cross_speedup_over_cpucb: float      # paper: ~2.8

    def structural_claims_hold(self) -> bool:
        """True when every directional (who-wins) claim holds."""
        return (
            self.level1_gputd_faster_than_cputd
            and self.level1_gpubu_over_cpubu > 2.0
            and self.mid_cputd_speedup_over_gputd > 1.0
            and self.mid_gpubu_speedup_over_cpubu > 1.0
            and self.tail_gputd_faster_than_cputd
            and self.gpucb_speedup_over_gputd > 2.0
            and self.cpucb_speedup_over_cputd > 1.2
            and self.cross_speedup_over_gputd
            > max(self.gpucb_speedup_over_gputd, 1.0)
            and self.cross_speedup_over_gpucb > 1.0
            and self.cross_speedup_over_cpucb > 1.0
        )


def check_calibration(
    profile: LevelProfile,
    *,
    cpu: ArchSpec = CPU_SANDY_BRIDGE,
    gpu: ArchSpec = GPU_K20X,
) -> CalibrationReport:
    """Evaluate the Table IV structural claims on ``profile``.

    ``profile`` should describe (or be scaled to) a paper-sized R-MAT
    graph; depth must be at least 4 levels.
    """
    if len(profile) < 4:
        raise CalibrationError(
            f"profile too shallow for calibration: {len(profile)} levels"
        )
    n = profile.num_vertices
    cpu_m, gpu_m = CostModel(cpu), CostModel(gpu)
    cpu_t = cpu_m.time_matrix(profile)
    gpu_t = gpu_m.time_matrix(profile)
    td, bu = 0, 1

    mid = profile.peak_level()
    last = len(profile) - 1

    # Oracle single-device combinations: per level, min(td, bu).
    gpu_cb = float(np.minimum(gpu_t[:, td], gpu_t[:, bu]).sum())
    cpu_cb = float(np.minimum(cpu_t[:, td], cpu_t[:, bu]).sum())
    gpu_td_total = float(gpu_t[:, td].sum())
    cpu_td_total = float(cpu_t[:, td].sum())
    # Cross-architecture: per level min over both devices and directions
    # (transfer cost neglected here; the executor charges it for real).
    cross = float(
        np.minimum(
            np.minimum(gpu_t[:, td], gpu_t[:, bu]),
            np.minimum(cpu_t[:, td], cpu_t[:, bu]),
        ).sum()
    )
    return CalibrationReport(
        level1_gputd_faster_than_cputd=bool(gpu_t[0, td] < cpu_t[0, td]),
        level1_gpubu_over_cpubu=float(gpu_t[0, bu] / cpu_t[0, bu]),
        mid_cputd_speedup_over_gputd=float(gpu_t[mid, td] / cpu_t[mid, td]),
        mid_gpubu_speedup_over_cpubu=float(cpu_t[mid, bu] / gpu_t[mid, bu]),
        tail_gputd_faster_than_cputd=bool(gpu_t[last, td] < cpu_t[last, td]),
        gpucb_speedup_over_gputd=gpu_td_total / gpu_cb,
        cpucb_speedup_over_cputd=cpu_td_total / cpu_cb,
        cross_speedup_over_gputd=gpu_td_total / cross,
        cross_speedup_over_gpucb=gpu_cb / cross,
        cross_speedup_over_cpucb=cpu_cb / cross,
    )
