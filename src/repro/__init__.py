"""repro — heuristic cross-architecture combination for breadth-first search.

A production-quality reproduction of You, Bader & Dehnavi (ICPP 2014):
direction-optimizing BFS with a regression-predicted switching point and
the first CPU+GPU cross-architecture top-down/bottom-up combination,
evaluated on Graph 500 R-MAT workloads over calibrated architecture
models.

Public API highlights
---------------------
Graphs      : :func:`repro.graph.rmat`, :class:`repro.graph.CSRGraph`
BFS         : :func:`repro.bfs.bfs_top_down`, :func:`repro.bfs.bfs_bottom_up`,
              :func:`repro.bfs.bfs_hybrid`, :func:`repro.bfs.profile_bfs`
Architectures: :data:`repro.arch.CPU_SANDY_BRIDGE`, :data:`repro.arch.GPU_K20X`,
              :data:`repro.arch.MIC_KNC`, :class:`repro.arch.CostModel`
Regression  : :class:`repro.ml.SVR`, :class:`repro.tuning.SwitchingPointPredictor`
Heterogeneous: :func:`repro.hetero.run_cross_architecture`
Experiments : :mod:`repro.bench.experiments` (one module per paper table/figure)
"""

from repro._version import __version__
from repro.errors import ReproError

__all__ = ["__version__", "ReproError"]
